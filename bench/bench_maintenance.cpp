// Demonstrates that background auto-fold reaches folded-format query
// latency without anyone running `seqdet fold`: the same skewed workload
// as bench_posting_blocks is ingested in batches three ways —
//
//   no_fold     ingest only; queries read the fragment piles
//   auto_fold   ingest with the maintenance service on; after the service
//               quiesces (WaitIdle), queries read what *it* folded
//   manual_fold ingest, then an explicit FoldPostings() (the old workflow)
//
// and the trace-selective query latency of auto_fold must land on
// manual_fold's, far below no_fold's. Emits BENCH_maintenance.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "index/maintenance.h"
#include "query/query_processor.h"

using namespace seqdet;

namespace {

constexpr size_t kRareActivities = 8;
constexpr size_t kRareBandTraces = 8;
constexpr size_t kHotActivities = 6;

std::string ActName(const char* prefix, size_t i) {
  std::string name(prefix);
  name += std::to_string(i);
  return name;
}

// Same shape as bench_posting_blocks: hot pairs in every trace, each rare
// activity confined to one narrow trace-id band, so folded block headers
// let rare-anchored queries skip almost everything.
eventlog::EventLog SkewedLog(size_t traces, uint64_t seed) {
  eventlog::EventLog log;
  Rng rng(seed);
  const size_t stride = traces / kRareActivities;
  for (size_t t = 0; t < traces; ++t) {
    int64_t ts = static_cast<int64_t>(t) * 1000;
    if (t % stride < kRareBandTraces) {
      log.Append(t, ActName("R", t / stride), ts++);
    }
    for (int round = 0; round < 3; ++round) {
      for (size_t h = 0; h < kHotActivities; ++h) {
        ts += 1 + static_cast<int64_t>(rng.NextBounded(5));
        log.Append(t, ActName("H", h), ts);
      }
    }
  }
  log.SortAllTraces();
  return log;
}

/// Splits `log` into `batches` consecutive trace-range batches — the
/// streaming-ingest shape that piles up append fragments.
std::vector<eventlog::EventLog> SplitBatches(const eventlog::EventLog& log,
                                             size_t batches) {
  std::vector<eventlog::EventLog> out(batches);
  size_t i = 0;
  for (const eventlog::Trace& trace : log.traces()) {
    eventlog::EventLog& batch = out[i++ * batches / log.num_traces()];
    for (const auto& event : trace.events) {
      batch.Append(trace.id, log.dictionary().Name(event.activity),
                   event.ts);
    }
  }
  for (auto& b : out) b.SortAllTraces();
  return out;
}

struct ModeResult {
  std::string name;
  double ingest_seconds = 0;   // Update() calls only
  double settle_seconds = 0;   // fold time (manual) / WaitIdle (auto)
  double ms_per_query = 0;
  size_t matches = 0;
  uint64_t bytes_decoded_per_query = 0;
  double fragment_ratio = 0;   // at query time
  uint64_t service_folds = 0;
  uint64_t service_keys_folded = 0;
};

// Same rare-anchored workload as bench_posting_blocks: each query starts at
// one narrow-band rare activity, then joins against two hot pair lists.
std::vector<query::Pattern> RareQueries(const index::SequenceIndex& index) {
  std::vector<query::Pattern> queries;
  auto id = [&](const std::string& name) {
    return index.dictionary().Lookup(name);
  };
  for (size_t k = 0; k < kRareActivities; ++k) {
    query::Pattern p;
    p.activities = {id(ActName("R", k)), id("H0"), id("H1")};
    queries.push_back(std::move(p));
    p.activities = {id(ActName("R", k)), id("H2"), id("H3")};
    queries.push_back(std::move(p));
  }
  return queries;
}

ModeResult RunMode(const std::string& name,
                   const std::vector<eventlog::EventLog>& batches,
                   const bench::BenchOptions& options, bool auto_fold,
                   bool manual_fold) {
  ModeResult result;
  result.name = name;
  auto db = bench::FreshDb();
  index::IndexOptions index_options;
  index_options.num_threads = options.threads;
  index_options.cache_bytes = 0;  // cold decode path, like posting_blocks
  if (auto_fold) {
    index_options.maintenance.auto_fold = true;
    index_options.maintenance.check_interval_ms = 20;
    index_options.maintenance.min_pending_bytes = 64u << 10;
    index_options.maintenance.min_pending_ops = 1024;
  }
  auto opened = index::SequenceIndex::Open(db.get(), index_options);
  if (!opened.ok()) std::abort();
  auto index = std::move(opened).value();

  Stopwatch ingest;
  for (const auto& batch : batches) {
    auto stats = index->Update(batch);
    if (!stats.ok()) std::abort();
  }
  result.ingest_seconds = ingest.ElapsedSeconds();

  Stopwatch settle;
  if (auto_fold) {
    if (!index->maintenance()->WaitIdle(/*timeout_ms=*/120000)) {
      std::fprintf(stderr, "maintenance service failed to quiesce\n");
      std::abort();
    }
  } else if (manual_fold) {
    Status folded = index->FoldPostings();
    if (!folded.ok()) std::abort();
  }
  result.settle_seconds = settle.ElapsedSeconds();

  auto frag = index->PostingFragmentationStats();
  if (frag.ok()) result.fragment_ratio = frag->FragmentRatio();
  if (auto_fold) {
    index::MaintenanceStats m = index->maintenance_stats();
    result.service_folds = m.folds_run;
    result.service_keys_folded = m.keys_folded;
  }

  query::QueryProcessor qp(index.get());
  auto queries = RareQueries(*index);
  index::IndexReadStats before = index->read_stats();
  size_t total_queries = 0;
  double seconds = bench::TimeSeconds(options.repetitions, [&] {
    result.matches = 0;
    for (const auto& q : queries) {
      auto matches = qp.Detect(q);
      if (!matches.ok()) std::abort();
      result.matches += matches->size();
      ++total_queries;
    }
  });
  index::IndexReadStats after = index->read_stats();
  result.ms_per_query =
      seconds * 1e3 / static_cast<double>(queries.size());
  result.bytes_decoded_per_query =
      (after.bytes_decoded - before.bytes_decoded) / total_queries;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  std::string out_path = "BENCH_maintenance.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--out=")) out_path = arg.substr(6);
  }
  const size_t traces = std::max<size_t>(
      8192, static_cast<size_t>(163840 * options.scale));
  const size_t batches = 16;
  eventlog::EventLog log = SkewedLog(traces, options.seed);
  auto split = SplitBatches(log, batches);

  std::printf(
      "maintenance bench: %zu traces, %zu events, %zu ingest batches\n\n",
      traces, log.num_events(), batches);

  std::vector<ModeResult> results;
  results.push_back(RunMode("no_fold", split, options, false, false));
  results.push_back(RunMode("auto_fold", split, options, true, false));
  results.push_back(RunMode("manual_fold", split, options, false, true));

  bench::TablePrinter table({"mode", "ingest_s", "settle_s", "ms/query",
                             "bytes/query", "frag_ratio", "folds"});
  for (const auto& r : results) {
    table.AddRow({r.name, bench::Secs(r.ingest_seconds),
                  bench::Secs(r.settle_seconds),
                  StringPrintf("%.4f", r.ms_per_query),
                  std::to_string(r.bytes_decoded_per_query),
                  StringPrintf("%.3f", r.fragment_ratio),
                  std::to_string(r.service_folds)});
  }
  table.Print();

  const ModeResult& none = results[0];
  const ModeResult& autof = results[1];
  const ModeResult& manual = results[2];
  double parity = manual.ms_per_query > 0
                      ? autof.ms_per_query / manual.ms_per_query
                      : 0;
  std::printf(
      "\nauto_fold vs manual_fold latency ratio: %.2fx (1.0 = parity)\n"
      "auto_fold vs no_fold speedup: %.2fx\n",
      parity,
      autof.ms_per_query > 0 ? none.ms_per_query / autof.ms_per_query : 0);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"maintenance\",\n"
               "  \"traces\": %zu,\n"
               "  \"scale\": %.3f,\n"
               "  \"repetitions\": %zu,\n"
               "  \"ingest_batches\": %zu,\n"
               "  \"auto_vs_manual_latency_ratio\": %.3f,\n"
               "  \"auto_vs_nofold_speedup\": %.2f,\n"
               "  \"match_counts_equal\": %s,\n"
               "  \"modes\": [\n",
               traces, options.scale, options.repetitions, batches, parity,
               autof.ms_per_query > 0
                   ? none.ms_per_query / autof.ms_per_query
                   : 0,
               (none.matches == autof.matches &&
                autof.matches == manual.matches)
                   ? "true"
                   : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"ingest_seconds\": %.3f, "
        "\"settle_seconds\": %.3f, \"ms_per_query\": %.4f, "
        "\"matches\": %zu, \"bytes_decoded_per_query\": %llu, "
        "\"fragment_ratio\": %.3f, \"service_folds\": %llu, "
        "\"service_keys_folded\": %llu}%s\n",
        r.name.c_str(), r.ingest_seconds, r.settle_seconds, r.ms_per_query,
        r.matches, static_cast<unsigned long long>(r.bytes_decoded_per_query),
        r.fragment_ratio, static_cast<unsigned long long>(r.service_folds),
        static_cast<unsigned long long>(r.service_keys_folded),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
