// Reproduces Figure 7: accuracy of the Hybrid continuation vs topK, using
// the Accurate method's propositions as ground truth. Accuracy is the
// fraction of the top-|accurate| hybrid propositions that appear in the
// accurate list (the paper's measure), averaged over sampled patterns.
//
// Expected shape (paper §5.4.3): accuracy climbs with k and hits 100%
// well before k reaches the number of activities.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "query/query_processor.h"

using namespace seqdet;

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  const char* kDataset = "max_10000";
  const size_t kQueries = 20;
  const size_t kPatternLen = 4;
  // Ground truth: propositions with at least one completion, per Accurate.
  auto log = datagen::LoadDataset(kDataset, options.scale);
  if (!log.ok()) return 1;
  auto db = bench::FreshDb();
  index::IndexOptions idx_options;
  idx_options.num_threads = options.threads;
  auto index = bench::BuildIndexOrDie(db.get(), *log, idx_options);
  query::QueryProcessor qp(index.get());

  datagen::PatternSampler sampler(&(*log), options.seed);
  auto patterns = sampler.SampleManySubsequences(kQueries, kPatternLen);

  std::printf(
      "=== Figure 7: Hybrid accuracy vs topK on %s (pattern length %zu, "
      "scale=%.2f) ===\n",
      kDataset, kPatternLen, options.scale);
  // The paper's metric: ground truth is the Accurate ranking; accuracy is
  // the fraction of Hybrid's k returned propositions that appear among
  // Accurate's top k.
  bench::TablePrinter table({"topK", "accuracy"});
  for (size_t k : {1, 2, 4, 8, 16, 32, 64, 128, 192}) {
    double total_accuracy = 0;
    size_t evaluated = 0;
    for (const auto& p : patterns) {
      query::Pattern pattern(p);
      auto accurate = qp.ContinueAccurate(pattern);
      auto hybrid = qp.ContinueHybrid(pattern, k);
      if (!accurate.ok() || !hybrid.ok() || accurate->empty()) continue;
      size_t take = std::min(k, accurate->size());
      std::set<eventlog::ActivityId> accurate_top;
      for (size_t i = 0; i < take; ++i) {
        accurate_top.insert((*accurate)[i].activity);
      }
      size_t correct = 0;
      for (size_t i = 0; i < hybrid->size() && i < take; ++i) {
        correct += accurate_top.count((*hybrid)[i].activity);
      }
      total_accuracy +=
          static_cast<double>(correct) / static_cast<double>(take);
      ++evaluated;
    }
    double accuracy = evaluated ? total_accuracy / evaluated : 0;
    table.AddRow({std::to_string(k), StringPrintf("%.3f", accuracy)});
    std::fprintf(stderr, "  k=%zu accuracy=%.3f (%zu queries)\n", k, accuracy,
                 evaluated);
  }
  table.Print();
  return 0;
}
