// Measures what the SDSEG2 block-compressed segment format buys on disk
// and on the cold read path. The same skewed log is indexed twice into
// on-disk databases that differ only in segment format (flat SDSEG1 vs
// block-compressed SDSEG2); both use the blocked v2 *posting* format, so
// the comparison isolates the segment layer: posting-FOR value transcode +
// prefix-compressed keys vs the same bytes stored raw.
//
// Reported:
//   - on-disk bytes of the posting (index_p*) tables and of all segments
//   - cold trace-selective Detect (fresh process image: segments are
//     re-opened per repetition, nothing decoded yet, posting cache off)
//   - hot Detect (same process, decoded-block cache warm)
//
// Emits BENCH_storage.json (override with --out=<path>).

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "query/query_processor.h"

using namespace seqdet;

namespace fs = std::filesystem;

namespace {

constexpr size_t kRareActivities = 8;
constexpr size_t kRareBandTraces = 8;
constexpr size_t kHotActivities = 6;

std::string ActName(const char* prefix, size_t i) {
  std::string name(prefix);
  name += std::to_string(i);
  return name;
}

// Same incident-window shape as bench_posting_blocks, but on an
// epoch-millisecond clock: hot pairs occur in every trace, each rare
// activity opens one narrow band of trace ids. Timestamps matter here —
// the FOR columns of the segment codec are exercised at the magnitudes a
// real deployment stores.
eventlog::EventLog SkewedLog(size_t traces, uint64_t seed) {
  eventlog::EventLog log;
  Rng rng(seed);
  const size_t stride = traces / kRareActivities;
  for (size_t t = 0; t < traces; ++t) {
    int64_t ts = 1700000000000 + static_cast<int64_t>(t) * 60000;
    if (t % stride < kRareBandTraces) {
      log.Append(t, ActName("R", t / stride), ts++);
    }
    for (int round = 0; round < 3; ++round) {
      for (size_t h = 0; h < kHotActivities; ++h) {
        ts += 10 + static_cast<int64_t>(rng.NextBounded(90));
        log.Append(t, ActName("H", h), ts);
      }
    }
  }
  log.SortAllTraces();
  return log;
}

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    path_ = fs::temp_directory_path() /
            ("seqdet_bench_storage_" + std::to_string(::getpid()) + "_" + tag);
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

storage::DbOptions DbOptionsFor(uint32_t segment_format) {
  storage::DbOptions options;
  options.table.segment.format_version = segment_format;
  return options;
}

index::IndexOptions IndexOptionsFor(const bench::BenchOptions& options) {
  index::IndexOptions idx;
  idx.num_threads = options.threads;
  idx.cache_bytes = 0;  // every Detect decodes stored segment bytes
  return idx;
}

// Builds, folds and compacts an on-disk index, then closes it so later
// opens measure the real open-from-disk path.
void BuildOnDisk(const std::string& dir, uint32_t segment_format,
                 const eventlog::EventLog& log,
                 const bench::BenchOptions& options) {
  auto db = storage::Database::Open(dir, DbOptionsFor(segment_format));
  if (!db.ok()) {
    std::fprintf(stderr, "db open failed: %s\n",
                 db.status().ToString().c_str());
    std::abort();
  }
  auto index = bench::BuildIndexOrDie(db->get(), log, IndexOptionsFor(options));
  auto fold = index->FoldPostings();
  if (!fold.ok()) {
    std::fprintf(stderr, "fold failed: %s\n", fold.ToString().c_str());
    std::abort();
  }
  auto flush = index->Flush();
  if (!flush.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", flush.ToString().c_str());
    std::abort();
  }
  auto compact = (*db)->CompactAll();
  if (!compact.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", compact.ToString().c_str());
    std::abort();
  }
}

struct SizeReport {
  uint64_t posting_bytes = 0;  // index_p* segment bytes on disk
  uint64_t posting_logical_bytes = 0;
  uint64_t total_bytes = 0;  // all segment bytes on disk
  size_t v1_segments = 0;
  size_t v2_segments = 0;
};

SizeReport MeasureSizes(const std::string& dir, uint32_t segment_format) {
  auto db = storage::Database::Open(dir, DbOptionsFor(segment_format));
  if (!db.ok()) std::abort();
  SizeReport report;
  storage::TableSegmentStats all = (*db)->GetSegmentStats();
  report.total_bytes = all.disk_bytes;
  report.v1_segments = all.v1_segments;
  report.v2_segments = all.v2_segments;
  for (const std::string& name : (*db)->TableNames()) {
    if (!StartsWith(name, "index_p")) continue;
    storage::TableSegmentStats t = (*db)->GetTable(name)->GetSegmentStats();
    report.posting_bytes += t.disk_bytes;
    report.posting_logical_bytes += t.logical_bytes;
  }
  return report;
}

std::vector<query::Pattern> RareAnchoredQueries(
    const index::SequenceIndex& index) {
  auto id = [&](const std::string& name) {
    return index.dictionary().Lookup(name);
  };
  std::vector<query::Pattern> queries;
  for (size_t k = 0; k < kRareActivities; ++k) {
    query::Pattern p;
    p.activities = {id(ActName("R", k)), id("H0"), id("H1")};
    queries.push_back(std::move(p));
    p.activities = {id(ActName("R", k)), id("H2"), id("H3")};
    queries.push_back(std::move(p));
  }
  return queries;
}

size_t RunDetectSet(const query::QueryProcessor& qp,
                    const std::vector<query::Pattern>& queries) {
  size_t matches = 0;
  for (const auto& p : queries) {
    auto found = qp.Detect(p);
    if (!found.ok()) {
      std::fprintf(stderr, "detect failed: %s\n",
                   found.status().ToString().c_str());
      std::abort();
    }
    matches += found->size();
  }
  return matches;
}

struct QueryTimes {
  double cold_ms_per_query = 0;
  double hot_ms_per_query = 0;
  size_t matches = 0;
};

// Cold = open-from-disk plus the first query pass: SDSEG1 pays its
// whole-file parse at open, SDSEG2 parses footers at open and decodes only
// the touched blocks during the pass, so the honest comparison charges
// both. Hot = second pass in the same process (decoded-block caches warm,
// posting cache off in both). Each repetition re-opens from disk.
QueryTimes TimeQueries(const std::string& dir, uint32_t segment_format,
                       const bench::BenchOptions& options) {
  QueryTimes times;
  double cold_total = 0, hot_total = 0;
  size_t queries = 0;
  for (size_t rep = 0; rep < options.repetitions; ++rep) {
    Stopwatch cold;
    auto db = storage::Database::Open(dir, DbOptionsFor(segment_format));
    if (!db.ok()) std::abort();
    auto index =
        index::SequenceIndex::Open(db->get(), IndexOptionsFor(options));
    if (!index.ok()) {
      std::fprintf(stderr, "index open failed: %s\n",
                   index.status().ToString().c_str());
      std::abort();
    }
    query::QueryProcessor qp(index->get());
    auto pattern_set = RareAnchoredQueries(**index);
    queries = pattern_set.size();
    times.matches = RunDetectSet(qp, pattern_set);
    cold_total += cold.ElapsedSeconds();
    Stopwatch hot;
    size_t hot_matches = RunDetectSet(qp, pattern_set);
    hot_total += hot.ElapsedSeconds();
    if (hot_matches != times.matches) std::abort();
  }
  double reps = static_cast<double>(options.repetitions);
  times.cold_ms_per_query =
      cold_total * 1e3 / (reps * static_cast<double>(queries));
  times.hot_ms_per_query =
      hot_total * 1e3 / (reps * static_cast<double>(queries));
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  std::string out_path = "BENCH_storage.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--out=")) out_path = arg.substr(6);
  }
  const size_t traces =
      std::max<size_t>(2048, static_cast<size_t>(65536 * options.scale));

  eventlog::EventLog log = SkewedLog(traces, options.seed);

  TempDir v1_dir("v1"), v2_dir("v2");
  BuildOnDisk(v1_dir.str(), 1, log, options);
  BuildOnDisk(v2_dir.str(), 2, log, options);

  SizeReport v1_sizes = MeasureSizes(v1_dir.str(), 1);
  SizeReport v2_sizes = MeasureSizes(v2_dir.str(), 2);

  QueryTimes v1_times = TimeQueries(v1_dir.str(), 1, options);
  QueryTimes v2_times = TimeQueries(v2_dir.str(), 2, options);
  bool counts_match = v1_times.matches == v2_times.matches;
  if (!counts_match) {
    std::fprintf(stderr, "MISMATCH: v1 found %zu matches, v2 found %zu\n",
                 v1_times.matches, v2_times.matches);
  }

  double posting_reduction =
      v2_sizes.posting_bytes > 0
          ? static_cast<double>(v1_sizes.posting_bytes) /
                static_cast<double>(v2_sizes.posting_bytes)
          : 0;
  double total_reduction =
      v2_sizes.total_bytes > 0
          ? static_cast<double>(v1_sizes.total_bytes) /
                static_cast<double>(v2_sizes.total_bytes)
          : 0;
  double cold_speedup = v2_times.cold_ms_per_query > 0
                            ? v1_times.cold_ms_per_query /
                                  v2_times.cold_ms_per_query
                            : 0;
  double hot_speedup =
      v2_times.hot_ms_per_query > 0
          ? v1_times.hot_ms_per_query / v2_times.hot_ms_per_query
          : 0;

  std::printf(
      "=== segment format: SDSEG1 vs SDSEG2, %zu traces, reps=%zu ===\n",
      traces, options.repetitions);
  bench::TablePrinter table({"metric", "SDSEG1", "SDSEG2", "ratio"});
  table.AddRow({"posting table KiB",
                StringPrintf("%.1f", v1_sizes.posting_bytes / 1024.0),
                StringPrintf("%.1f", v2_sizes.posting_bytes / 1024.0),
                StringPrintf("%.2fx smaller", posting_reduction)});
  table.AddRow({"all segments KiB",
                StringPrintf("%.1f", v1_sizes.total_bytes / 1024.0),
                StringPrintf("%.1f", v2_sizes.total_bytes / 1024.0),
                StringPrintf("%.2fx smaller", total_reduction)});
  table.AddRow({"cold detect ms/query",
                StringPrintf("%.4f", v1_times.cold_ms_per_query),
                StringPrintf("%.4f", v2_times.cold_ms_per_query),
                StringPrintf("%.2fx", cold_speedup)});
  table.AddRow({"hot detect ms/query",
                StringPrintf("%.4f", v1_times.hot_ms_per_query),
                StringPrintf("%.4f", v2_times.hot_ms_per_query),
                StringPrintf("%.2fx", hot_speedup)});
  table.Print();
  if (!counts_match) return 1;

  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      json,
      "{\n  \"bench\": \"storage\",\n"
      "  \"traces\": %zu,\n  \"scale\": %.3f,\n  \"repetitions\": %zu,\n"
      "  \"match_counts_equal\": %s,\n"
      "  \"posting_table_bytes_v1\": %llu,\n"
      "  \"posting_table_bytes_v2\": %llu,\n"
      "  \"posting_table_size_reduction\": %.3f,\n"
      "  \"total_segment_bytes_v1\": %llu,\n"
      "  \"total_segment_bytes_v2\": %llu,\n"
      "  \"total_segment_size_reduction\": %.3f,\n"
      "  \"workloads\": [\n"
      "    {\"name\": \"detect_rare_cold\", \"matches\": %zu,\n"
      "     \"v1_ms_per_query\": %.4f, \"v2_ms_per_query\": %.4f,\n"
      "     \"speedup\": %.3f},\n"
      "    {\"name\": \"detect_rare_hot\", \"matches\": %zu,\n"
      "     \"v1_ms_per_query\": %.4f, \"v2_ms_per_query\": %.4f,\n"
      "     \"speedup\": %.3f}\n"
      "  ]\n}\n",
      traces, options.scale, options.repetitions,
      counts_match ? "true" : "false",
      static_cast<unsigned long long>(v1_sizes.posting_bytes),
      static_cast<unsigned long long>(v2_sizes.posting_bytes),
      posting_reduction,
      static_cast<unsigned long long>(v1_sizes.total_bytes),
      static_cast<unsigned long long>(v2_sizes.total_bytes), total_reduction,
      v1_times.matches, v1_times.cold_ms_per_query,
      v2_times.cold_ms_per_query, cold_speedup, v1_times.matches,
      v1_times.hot_ms_per_query, v2_times.hot_ms_per_query, hot_speedup);
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
