// Measures what the versioned posting-list cache buys on the query read
// path: cold (cache_bytes = 0, every query re-folds, re-decodes and
// re-sorts the stored posting bytes) vs warm (decoded snapshots served from
// the cache) for repeated Detect and ContinueHybrid over hot pair sets —
// the workload DetectBatch and the continuation algorithms generate.
//
// Emits BENCH_read_path.json (override with --out=<path>) alongside the
// human-readable table.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "query/query_processor.h"

using namespace seqdet;

namespace {

struct WorkloadResult {
  std::string name;
  double cold_ms_per_query = 0;
  double warm_ms_per_query = 0;
  size_t queries = 0;
  size_t repetitions = 0;

  double Speedup() const {
    return warm_ms_per_query > 0 ? cold_ms_per_query / warm_ms_per_query : 0;
  }
};

// Runs `queries` against `qp` `reps` times; returns avg ms per query.
double RunDetectSet(const query::QueryProcessor& qp,
                    const std::vector<query::Pattern>& queries, size_t reps) {
  double seconds = bench::TimeSeconds(reps, [&] {
    for (const auto& p : queries) {
      auto matches = qp.Detect(p);
      if (!matches.ok()) std::abort();
    }
  });
  return seconds * 1e3 / static_cast<double>(queries.size());
}

double RunContinueSet(const query::QueryProcessor& qp,
                      const std::vector<query::Pattern>& queries, size_t topk,
                      size_t reps) {
  double seconds = bench::TimeSeconds(reps, [&] {
    for (const auto& p : queries) {
      auto proposals = qp.ContinueHybrid(p, topk);
      if (!proposals.ok()) std::abort();
    }
  });
  return seconds * 1e3 / static_cast<double>(queries.size());
}

// Patterns <x, y, z> where (y, z) is one of the hottest pairs and x is a
// rare predecessor of y: the posting fetch of the hot pair dominates, which
// is exactly the read-path cost the cache removes. This is the shape every
// continuation query produces (small base match set joined against hot
// candidate pairs).
std::vector<query::Pattern> HotPairPatterns(const index::SequenceIndex& idx,
                                            size_t count) {
  struct HotPair {
    index::EventTypePair pair;
    uint64_t completions = 0;
  };
  std::vector<HotPair> hot;
  for (eventlog::ActivityId a = 0; a < idx.dictionary().size(); ++a) {
    auto followers = idx.GetFollowerStats(a);
    if (!followers.ok()) continue;
    for (const auto& f : *followers) {
      hot.push_back(HotPair{{a, f.other}, f.total_completions});
      break;  // stats are sorted, first is the hottest for this key
    }
  }
  std::sort(hot.begin(), hot.end(), [](const HotPair& a, const HotPair& b) {
    return a.completions > b.completions;
  });

  std::vector<query::Pattern> patterns;
  for (const HotPair& h : hot) {
    if (patterns.size() >= count) break;
    auto predecessors = idx.GetPredecessorStats(h.pair.first);
    if (!predecessors.ok() || predecessors->empty()) continue;
    // Rarest predecessor that still completes at least once.
    const index::PairCountStats& rare = predecessors->back();
    if (rare.total_completions == 0 || rare.other == h.pair.first) continue;
    query::Pattern p;
    p.activities = {rare.other, h.pair.first, h.pair.second};
    patterns.push_back(std::move(p));
  }
  return patterns;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  std::string out_path = "BENCH_read_path.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--out=")) out_path = arg.substr(6);
  }
  const char* kDataset = "max_10000";
  const size_t kQueries = 50;
  const size_t kTopK = 10;
  const size_t kCacheBytes = 256u << 20;

  auto log = datagen::LoadDataset(kDataset, options.scale);
  if (!log.ok()) {
    std::fprintf(stderr, "dataset load failed: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }

  // Two identical indexes over the same log; only the cache budget differs.
  auto build = [&](size_t cache_bytes,
                   std::unique_ptr<storage::Database>* db) {
    *db = bench::FreshDb();
    index::IndexOptions idx_options;
    idx_options.policy = index::Policy::kSkipTillNextMatch;
    idx_options.num_threads = options.threads;
    idx_options.cache_bytes = cache_bytes;
    return bench::BuildIndexOrDie(db->get(), *log, idx_options);
  };
  std::unique_ptr<storage::Database> cold_db, warm_db;
  auto cold_index = build(0, &cold_db);
  auto warm_index = build(kCacheBytes, &warm_db);
  query::QueryProcessor cold_qp(cold_index.get());
  query::QueryProcessor warm_qp(warm_index.get());

  datagen::PatternSampler sampler(&(*log), options.seed);
  std::vector<query::Pattern> sampled;
  for (auto& ids : sampler.SampleManySubsequences(kQueries, 4)) {
    sampled.push_back(query::Pattern(ids));
  }
  std::vector<query::Pattern> hot = HotPairPatterns(*warm_index, kQueries);
  std::vector<query::Pattern> bases;
  for (auto& ids : sampler.SampleManySubsequences(kQueries / 2, 2)) {
    bases.push_back(query::Pattern(ids));
  }

  std::printf(
      "=== read-path cache: cold (cache off) vs warm on %s "
      "(scale=%.2f, reps=%zu) ===\n",
      kDataset, options.scale, options.repetitions);

  std::vector<WorkloadResult> results;
  auto run_detect = [&](const std::string& name,
                        const std::vector<query::Pattern>& queries) {
    if (queries.empty()) return;
    WorkloadResult r;
    r.name = name;
    r.queries = queries.size();
    r.repetitions = options.repetitions;
    r.cold_ms_per_query = RunDetectSet(cold_qp, queries, options.repetitions);
    RunDetectSet(warm_qp, queries, 1);  // warmup fill
    r.warm_ms_per_query = RunDetectSet(warm_qp, queries, options.repetitions);
    results.push_back(r);
  };
  run_detect("detect_hot_pairs", hot);
  run_detect("detect_sampled", sampled);
  if (!bases.empty()) {
    WorkloadResult r;
    r.name = "continue_hybrid";
    r.queries = bases.size();
    r.repetitions = options.repetitions;
    r.cold_ms_per_query =
        RunContinueSet(cold_qp, bases, kTopK, options.repetitions);
    RunContinueSet(warm_qp, bases, kTopK, 1);  // warmup fill
    r.warm_ms_per_query =
        RunContinueSet(warm_qp, bases, kTopK, options.repetitions);
    results.push_back(r);
  }

  bench::TablePrinter table(
      {"workload", "cold ms/query", "warm ms/query", "speedup"});
  for (const auto& r : results) {
    table.AddRow({r.name, StringPrintf("%.4f", r.cold_ms_per_query),
                  StringPrintf("%.4f", r.warm_ms_per_query),
                  StringPrintf("%.1fx", r.Speedup())});
  }
  table.Print();

  index::PostingCacheStats cache = warm_index->cache_stats();
  std::printf(
      "warm cache: %zu entries / %zu bytes (budget %zu), hits %llu, "
      "misses %llu, evictions %llu, invalidations %llu\n",
      cache.entries, cache.bytes, cache.capacity_bytes,
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(cache.invalidations));

  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"read_path_cache\",\n"
               "  \"dataset\": \"%s\",\n  \"scale\": %.3f,\n"
               "  \"repetitions\": %zu,\n  \"cache_bytes\": %zu,\n"
               "  \"workloads\": [\n",
               kDataset, options.scale, options.repetitions, kCacheBytes);
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"queries\": %zu, "
                 "\"cold_ms_per_query\": %.4f, \"warm_ms_per_query\": %.4f, "
                 "\"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.queries, r.cold_ms_per_query,
                 r.warm_ms_per_query, r.Speedup(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"warm_cache\": {\"entries\": %zu, \"bytes\": %zu, "
               "\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu, "
               "\"invalidations\": %llu}\n}\n",
               cache.entries, cache.bytes,
               static_cast<unsigned long long>(cache.hits),
               static_cast<unsigned long long>(cache.misses),
               static_cast<unsigned long long>(cache.evictions),
               static_cast<unsigned long long>(cache.invalidations));
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
