// Reproduces Table 8: STNM query latency of the Elasticsearch-like
// baseline vs SASE (no pre-processing) vs our pair index, at pattern
// lengths 2, 5 and 10, each averaged over 100 random sampled patterns.
//
// Expected shape (paper §5.4.2): SASE acceptable on small logs but orders
// of magnitude slower on large ones (it rescans the whole log per query);
// ours fastest at length 2 and competitive at length 10, where the ES-like
// engine closes the gap.

#include <cstdio>

#include "baselines/esearch/es_engine.h"
#include "baselines/sase/sase_engine.h"
#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "query/query_processor.h"

using namespace seqdet;

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  const size_t kQueries = 100;  // the paper queries 100 random patterns

  std::printf(
      "=== Table 8: STNM query latency in milliseconds, avg of %zu queries "
      "(scale=%.2f) ===\n",
      kQueries, options.scale);

  for (size_t len : {size_t{2}, size_t{5}, size_t{10}}) {
    std::printf("--- pattern length = %zu ---\n", len);
    bench::TablePrinter table(
        {"Log file", "Elasticsearch-like", "SASE", "Our method"});
    for (const std::string& name : datagen::DatasetNames()) {
      auto log = datagen::LoadDataset(name, options.scale);
      if (!log.ok()) return 1;

      auto es = baseline::EsLikeEngine::Build(*log);
      if (!es.ok()) return 1;
      baseline::SaseEngine sase(&(*log));
      auto db = bench::FreshDb();
      index::IndexOptions idx_options;
      idx_options.policy = index::Policy::kSkipTillNextMatch;
      idx_options.num_threads = options.threads;
      auto index = bench::BuildIndexOrDie(db.get(), *log, idx_options);
      query::QueryProcessor qp(index.get());

      datagen::PatternSampler sampler(&(*log), options.seed + len);
      auto patterns = sampler.SampleManySubsequences(kQueries, len);
      std::vector<std::vector<std::string>> term_patterns;
      for (const auto& p : patterns) {
        std::vector<std::string> terms;
        for (auto a : p) terms.push_back(log->dictionary().Name(a));
        term_patterns.push_back(std::move(terms));
      }

      Stopwatch watch;
      for (const auto& terms : term_patterns) (*es)->DetectStnm(terms);
      double es_time = watch.ElapsedSeconds() / kQueries;

      watch.Restart();
      for (const auto& p : patterns) {
        sase.Detect(p, index::Policy::kSkipTillNextMatch);
      }
      double sase_time = watch.ElapsedSeconds() / kQueries;

      watch.Restart();
      for (const auto& p : patterns) {
        auto matches = qp.Detect(query::Pattern(p));
        (void)matches;
      }
      double our_time = watch.ElapsedSeconds() / kQueries;

      std::fprintf(stderr, "  len%zu %s es=%.4f sase=%.4f ours=%.4f\n", len,
                   name.c_str(), es_time, sase_time, our_time);
      table.AddRow({name, bench::Millis(es_time), bench::Millis(sase_time),
                    bench::Millis(our_time)});
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
