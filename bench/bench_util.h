#ifndef SEQDET_BENCH_BENCH_UTIL_H_
#define SEQDET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"
#include "index/sequence_index.h"
#include "storage/database.h"

namespace seqdet::bench {

/// Command-line options shared by every reproduction harness.
///
/// Benches default to `scale = 0.05` (5% of the paper's trace counts) so the
/// whole suite finishes in minutes; `--full` or `--scale=1` reproduces the
/// paper-sized datasets. The *shape* of every result (who wins, how curves
/// grow) is stable across scales; absolute times are not comparable to the
/// paper's testbed anyway.
struct BenchOptions {
  double scale = 0.05;
  size_t threads = 0;  // 0 = hardware concurrency
  size_t repetitions = 3;
  uint64_t seed = 42;

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--full") {
        options.scale = 1.0;
      } else if (StartsWith(arg, "--scale=")) {
        ParseDouble(arg.substr(8), &options.scale);
      } else if (StartsWith(arg, "--threads=")) {
        int64_t t;
        if (ParseInt64(arg.substr(10), &t) && t > 0) {
          options.threads = static_cast<size_t>(t);
        }
      } else if (StartsWith(arg, "--reps=")) {
        int64_t r;
        if (ParseInt64(arg.substr(7), &r) && r > 0) {
          options.repetitions = static_cast<size_t>(r);
        }
      } else if (StartsWith(arg, "--seed=")) {
        int64_t s;
        if (ParseInt64(arg.substr(7), &s)) {
          options.seed = static_cast<uint64_t>(s);
        }
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --scale=<0..1> | --full   dataset scale "
            "(default 0.05)\n"
            "         --threads=<n>             worker threads\n"
            "         --reps=<n>                repetitions per cell\n"
            "         --seed=<n>                workload seed\n");
        std::exit(0);
      }
    }
    return options;
  }
};

/// Runs `fn` `reps` times and returns the mean seconds (the paper reports
/// the average of 5 runs).
inline double TimeSeconds(size_t reps, const std::function<void()>& fn) {
  double total = 0;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    total += watch.ElapsedSeconds();
  }
  return total / static_cast<double>(reps);
}

/// Fresh in-memory database for index builds (keeps benches focused on
/// algorithmic cost rather than disk speed, like the paper's dedicated
/// Cassandra node kept storage off the benchmark box).
inline std::unique_ptr<storage::Database> FreshDb() {
  storage::DbOptions options;
  options.table.in_memory = true;
  options.table.use_wal = false;
  auto db = storage::Database::Open("", options);
  if (!db.ok()) {
    std::fprintf(stderr, "db open failed: %s\n",
                 db.status().ToString().c_str());
    std::abort();
  }
  return std::move(db).value();
}

/// Builds a SequenceIndex over `log`; aborts on failure (bench context).
inline std::unique_ptr<index::SequenceIndex> BuildIndexOrDie(
    storage::Database* db, const eventlog::EventLog& log,
    const index::IndexOptions& options) {
  auto idx = index::SequenceIndex::Open(db, options);
  if (!idx.ok()) {
    std::fprintf(stderr, "index open failed: %s\n",
                 idx.status().ToString().c_str());
    std::abort();
  }
  auto stats = (*idx)->Update(log);
  if (!stats.ok()) {
    std::fprintf(stderr, "index update failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  return std::move(idx).value();
}

/// Simple fixed-width table printer for paper-style output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) widths_.push_back(h.size() + 2);
  }

  void AddRow(std::vector<std::string> cells) {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size() + 2);
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::string rule;
    for (size_t w : widths_) rule += std::string(w, '-') + "+";
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row);
    std::fflush(stdout);
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      std::string cell = cells[i];
      cell.resize(widths_[i], ' ');
      line += cell + "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Secs(double seconds) {
  return StringPrintf("%.3f", seconds);
}

inline std::string Millis(double seconds) {
  return StringPrintf("%.3f", seconds * 1e3);
}

}  // namespace seqdet::bench

#endif  // SEQDET_BENCH_BENCH_UTIL_H_
