// Ablation: what each detection policy costs and buys.
//
//   * SC    — cheapest index (n-1 pairs/trace), contiguous semantics only;
//   * STNM  — the paper's core: greedy pairs, detection sound but not
//             exhaustive for patterns of length >= 3 (DESIGN.md §4);
//   * STAM  — the §7 extension: every ordered pair, O(n²)/trace index,
//             detection exhaustive (all overlapping occurrences).
//
// The table reports build time, posting volume, and how many matches each
// policy's detection returns for the same sampled patterns — quantifying
// the index-size price of exhaustiveness.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "query/query_processor.h"

using namespace seqdet;

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  const char* kDataset = "bpi_2020";
  const size_t kQueries = 50;

  auto log = datagen::LoadDataset(kDataset, options.scale);
  if (!log.ok()) return 1;
  std::printf(
      "=== Ablation: policies on %s (scale=%.2f, %zu traces, %zu events) "
      "===\n",
      kDataset, options.scale, log->num_traces(), log->num_events());

  bench::TablePrinter table({"policy", "build (s)", "pair completions",
                             "detect len3 matches", "detect len3 (ms)"});

  for (auto policy :
       {index::Policy::kStrictContiguity, index::Policy::kSkipTillNextMatch,
        index::Policy::kSkipTillAnyMatch}) {
    auto db = bench::FreshDb();
    index::IndexOptions idx_options;
    idx_options.policy = policy;
    idx_options.num_threads = options.threads;
    auto idx = index::SequenceIndex::Open(db.get(), idx_options);
    if (!idx.ok()) return 1;

    Stopwatch build_watch;
    auto stats = (*idx)->Update(*log);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s build failed: %s\n",
                   index::PolicyName(policy),
                   stats.status().ToString().c_str());
      return 1;
    }
    double build = build_watch.ElapsedSeconds();

    query::QueryProcessor qp(idx->get());
    datagen::PatternSampler sampler(&(*log), options.seed);
    auto patterns = sampler.SampleManySubsequences(kQueries, 3);
    Stopwatch query_watch;
    size_t total_matches = 0;
    for (const auto& p : patterns) {
      auto matches = qp.Detect(query::Pattern(p));
      if (matches.ok()) total_matches += matches->size();
    }
    double query_ms = query_watch.ElapsedSeconds() * 1e3 / kQueries;

    table.AddRow({index::PolicyName(policy), bench::Secs(build),
                  std::to_string(stats->pairs_indexed),
                  StringPrintf("%.1f", static_cast<double>(total_matches) /
                                           kQueries),
                  StringPrintf("%.3f", query_ms)});
    std::fprintf(stderr, "  %s: build=%.3fs postings=%zu\n",
                 index::PolicyName(policy), build, stats->pairs_indexed);
  }
  table.Print();
  std::printf(
      "\nNote: the same sampled patterns; STAM finds every overlapping\n"
      "occurrence (counts >> STNM), SC only contiguous ones.\n");
  return 0;
}
