// Reproduces Table 7: SC detection-query latency of the [19] baseline
// (suffix-array binary search) vs our pair index, at pattern lengths 2 and
// 10, averaged over sampled patterns that occur in the log.
//
// Expected shape (paper §5.4.1): [19] latency flat and small regardless of
// pattern length; ours grows with pattern length and is competitive at
// short lengths.

#include <cstdio>

#include "baselines/subtree/subtree_index.h"
#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "query/query_processor.h"

using namespace seqdet;

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  const size_t kQueries = 50;
  std::printf(
      "=== Table 7: SC query latency in milliseconds, avg of %zu queries "
      "(scale=%.2f) ===\n",
      kQueries, options.scale);
  bench::TablePrinter table(
      {"Log file", "[19] (len2)", "[19] (len10)", "Ours (len 2)",
       "Ours (len 10)"});

  baseline::SubtreeIndexOptions subtree_options;
  subtree_options.max_trie_nodes = 32u << 20;

  for (const std::string& name : datagen::DatasetNames()) {
    if (name == "bpi_2017") continue;  // [19] does not finish (Table 6)
    auto log = datagen::LoadDataset(name, options.scale);
    if (!log.ok()) return 1;

    auto subtree = baseline::SubtreeIndex::Build(*log, subtree_options);
    auto db = bench::FreshDb();
    index::IndexOptions idx_options;
    idx_options.policy = index::Policy::kStrictContiguity;
    idx_options.num_threads = options.threads;
    auto index = bench::BuildIndexOrDie(db.get(), *log, idx_options);
    query::QueryProcessor qp(index.get());

    std::vector<std::string> row = {name};
    for (size_t len : {size_t{2}, size_t{10}}) {
      datagen::PatternSampler sampler(&(*log), options.seed + len);
      auto patterns = sampler.SampleManyContiguous(kQueries, len);
      if (subtree.ok()) {
        Stopwatch watch;
        size_t total = 0;
        for (const auto& p : patterns) total += (*subtree)->Find(p).size();
        row.push_back(bench::Millis(watch.ElapsedSeconds() / kQueries));
        std::fprintf(stderr, "  %s [19] len%zu: %zu hits\n", name.c_str(),
                     len, total);
      } else {
        row.push_back("n/a");
      }
    }
    for (size_t len : {size_t{2}, size_t{10}}) {
      datagen::PatternSampler sampler(&(*log), options.seed + len);
      auto patterns = sampler.SampleManyContiguous(kQueries, len);
      Stopwatch watch;
      size_t total = 0;
      for (const auto& p : patterns) {
        auto matches = qp.Detect(query::Pattern(p));
        if (matches.ok()) total += matches->size();
      }
      row.push_back(bench::Millis(watch.ElapsedSeconds() / kQueries));
      std::fprintf(stderr, "  %s ours len%zu: %zu hits\n", name.c_str(), len,
                   total);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
