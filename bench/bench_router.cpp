// Scatter-gather router benchmark: what fronting N trace-hash shard
// workers with `seqdet route` costs per query relative to one process
// over the unsharded index. Everything runs in-process over loopback —
// same machine, same index configuration — so the delta is the router's
// own overhead: the extra HTTP hop, the fan-out/fan-in, and the integer
// re-merge. On a single box the router cannot *win* (there is no extra
// hardware to buy parallelism from); the number this guards is the
// overhead staying flat as the shard count grows.
//
// Per configuration (single process, router over 1/2/4/8 shards) the
// harness replays the same seeded mix of detect / stats / continue
// queries and reports mean ms per query, plus the shard-split partition
// and per-shard index build time for the ingest side.
//
// Emits BENCH_router.json (override with --out=<path>).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "datagen/generators.h"
#include "index/sequence_index.h"
#include "index/trace_shard.h"
#include "log/event_log.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "server/shard_router.h"
#include "storage/database.h"

using namespace seqdet;

namespace {

eventlog::EventLog RouterLog(const bench::BenchOptions& options) {
  datagen::RandomLogConfig config;
  config.num_traces =
      std::max<size_t>(100, static_cast<size_t>(4000 * options.scale));
  config.max_events_per_trace = 40;
  config.num_activities = 10;
  config.seed = options.seed;
  config.mean_gap = 5;
  config.activity_skew = 0.3;
  return datagen::GenerateRandomLog(config);
}

std::vector<eventlog::EventLog> PartitionLog(const eventlog::EventLog& log,
                                             size_t num_shards) {
  std::vector<eventlog::EventLog> parts(num_shards);
  for (auto& part : parts) {
    for (const auto& name : log.dictionary().names()) {
      part.dictionary().Intern(name);
    }
  }
  for (const auto& trace : log.traces()) {
    parts[index::ShardOfTrace(trace.id, num_shards)].AddTrace(trace);
  }
  return parts;
}

struct Node {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<index::SequenceIndex> index;
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::HttpServer> http;
  double build_seconds = 0;

  explicit Node(const eventlog::EventLog& log) {
    db = bench::FreshDb();
    index::IndexOptions options;
    options.num_threads = 1;
    Stopwatch watch;
    index = bench::BuildIndexOrDie(db.get(), log, options);
    build_seconds = watch.ElapsedSeconds();
    service = std::make_unique<server::QueryService>(index.get());
    http = std::make_unique<server::HttpServer>();
    service->RegisterRoutes(http.get());
    if (!http->Start(0).ok()) std::abort();
  }
  ~Node() { http->Stop(); }
};

struct QueryMix {
  std::vector<std::string> detect;
  std::vector<std::string> stats;
  std::vector<std::string> cont;
};

QueryMix MakeMix(const eventlog::EventLog& log, size_t count,
                 uint64_t seed) {
  QueryMix mix;
  Rng rng(seed ^ 0xB0073ull);
  const auto& dict = log.dictionary();
  for (size_t i = 0; i < count; ++i) {
    size_t len = 2 + rng.NextBounded(2);
    std::string q;
    for (size_t k = 0; k < len; ++k) {
      if (k > 0) q += " -> ";
      q += dict.Name(
          static_cast<eventlog::ActivityId>(rng.NextBounded(dict.size())));
    }
    std::string encoded = server::HttpClient::UrlEncode(q);
    mix.detect.push_back("/detect?q=" + encoded + "&limit=1000");
    mix.stats.push_back("/stats?q=" + encoded);
    mix.cont.push_back("/continue?q=" + encoded + "&mode=hybrid");
  }
  return mix;
}

/// Mean ms per query for one target list against one port, best intent:
/// a warm-up pass first (connections, caches), then `reps` timed passes.
double MsPerQuery(uint16_t port, const std::vector<std::string>& targets,
                  size_t reps) {
  server::HttpClient client(port);
  for (const auto& t : targets) {
    auto r = client.Get(t);
    if (!r.ok() || r->status != 200) {
      std::fprintf(stderr, "bench query failed: %s\n", t.c_str());
      std::abort();
    }
  }
  double seconds = bench::TimeSeconds(reps, [&] {
    for (const auto& t : targets) {
      auto r = client.Get(t);
      if (!r.ok() || r->status != 200) std::abort();
    }
  });
  return seconds * 1000.0 / static_cast<double>(targets.size());
}

struct ConfigResult {
  std::string name;
  size_t shards = 0;  // 0 = single process, no router hop
  double split_build_seconds = 0;
  double detect_ms = 0;
  double stats_ms = 0;
  double continue_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  std::string out_path = "BENCH_router.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--out=")) out_path = arg.substr(6);
  }

  eventlog::EventLog log = RouterLog(options);
  const size_t query_count =
      std::max<size_t>(100, static_cast<size_t>(2000 * options.scale));
  QueryMix mix = MakeMix(log, query_count, options.seed);
  std::printf("router bench: %zu traces, %zu queries per route, %zu reps\n",
              log.traces().size(), query_count, options.repetitions);

  std::vector<ConfigResult> results;

  {
    Node single(log);
    ConfigResult r;
    r.name = "single";
    r.split_build_seconds = single.build_seconds;
    r.detect_ms = MsPerQuery(single.http->port(), mix.detect,
                             options.repetitions);
    r.stats_ms = MsPerQuery(single.http->port(), mix.stats,
                            options.repetitions);
    r.continue_ms = MsPerQuery(single.http->port(), mix.cont,
                               options.repetitions);
    results.push_back(r);
    std::printf("  %-9s detect %7.3f ms  stats %7.3f ms  continue %7.3f ms"
                "  (build %.2fs)\n",
                r.name.c_str(), r.detect_ms, r.stats_ms, r.continue_ms,
                r.split_build_seconds);
  }

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    auto parts = PartitionLog(log, shards);
    std::vector<std::unique_ptr<Node>> workers;
    server::RouterOptions router_options;
    double build_seconds = 0;
    for (const auto& part : parts) {
      workers.push_back(std::make_unique<Node>(part));
      build_seconds += workers.back()->build_seconds;
      router_options.shards.push_back(
          server::ShardEndpoint{"127.0.0.1", workers.back()->http->port()});
    }
    router_options.default_deadline_ms = 60000;
    router_options.hedge_after_ms = 0;  // latency measurement, no races
    server::ShardRouter router(router_options);
    server::HttpServer router_http;
    router.RegisterRoutes(&router_http);
    if (!router_http.Start(0).ok()) std::abort();

    ConfigResult r;
    r.name = "router_" + std::to_string(shards);
    r.shards = shards;
    r.split_build_seconds = build_seconds;
    r.detect_ms = MsPerQuery(router_http.port(), mix.detect,
                             options.repetitions);
    r.stats_ms = MsPerQuery(router_http.port(), mix.stats,
                            options.repetitions);
    r.continue_ms = MsPerQuery(router_http.port(), mix.cont,
                               options.repetitions);
    results.push_back(r);
    std::printf("  %-9s detect %7.3f ms  stats %7.3f ms  continue %7.3f ms"
                "  (build %.2fs)\n",
                r.name.c_str(), r.detect_ms, r.stats_ms, r.continue_ms,
                r.split_build_seconds);
    router_http.Stop();
  }

  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"router\",\n"
               "  \"traces\": %zu,\n"
               "  \"scale\": %.3f,\n"
               "  \"queries\": %zu,\n"
               "  \"repetitions\": %zu,\n"
               "  \"configs\": [\n",
               log.traces().size(), options.scale, query_count,
               options.repetitions);
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"shards\": %zu,\n"
                 "     \"build_seconds\": %.4f,\n"
                 "     \"detect_ms_per_query\": %.4f,\n"
                 "     \"stats_ms_per_query\": %.4f,\n"
                 "     \"continue_ms_per_query\": %.4f}%s\n",
                 r.name.c_str(), r.shards, r.split_build_seconds,
                 r.detect_ms, r.stats_ms, r.continue_ms,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
