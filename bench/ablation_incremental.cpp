// Ablation benches for design choices DESIGN.md calls out:
//  (a) incremental update: cost of indexing a log in K batches vs one
//      shot, and the price LastChecked pays to guarantee no duplicates;
//  (b) segmented (per-period) index vs a single index table: build-side
//      neutrality and query-side merge overhead.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "query/query_processor.h"

using namespace seqdet;

namespace {

// Splits each trace of `log` into `parts` timestamp-ordered chunks,
// mimicking periodic log arrival.
std::vector<eventlog::EventLog> SplitBatches(const eventlog::EventLog& log,
                                             size_t parts) {
  std::vector<eventlog::EventLog> batches(parts);
  for (const auto& trace : log.traces()) {
    size_t per = (trace.size() + parts - 1) / parts;
    for (size_t b = 0; b < parts; ++b) {
      for (size_t i = b * per; i < std::min(trace.size(), (b + 1) * per);
           ++i) {
        batches[b].Append(trace.id,
                          log.dictionary().Name(trace.events[i].activity),
                          trace.events[i].ts);
      }
    }
  }
  for (auto& b : batches) b.SortAllTraces();
  return batches;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  const char* kDataset = "max_5000";
  auto log = datagen::LoadDataset(kDataset, options.scale);
  if (!log.ok()) return 1;

  std::printf("=== Ablation (a): incremental batches on %s (scale=%.2f) "
              "===\n",
              kDataset, options.scale);
  bench::TablePrinter batch_table(
      {"configuration", "build time (s)", "pairs indexed"});

  auto build_batched = [&](size_t parts, bool last_checked) {
    auto batches = parts == 1 ? std::vector<eventlog::EventLog>{}
                              : SplitBatches(*log, parts);
    double secs = 0;
    size_t indexed = 0;
    secs = bench::TimeSeconds(options.repetitions, [&] {
      auto db = bench::FreshDb();
      index::IndexOptions idx_options;
      idx_options.num_threads = options.threads;
      idx_options.maintain_last_checked = last_checked;
      auto idx = index::SequenceIndex::Open(db.get(), idx_options);
      if (!idx.ok()) std::abort();
      indexed = 0;
      if (parts == 1) {
        auto stats = (*idx)->Update(*log);
        if (!stats.ok()) std::abort();
        indexed += stats->pairs_indexed;
      } else {
        for (const auto& batch : batches) {
          auto stats = (*idx)->Update(batch);
          if (!stats.ok()) std::abort();
          indexed += stats->pairs_indexed;
        }
      }
    });
    return std::make_pair(secs, indexed);
  };

  for (size_t parts : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    auto [secs, indexed] = build_batched(parts, true);
    batch_table.AddRow({StringPrintf("%zu batches (LastChecked on)", parts),
                        bench::Secs(secs), std::to_string(indexed)});
    std::fprintf(stderr, "  %zu batches: %.3fs, %zu pairs\n", parts, secs,
                 indexed);
  }
  {
    // Without LastChecked the single-batch build is cheaper, but
    // re-processing a trace would duplicate postings — the correctness
    // price the table's pair counts make visible when batched.
    auto [secs, indexed] = build_batched(1, false);
    batch_table.AddRow({"1 batch (LastChecked off)", bench::Secs(secs),
                        std::to_string(indexed)});
    auto [secs4, indexed4] = build_batched(4, false);
    batch_table.AddRow(
        {"4 batches (LastChecked off, DUPLICATES)", bench::Secs(secs4),
         std::to_string(indexed4)});
  }
  batch_table.Print();

  std::printf("\n=== Ablation (b): segmented index periods on %s ===\n",
              kDataset);
  bench::TablePrinter period_table(
      {"periods", "build time (s)", "query latency (ms)"});
  const size_t kQueries = 50;
  for (size_t periods : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    auto batches = SplitBatches(*log, periods);
    auto db = bench::FreshDb();
    index::IndexOptions idx_options;
    idx_options.num_threads = options.threads;
    auto idx = index::SequenceIndex::Open(db.get(), idx_options);
    if (!idx.ok()) return 1;
    Stopwatch build_watch;
    for (size_t b = 0; b < batches.size(); ++b) {
      if (b > 0 && !(*idx)->StartNewPeriod().ok()) return 1;
      if (!(*idx)->Update(batches[b]).ok()) return 1;
    }
    double build = build_watch.ElapsedSeconds();

    query::QueryProcessor qp(idx->get());
    datagen::PatternSampler sampler(&(*log), options.seed);
    auto patterns = sampler.SampleManySubsequences(kQueries, 5);
    Stopwatch query_watch;
    for (const auto& p : patterns) (void)qp.Detect(query::Pattern(p));
    double query = query_watch.ElapsedSeconds() / kQueries;

    period_table.AddRow({std::to_string(periods), bench::Secs(build),
                         bench::Millis(query)});
    std::fprintf(stderr, "  %zu periods: build=%.3fs query=%.4fs\n", periods,
                 build, query);
  }
  period_table.Print();
  return 0;
}
