// Reproduces Figure 6: Hybrid continuation response time vs the topK
// parameter, for a fixed pattern of 4 events on max_10000. Accurate and
// Fast are constant lines bounding Hybrid from above and below; Hybrid
// grows linearly in k.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "query/query_processor.h"

using namespace seqdet;

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  const char* kDataset = "max_10000";
  const size_t kQueries = 20;
  const size_t kPatternLen = 4;

  auto log = datagen::LoadDataset(kDataset, options.scale);
  if (!log.ok()) return 1;
  auto db = bench::FreshDb();
  index::IndexOptions idx_options;
  idx_options.num_threads = options.threads;
  auto index = bench::BuildIndexOrDie(db.get(), *log, idx_options);
  query::QueryProcessor qp(index.get());

  datagen::PatternSampler sampler(&(*log), options.seed);
  auto patterns = sampler.SampleManySubsequences(kQueries, kPatternLen);

  auto time_for = [&](const std::function<void(const query::Pattern&)>& fn) {
    Stopwatch watch;
    for (const auto& p : patterns) fn(query::Pattern(p));
    return watch.ElapsedSeconds() / kQueries;
  };

  double accurate = time_for(
      [&](const query::Pattern& p) { (void)qp.ContinueAccurate(p); });
  double fast =
      time_for([&](const query::Pattern& p) { (void)qp.ContinueFast(p); });

  std::printf(
      "=== Figure 6: Hybrid latency vs topK on %s (pattern length %zu, "
      "scale=%.2f) ===\n",
      kDataset, kPatternLen, options.scale);
  std::printf("Accurate constant: %.3f ms, Fast constant: %.3f ms\n",
              accurate * 1e3, fast * 1e3);
  bench::TablePrinter table({"topK", "Hybrid (ms)"});
  for (size_t k : {0, 1, 2, 4, 6, 8, 12, 16}) {
    double hybrid = time_for(
        [&](const query::Pattern& p) { (void)qp.ContinueHybrid(p, k); });
    table.AddRow({std::to_string(k), bench::Millis(hybrid)});
    std::fprintf(stderr, "  k=%zu hybrid=%.4f\n", k, hybrid);
  }
  table.Print();
  return 0;
}
