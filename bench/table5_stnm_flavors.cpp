// Reproduces Table 5: execution time of the three STNM pair-indexing
// flavors (Indexing / Parsing / State) on every process-like dataset.
//
// Expected shape (paper §5.2): the three flavors land within tens of
// percent of each other on process-like logs; large relative gaps only
// where absolute times are small.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"

int main(int argc, char** argv) {
  using namespace seqdet;
  auto options = bench::BenchOptions::Parse(argc, argv);

  std::printf("=== Table 5: STNM pair-indexing flavors, seconds "
              "(scale=%.2f, threads=%zu) ===\n",
              options.scale, options.threads);
  bench::TablePrinter table({"Log file", "Indexing", "Parsing", "State"});

  const index::ExtractionMethod methods[] = {
      index::ExtractionMethod::kIndexing, index::ExtractionMethod::kParsing,
      index::ExtractionMethod::kState};

  for (const std::string& name : datagen::DatasetNames()) {
    auto log = datagen::LoadDataset(name, options.scale);
    if (!log.ok()) return 1;
    std::vector<std::string> row = {name};
    for (auto method : methods) {
      double seconds = bench::TimeSeconds(options.repetitions, [&] {
        auto db = bench::FreshDb();
        index::IndexOptions idx_options;
        idx_options.policy = index::Policy::kSkipTillNextMatch;
        idx_options.method = method;
        idx_options.num_threads = options.threads;
        bench::BuildIndexOrDie(db.get(), *log, idx_options);
      });
      row.push_back(bench::Secs(seconds));
      std::fprintf(stderr, "  %s / %s: %.3fs\n", name.c_str(),
                   index::ExtractionMethodName(method), seconds);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
