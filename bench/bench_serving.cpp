// Serving-layer benchmark: what the worker-pool HTTP server buys over the
// pre-pool design, and that overload and runaway queries degrade the way
// the admission/deadline front end promises. Three sections:
//
//   throughput  8 concurrent clients against (a) a faithful emulation of
//               the old serving loop — one worker, one request per
//               connection, fully inline handling — and (b) the pooled
//               keep-alive server. Two mixes: 8 uniform fast clients
//               (isolates the keep-alive + dispatch savings), and 7 fast
//               clients + 1 slow client that pauses mid-request — the
//               head-of-line blocking case a single-threaded
//               connection-per-request server cannot survive and the
//               worker pool exists to fix. The headline speedup (PR
//               acceptance bar: >= 4x) is the mixed workload; the uniform
//               number is reported alongside.
//   overload    8 clients flood a max_inflight=2 service with slot-holding
//               requests; sheds must be immediate 503s (never a hang), so
//               the flood completes in bounded time with every response
//               either 200 or 503 + Retry-After.
//   deadline    a skip-till-any-match index with one repeated activity
//               makes a 4-step pattern combinatorially explosive; with a
//               deadline budget every request must come back (504) within
//               2x the budget, against a baseline run that shows what the
//               uncapped query costs.
//
// Emits BENCH_serving.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/unique_fd.h"
#include "query/query_processor.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"

using namespace seqdet;

namespace {

constexpr size_t kClients = 8;

/// A small multi-activity log: detection queries against it are cheap, so
/// the throughput section measures serving overhead, not join cost.
eventlog::EventLog ServingLog(size_t traces, uint64_t seed) {
  eventlog::EventLog log;
  Rng rng(seed);
  for (size_t t = 0; t < traces; ++t) {
    int64_t ts = 0;
    for (int i = 0; i < 8; ++i) {
      ts += 1 + static_cast<int64_t>(rng.NextBounded(5));
      log.Append(t, std::string(1, static_cast<char>('a' + i % 4)), ts);
    }
  }
  log.SortAllTraces();
  return log;
}

/// One repeated activity under STAM: C(k,2) postings per trace and a
/// combinatorial number of 4-step matches — the runaway query.
eventlog::EventLog ExplosiveLog(size_t traces, size_t events_per_trace) {
  eventlog::EventLog log;
  for (size_t t = 0; t < traces; ++t) {
    for (size_t i = 0; i < events_per_trace; ++i) {
      log.Append(t, "tick", static_cast<int64_t>(i));
    }
  }
  log.SortAllTraces();
  return log;
}

struct LoadResult {
  uint64_t ok = 0;
  uint64_t shed = 0;      // 503
  uint64_t deadline = 0;  // 504
  uint64_t errors = 0;    // transport failures or unexpected statuses
  double seconds = 0;

  double Rps() const {
    return seconds > 0 ? static_cast<double>(ok + shed + deadline) / seconds
                       : 0;
  }
};

/// A client that pauses mid-request — the "slow network" peer. Against the
/// single-threaded connection-per-request server the pause stalls every
/// other client (head-of-line blocking); against the pool it parks one
/// worker. Uses Connection: close so both servers treat it identically.
void SlowClientLoop(uint16_t port, int64_t pause_ms,
                    const std::atomic<bool>& stop,
                    std::atomic<uint64_t>* served) {
  const std::string request =
      "GET /health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  const size_t split = request.size() / 2;
  while (!stop.load(std::memory_order_relaxed)) {
    seqdet::UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.ok()) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      return;
    }
    (void)::send(fd.get(), request.data(), split, MSG_NOSIGNAL);
    std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
    (void)::send(fd.get(), request.data() + split, request.size() - split,
                 MSG_NOSIGNAL);
    char buffer[4096];
    while (::recv(fd.get(), buffer, sizeof(buffer), 0) > 0) {
    }
    fd.Reset();
    served->fetch_add(1, std::memory_order_relaxed);
  }
}

/// Hammers `target` from `clients` keep-alive connections for `seconds` of
/// wall clock and tallies the response statuses. When `slow_clients` > 0,
/// that many of the clients are mid-request pausers instead.
LoadResult RunLoad(uint16_t port, size_t clients, double seconds,
                   const std::string& target, size_t slow_clients = 0,
                   int64_t pause_ms = 3) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0}, shed{0}, deadline{0}, errors{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Stopwatch watch;
  for (size_t c = 0; c < slow_clients; ++c) {
    threads.emplace_back(
        [&] { SlowClientLoop(port, pause_ms, stop, &ok); });
  }
  for (size_t c = slow_clients; c < clients; ++c) {
    threads.emplace_back([&] {
      server::HttpClient client(port);
      while (!stop.load(std::memory_order_relaxed)) {
        auto response = client.Get(target);
        if (!response.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        switch (response->status) {
          case 200:
            ok.fetch_add(1, std::memory_order_relaxed);
            break;
          case 503:
            shed.fetch_add(1, std::memory_order_relaxed);
            break;
          case 504:
            deadline.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000)));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  LoadResult result;
  result.seconds = watch.ElapsedSeconds();
  result.ok = ok.load();
  result.shed = shed.load();
  result.deadline = deadline.load();
  result.errors = errors.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  const double window_seconds = options.scale >= 1.0 ? 10.0 : 2.0;

  // --- throughput: serial-emulation vs worker pool --------------------
  auto db = bench::FreshDb();
  index::IndexOptions idx_options;
  idx_options.num_threads = 1;
  auto index =
      bench::BuildIndexOrDie(db.get(), ServingLog(64, options.seed),
                             idx_options);
  const std::string detect_target =
      "/detect?q=" + server::HttpClient::UrlEncode("a -> b") + "&limit=5";

  // Serial = the pre-pool serving loop: one worker, one request per
  // connection (the old server handled connections inline in the accept
  // loop with no keep-alive), so every request pays accept + connect +
  // teardown and any stalled connection stalls the whole server. Pooled =
  // this PR's server. Uniform mix isolates keep-alive savings; the mixed
  // run adds one mid-request pauser (head-of-line blocking).
  auto run_mode = [&](bool serial, size_t slow_clients) {
    server::QueryService service(index.get());
    server::HttpServerOptions http_options;
    http_options.num_threads = serial ? 1 : kClients;
    http_options.max_keepalive_requests = serial ? 1 : 1u << 20;
    server::HttpServer http(http_options);
    service.RegisterRoutes(&http);
    if (!http.Start(0).ok()) std::abort();
    LoadResult r = RunLoad(http.port(), kClients, window_seconds,
                           detect_target, slow_clients);
    http.Stop();
    std::printf("  %-7s %-22s %8.0f req/s (%llu ok, %llu errors)\n",
                serial ? "serial" : "pooled",
                slow_clients > 0 ? "7 fast + 1 slow client"
                                 : "8 fast clients",
                r.Rps(), static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.errors));
    return r.Rps();
  };
  std::printf("throughput (detect queries):\n");
  const double serial_uniform_rps = run_mode(/*serial=*/true, 0);
  const double pooled_uniform_rps = run_mode(/*serial=*/false, 0);
  const double serial_mixed_rps = run_mode(/*serial=*/true, 1);
  const double pooled_mixed_rps = run_mode(/*serial=*/false, 1);
  const double uniform_speedup =
      serial_uniform_rps > 0 ? pooled_uniform_rps / serial_uniform_rps : 0;
  const double speedup =
      serial_mixed_rps > 0 ? pooled_mixed_rps / serial_mixed_rps : 0;
  std::printf("speedup: %.2fx uniform, %.2fx with one slow client "
              "(acceptance bar >= 4x)\n\n",
              uniform_speedup, speedup);

  // --- overload: shed, never hang -------------------------------------
  LoadResult overload;
  double overload_seconds = 0;
  uint64_t overload_max_inflight = 2;
  {
    server::ServingOptions serving;
    serving.max_inflight = overload_max_inflight;
    serving.debug_routes = true;
    server::QueryService service(index.get(), serving);
    server::HttpServerOptions pooled;
    pooled.num_threads = kClients;
    server::HttpServer http(pooled);
    service.RegisterRoutes(&http);
    if (!http.Start(0).ok()) return 1;
    Stopwatch watch;
    overload = RunLoad(http.port(), kClients, window_seconds,
                       "/debug/sleep?ms=10");
    overload_seconds = watch.ElapsedSeconds();
    http.Stop();
    std::printf("overload (max_inflight=%llu): %llu served, %llu shed "
                "(503), %llu errors in %.2fs — shed fraction %.2f\n\n",
                static_cast<unsigned long long>(overload_max_inflight),
                static_cast<unsigned long long>(overload.ok),
                static_cast<unsigned long long>(overload.shed),
                static_cast<unsigned long long>(overload.errors),
                overload_seconds,
                static_cast<double>(overload.shed) /
                    static_cast<double>(overload.ok + overload.shed + 1));
  }

  // --- deadline: runaway queries return within 2x budget --------------
  const int64_t budget_ms = 25;
  double baseline_ms = 0;
  double max_elapsed_ms = 0;
  size_t deadline_runs = 0;
  {
    auto stam_db = bench::FreshDb();
    index::IndexOptions stam_options;
    stam_options.policy = index::Policy::kSkipTillAnyMatch;
    stam_options.num_threads = 1;
    auto stam = bench::BuildIndexOrDie(stam_db.get(), ExplosiveLog(36, 36),
                                       stam_options);
    server::QueryService service(stam.get());
    server::HttpServer http;
    service.RegisterRoutes(&http);
    if (!http.Start(0).ok()) return 1;
    server::HttpClient client(http.port());
    const std::string q = server::HttpClient::UrlEncode(
        "tick -> tick -> tick -> tick");

    // Baseline: the uncapped runaway query, once.
    {
      Stopwatch watch;
      auto response = client.Get("/detect?q=" + q + "&limit=1");
      baseline_ms = watch.ElapsedMillis();
      if (!response.ok() || response->status != 200) {
        std::fprintf(stderr, "baseline query failed\n");
        return 1;
      }
    }
    // Capped: every run must come back 504 within 2x the budget.
    for (size_t r = 0; r < options.repetitions * 3; ++r) {
      Stopwatch watch;
      auto response = client.Get("/detect?q=" + q + "&deadline_ms=" +
                                 std::to_string(budget_ms));
      double elapsed = watch.ElapsedMillis();
      if (!response.ok() || response->status != 504) {
        std::fprintf(stderr, "deadline run %zu: expected 504\n", r);
        return 1;
      }
      max_elapsed_ms = std::max(max_elapsed_ms, elapsed);
      ++deadline_runs;
    }
    http.Stop();
    std::printf("deadline: uncapped %0.1f ms; %zu capped runs at "
                "budget %lld ms, max observed %.1f ms (%.2fx budget, "
                "bar <= 2x)\n",
                baseline_ms, deadline_runs,
                static_cast<long long>(budget_ms), max_elapsed_ms,
                max_elapsed_ms / static_cast<double>(budget_ms));
  }

  // --- JSON ------------------------------------------------------------
  FILE* json = std::fopen("BENCH_serving.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"clients\": %zu,\n"
               "  \"window_seconds\": %.1f,\n"
               "  \"uniform\": {\"serial_rps\": %.1f, \"pooled_rps\": %.1f, "
               "\"speedup\": %.2f},\n"
               "  \"one_slow_client\": {\"serial_rps\": %.1f, "
               "\"pooled_rps\": %.1f, \"speedup\": %.2f},\n"
               "  \"speedup\": %.2f,\n"
               "  \"speedup_target\": 4.0,\n"
               "  \"speedup_target_met\": %s,\n"
               "  \"overload\": {\"max_inflight\": %llu, \"served\": %llu, "
               "\"shed_503\": %llu, \"errors\": %llu, "
               "\"wall_seconds\": %.2f, \"hung\": false},\n"
               "  \"deadline\": {\"budget_ms\": %lld, "
               "\"uncapped_baseline_ms\": %.1f, \"runs\": %zu, "
               "\"max_elapsed_ms\": %.1f, \"within_2x_budget\": %s}\n"
               "}\n",
               kClients, window_seconds, serial_uniform_rps,
               pooled_uniform_rps, uniform_speedup, serial_mixed_rps,
               pooled_mixed_rps, speedup, speedup,
               speedup >= 4.0 ? "true" : "false",
               static_cast<unsigned long long>(overload_max_inflight),
               static_cast<unsigned long long>(overload.ok),
               static_cast<unsigned long long>(overload.shed),
               static_cast<unsigned long long>(overload.errors),
               overload_seconds, static_cast<long long>(budget_ms),
               baseline_ms, deadline_runs, max_elapsed_ms,
               max_elapsed_ms <= 2.0 * static_cast<double>(budget_ms)
                   ? "true"
                   : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_serving.json\n");
  return 0;
}
