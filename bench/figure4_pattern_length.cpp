// Reproduces Figure 4: our detection-query response time as a function of
// the query pattern length (the incremental pair-join pays one join per
// extra pattern event, so latency grows roughly linearly).

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "query/query_processor.h"

using namespace seqdet;

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  const char* kDataset = "max_10000";
  const size_t kQueries = 30;

  auto log = datagen::LoadDataset(kDataset, options.scale);
  if (!log.ok()) return 1;

  auto db = bench::FreshDb();
  index::IndexOptions idx_options;
  idx_options.policy = index::Policy::kSkipTillNextMatch;
  idx_options.num_threads = options.threads;
  auto index = bench::BuildIndexOrDie(db.get(), *log, idx_options);
  query::QueryProcessor qp(index.get());

  std::printf(
      "=== Figure 4: detection latency vs pattern length on %s "
      "(scale=%.2f, %zu queries/point) ===\n",
      kDataset, options.scale, kQueries);
  bench::TablePrinter table({"pattern length", "avg latency (ms)",
                             "avg matches"});
  for (size_t len = 2; len <= 12; ++len) {
    datagen::PatternSampler sampler(&(*log), options.seed + len);
    auto patterns = sampler.SampleManySubsequences(kQueries, len);
    Stopwatch watch;
    size_t total_matches = 0;
    for (const auto& p : patterns) {
      auto matches = qp.Detect(query::Pattern(p));
      if (matches.ok()) total_matches += matches->size();
    }
    double avg = watch.ElapsedSeconds() / kQueries;
    table.AddRow({std::to_string(len), bench::Millis(avg),
                  StringPrintf("%.1f", static_cast<double>(total_matches) /
                                           kQueries)});
  }
  table.Print();
  return 0;
}
