// Morsel-driven intra-query parallelism: cold and warm multi-pair Detect
// and ContinueAccurate through the serial engine and through query pools
// of 1/2/4/8 threads, over a hot-pair-heavy log (few activities, so every
// pair's posting list is long and every join is morselizable).
//
// The serial row is the parity guard: the parallel engine must not tax the
// pool-less path. The speedup fields are honest wall-clock measurements on
// whatever box runs this — on a single hardware thread they hover around
// 1.0 by construction (the JSON records hardware_concurrency so readers
// can interpret them).
//
// Emits BENCH_query_parallel.json (override with --out=<path>).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "datagen/generators.h"
#include "query/query_processor.h"

namespace seqdet {
namespace {

using bench::BenchOptions;
using bench::TablePrinter;
using query::ContinuationProposal;
using query::Pattern;
using query::PatternMatch;
using query::QueryProcessor;

constexpr size_t kActivities = 4;
constexpr size_t kPatternLength = 5;  // 4 pairs: every query is multi-pair

/// Hot-pair log: few activities over many traces, so each of the pattern's
/// pairs has a posting list long enough to split into many morsels.
eventlog::EventLog HotLog(size_t traces, uint64_t seed) {
  datagen::RandomLogConfig config;
  config.num_traces = traces;
  config.max_events_per_trace = 40;
  config.num_activities = kActivities;
  config.seed = seed;
  config.mean_gap = 3;
  return datagen::GenerateRandomLog(config);
}

std::vector<Pattern> Workload(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Pattern> patterns;
  patterns.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<eventlog::ActivityId> p(kPatternLength);
    for (auto& a : p) {
      a = static_cast<eventlog::ActivityId>(rng.NextBounded(kActivities));
    }
    patterns.emplace_back(std::move(p));
  }
  return patterns;
}

/// Morsel thresholds sized to the bench log: the default production knobs
/// target serving-sized lists, while the scaled bench log must still split
/// into enough morsels to occupy an 8-thread pool.
query::ParallelExecutionOptions BenchMorsels() {
  query::ParallelExecutionOptions par;
  par.morsel_target_postings = 4096;
  par.min_parallel_join_input = 4096;
  par.min_parallel_candidates = 2;
  return par;
}

struct EngineTimes {
  std::string name;
  size_t threads = 0;  // 0 = serial engine (no pool)
  double cold_detect_ms_per_query = 0;
  double warm_detect_ms_per_query = 0;
  double continue_ms_per_query = 0;
  size_t matches = 0;
};

int Main(int argc, char** argv) {
  auto options = BenchOptions::Parse(argc, argv);
  std::string out_path = "BENCH_query_parallel.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--out=")) out_path = arg.substr(6);
  }
  const size_t traces =
      std::max<size_t>(2048, static_cast<size_t>(65536 * options.scale));
  eventlog::EventLog log = HotLog(traces, options.seed);

  index::IndexOptions cold_options;
  cold_options.num_threads = 2;
  cold_options.cache_bytes = 0;  // every fetch decodes: the cold path
  auto cold_db = bench::FreshDb();
  auto cold_index = bench::BuildIndexOrDie(cold_db.get(), log, cold_options);

  index::IndexOptions warm_options;
  warm_options.num_threads = 2;
  warm_options.cache_bytes = 256u << 20;
  auto warm_db = bench::FreshDb();
  auto warm_index = bench::BuildIndexOrDie(warm_db.get(), log, warm_options);

  const auto patterns = Workload(/*count=*/8, options.seed ^ 0xBE);
  const std::vector<size_t> pool_sizes{0, 1, 2, 4, 8};

  // Steady-state warmup. Detect's filtered fetches ride the trace-selective
  // block path, which caches decoded blocks but never promotes whole
  // posting lists; it is the continuation pass's unfiltered fetches that
  // install the whole-list entries every later fetch hits. Run both once,
  // untimed, so the first measured config sees the same cache steady state
  // as every other one instead of absorbing the promotion cost.
  {
    QueryProcessor warmup(warm_index.get());
    for (const Pattern& p : patterns) {
      if (!warmup.Detect(p).ok() || !warmup.ContinueAccurate(p).ok()) {
        std::fprintf(stderr, "warmup failed\n");
        std::abort();
      }
    }
  }

  std::vector<EngineTimes> rows;
  for (size_t threads : pool_sizes) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    QueryProcessor cold_qp(cold_index.get(), pool.get(), BenchMorsels());
    QueryProcessor warm_qp(warm_index.get(), pool.get(), BenchMorsels());

    EngineTimes row;
    row.name = threads == 0 ? "serial" : std::to_string(threads) + "t";
    row.threads = threads;

    auto detect_all = [&patterns, &row](const QueryProcessor& qp) {
      size_t total = 0;
      for (const Pattern& p : patterns) {
        auto matches = qp.Detect(p);
        if (!matches.ok()) {
          std::fprintf(stderr, "detect failed: %s\n",
                       matches.status().ToString().c_str());
          std::abort();
        }
        total += matches->size();
      }
      row.matches = total;
    };
    row.cold_detect_ms_per_query =
        bench::TimeSeconds(options.repetitions,
                           [&] { detect_all(cold_qp); }) *
        1000.0 / static_cast<double>(patterns.size());
    detect_all(warm_qp);  // fill the cache before timing the warm path
    row.warm_detect_ms_per_query =
        bench::TimeSeconds(options.repetitions,
                           [&] { detect_all(warm_qp); }) *
        1000.0 / static_cast<double>(patterns.size());
    row.continue_ms_per_query =
        bench::TimeSeconds(options.repetitions, [&] {
          for (const Pattern& p : patterns) {
            auto proposals = warm_qp.ContinueAccurate(p);
            if (!proposals.ok()) {
              std::fprintf(stderr, "continue failed: %s\n",
                           proposals.status().ToString().c_str());
              std::abort();
            }
          }
        }) *
        1000.0 / static_cast<double>(patterns.size());
    rows.push_back(row);
  }

  bool matches_identical = true;
  for (const EngineTimes& row : rows) {
    matches_identical = matches_identical && row.matches == rows[0].matches;
  }
  if (!matches_identical) {
    std::fprintf(stderr, "MISMATCH: engines disagree on match counts\n");
  }

  TablePrinter table({"engine", "cold detect ms/q", "warm detect ms/q",
                      "continue ms/q", "matches"});
  for (const EngineTimes& row : rows) {
    table.AddRow({row.name, StringPrintf("%.3f", row.cold_detect_ms_per_query),
                  StringPrintf("%.3f", row.warm_detect_ms_per_query),
                  StringPrintf("%.3f", row.continue_ms_per_query),
                  std::to_string(row.matches)});
  }
  std::printf("morsel-driven parallel query engine (%zu traces, %zu-event "
              "patterns, %zu hardware threads)\n",
              traces, kPatternLength, ThreadPool::HardwareConcurrency());
  table.Print();

  const EngineTimes& serial = rows[0];
  auto speedup_vs_serial = [&serial](const EngineTimes& row) {
    return row.cold_detect_ms_per_query > 0
               ? serial.cold_detect_ms_per_query / row.cold_detect_ms_per_query
               : 0;
  };
  // Parity guard: the 1-thread pool config gates every parallel path off
  // (fan-outs need >= 2 workers), so this ratio is the pool-management tax
  // on the serial join; check_bench.sh fails when it drops.
  double parity = speedup_vs_serial(rows[1]);
  double cold_8t = speedup_vs_serial(rows.back());
  std::printf("cold speedup at 8 threads: %.2fx, 1-thread parity: %.2fx\n",
              cold_8t, parity);

  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"query_parallel\",\n");
  std::fprintf(json, "  \"traces\": %zu,\n", traces);
  std::fprintf(json, "  \"scale\": %.3f,\n", options.scale);
  std::fprintf(json, "  \"repetitions\": %zu,\n", options.repetitions);
  std::fprintf(json, "  \"hardware_concurrency\": %zu,\n",
               ThreadPool::HardwareConcurrency());
  std::fprintf(json, "  \"matches_identical\": %s,\n",
               matches_identical ? "true" : "false");
  std::fprintf(json, "  \"configs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const EngineTimes& row = rows[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"threads\": %zu,\n"
                 "     \"cold_detect_ms_per_query\": %.4f,\n"
                 "     \"warm_detect_ms_per_query\": %.4f,\n"
                 "     \"continue_ms_per_query\": %.4f, \"matches\": %zu}%s\n",
                 row.name.c_str(), row.threads, row.cold_detect_ms_per_query,
                 row.warm_detect_ms_per_query, row.continue_ms_per_query,
                 row.matches, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"one_thread_parity_speedup\": %.4f,\n", parity);
  std::fprintf(json, "  \"cold_detect_speedup_8t\": %.4f\n", cold_8t);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace seqdet

int main(int argc, char** argv) { return seqdet::Main(argc, argv); }
