// google-benchmark micro-benchmarks of the hot operations underneath the
// reproduction harnesses: storage point ops, pair extraction per flavor,
// posting-list decode, and detection joins.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/generators.h"
#include "index/pair_extraction.h"
#include "index/sequence_index.h"
#include "query/query_processor.h"
#include "storage/database.h"

namespace {

using namespace seqdet;

std::unique_ptr<storage::Database> MicroDb() {
  storage::DbOptions options;
  options.table.in_memory = true;
  options.table.use_wal = false;
  return std::move(storage::Database::Open("", options)).value();
}

void BM_StoragePut(benchmark::State& state) {
  auto db = MicroDb();
  storage::Table* table = *db->GetOrCreateTable("t");
  Rng rng(1);
  std::string value(64, 'v');
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.NextBounded(100000));
    benchmark::DoNotOptimize(table->Put(key, value));
  }
}
BENCHMARK(BM_StoragePut);

void BM_StorageAppend(benchmark::State& state) {
  auto db = MicroDb();
  storage::Table* table = *db->GetOrCreateTable("t");
  Rng rng(2);
  std::string fragment(16, 'f');
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.NextBounded(1000));
    benchmark::DoNotOptimize(table->Append(key, fragment));
  }
}
BENCHMARK(BM_StorageAppend);

void BM_StorageGetAfterFlush(benchmark::State& state) {
  auto db = MicroDb();
  storage::Table* table = *db->GetOrCreateTable("t");
  for (int i = 0; i < 10000; ++i) {
    (void)table->Put("key" + std::to_string(i), std::string(64, 'v'));
  }
  (void)table->Flush();
  Rng rng(3);
  std::string value;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.NextBounded(10000));
    benchmark::DoNotOptimize(table->Get(key, &value));
  }
}
BENCHMARK(BM_StorageGetAfterFlush);

eventlog::Trace MicroTrace(size_t n, size_t l, uint64_t seed) {
  Rng rng(seed);
  eventlog::Trace trace;
  trace.id = 1;
  for (size_t i = 0; i < n; ++i) {
    trace.events.push_back(
        {static_cast<eventlog::ActivityId>(rng.NextBounded(l)),
         static_cast<eventlog::Timestamp>(i + 1)});
  }
  return trace;
}

void BM_ExtractStnm(benchmark::State& state) {
  auto method = static_cast<index::ExtractionMethod>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  size_t l = static_cast<size_t>(state.range(2));
  eventlog::Trace trace = MicroTrace(n, l, 7);
  std::vector<index::PairRow> rows;
  for (auto _ : state) {
    rows.clear();
    ExtractPairs(trace, index::Policy::kSkipTillNextMatch, method, &rows);
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetLabel(index::ExtractionMethodName(method));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ExtractStnm)
    ->ArgsProduct({{0, 1, 2}, {256, 2048}, {8, 64, 512}});

void BM_ExtractSc(benchmark::State& state) {
  eventlog::Trace trace =
      MicroTrace(static_cast<size_t>(state.range(0)), 32, 8);
  std::vector<index::PairRow> rows;
  for (auto _ : state) {
    rows.clear();
    ExtractScPairs(trace, &rows);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_ExtractSc)->Arg(256)->Arg(4096);

struct DetectFixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<index::SequenceIndex> index;
  std::unique_ptr<query::QueryProcessor> qp;

  DetectFixture() {
    datagen::RandomLogConfig config;
    config.num_traces = 500;
    config.max_events_per_trace = 60;
    config.num_activities = 12;
    auto log = datagen::GenerateRandomLog(config);
    db = MicroDb();
    index::IndexOptions options;
    options.num_threads = 1;
    index = std::move(index::SequenceIndex::Open(db.get(), options)).value();
    (void)index->Update(log);
    qp = std::make_unique<query::QueryProcessor>(index.get());
  }
};

void BM_DetectPattern(benchmark::State& state) {
  static DetectFixture fixture;  // shared across runs; built once
  size_t len = static_cast<size_t>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    std::vector<eventlog::ActivityId> pattern;
    for (size_t i = 0; i < len; ++i) {
      pattern.push_back(static_cast<eventlog::ActivityId>(rng.NextBounded(12)));
    }
    auto matches = fixture.qp->Detect(query::Pattern(pattern));
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_DetectPattern)->Arg(2)->Arg(5)->Arg(10);

void BM_ContinueFast(benchmark::State& state) {
  static DetectFixture fixture;
  Rng rng(12);
  for (auto _ : state) {
    std::vector<eventlog::ActivityId> pattern = {
        static_cast<eventlog::ActivityId>(rng.NextBounded(12)),
        static_cast<eventlog::ActivityId>(rng.NextBounded(12))};
    auto proposals = fixture.qp->ContinueFast(query::Pattern(pattern));
    benchmark::DoNotOptimize(proposals);
  }
}
BENCHMARK(BM_ContinueFast);

}  // namespace

BENCHMARK_MAIN();
