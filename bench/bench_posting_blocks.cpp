// Measures what the v2 block-structured posting format buys on the cold
// read path (cache_bytes = 0, every Detect decodes stored bytes): flat v1
// values vs folded v2 blocks whose headers let trace-selective queries skip
// whole blocks of the hot pair lists. The workload is the shape the skip
// metadata serves — patterns anchored on a rare activity joined against
// hot pairs that occur in every trace — plus a hot-only control where no
// pruning is possible (v2 must not regress).
//
// Emits BENCH_posting_blocks.json (override with --out=<path>) alongside
// the human-readable table.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "query/query_processor.h"

using namespace seqdet;

namespace {

// Each rare activity occupies one small contiguous band of trace ids (the
// incident-window shape: trace ids correlate with arrival time, a rare
// condition fires during one window). Its posting blocks then advertise a
// narrow [min_trace, max_trace], and every block of the hot pair lists
// outside that band is skipped from the header alone.
constexpr size_t kRareActivities = 8;
constexpr size_t kRareBandTraces = 8;
constexpr size_t kHotActivities = 6;

std::string ActName(const char* prefix, size_t i) {
  std::string name(prefix);
  name += std::to_string(i);
  return name;
}

// Synthetic skewed log: every trace walks the hot activities H0..H5 three
// times (hot pairs occur in *all* traces); rare activity R<k> opens only
// the kRareBandTraces traces of band k, the bands spread evenly across the
// trace-id space.
eventlog::EventLog SkewedLog(size_t traces, uint64_t seed) {
  eventlog::EventLog log;
  Rng rng(seed);
  const size_t stride = traces / kRareActivities;
  for (size_t t = 0; t < traces; ++t) {
    int64_t ts = static_cast<int64_t>(t) * 1000;
    if (t % stride < kRareBandTraces) {
      log.Append(t, ActName("R", t / stride), ts++);
    }
    for (int round = 0; round < 3; ++round) {
      for (size_t h = 0; h < kHotActivities; ++h) {
        ts += 1 + static_cast<int64_t>(rng.NextBounded(5));
        log.Append(t, ActName("H", h), ts);
      }
    }
  }
  log.SortAllTraces();
  return log;
}

struct WorkloadResult {
  std::string name;
  size_t queries = 0;
  size_t matches = 0;
  double v1_ms_per_query = 0;
  double v2_ms_per_query = 0;
  uint64_t v1_bytes_decoded = 0;
  uint64_t v2_bytes_decoded = 0;
  uint64_t v2_blocks_decoded = 0;
  uint64_t v2_blocks_skipped = 0;
  uint64_t v2_bytes_skipped = 0;

  double Speedup() const {
    return v2_ms_per_query > 0 ? v1_ms_per_query / v2_ms_per_query : 0;
  }
  double DecodedBytesReduction() const {
    return v1_bytes_decoded > 0
               ? 1.0 - static_cast<double>(v2_bytes_decoded) /
                           static_cast<double>(v1_bytes_decoded)
               : 0;
  }
};

// One timed pass of `queries`; also returns total matches (for the
// v1-vs-v2 equivalence check) and the decode-counter deltas of the pass.
struct PassResult {
  double ms_per_query = 0;
  size_t matches = 0;
  index::IndexReadStats delta;
};

PassResult RunDetectSet(const index::SequenceIndex& index,
                        const query::QueryProcessor& qp,
                        const std::vector<query::Pattern>& queries,
                        size_t reps) {
  PassResult result;
  // One untimed pass first: the posting cache is off, so every timed query
  // still decodes from storage — this only warms CPU caches and the
  // allocator, which otherwise dominate the first repetition's time.
  for (const auto& p : queries) {
    if (!qp.Detect(p).ok()) std::abort();
  }
  index::IndexReadStats before = index.read_stats();
  double seconds = bench::TimeSeconds(reps, [&] {
    result.matches = 0;
    for (const auto& p : queries) {
      auto matches = qp.Detect(p);
      if (!matches.ok()) std::abort();
      result.matches += matches->size();
    }
  });
  index::IndexReadStats after = index.read_stats();
  result.ms_per_query = seconds * 1e3 / static_cast<double>(queries.size());
  size_t total = reps * queries.size();
  result.delta.postings_decoded =
      (after.postings_decoded - before.postings_decoded) / total;
  result.delta.bytes_decoded =
      (after.bytes_decoded - before.bytes_decoded) / total;
  result.delta.blocks_decoded =
      (after.blocks_decoded - before.blocks_decoded) / total;
  result.delta.blocks_skipped =
      (after.blocks_skipped - before.blocks_skipped) / total;
  result.delta.bytes_skipped =
      (after.bytes_skipped - before.bytes_skipped) / total;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  std::string out_path = "BENCH_posting_blocks.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--out=")) out_path = arg.substr(6);
  }
  const size_t traces = std::max<size_t>(
      8192, static_cast<size_t>(163840 * options.scale));

  eventlog::EventLog log = SkewedLog(traces, options.seed);

  // Identical logs, identical (cache-less) read path; only the posting
  // format differs. The v2 index is folded, as a maintained index would be.
  auto build = [&](uint32_t format, std::unique_ptr<storage::Database>* db) {
    *db = bench::FreshDb();
    index::IndexOptions idx_options;
    idx_options.num_threads = options.threads;
    idx_options.cache_bytes = 0;
    idx_options.posting_format = format;
    return bench::BuildIndexOrDie(db->get(), log, idx_options);
  };
  std::unique_ptr<storage::Database> v1_db, v2_db;
  auto v1 = build(index::kPostingFormatFlat, &v1_db);
  auto v2 = build(index::kPostingFormatBlocked, &v2_db);
  auto fold = v2->FoldPostings();
  if (!fold.ok()) {
    std::fprintf(stderr, "fold failed: %s\n", fold.ToString().c_str());
    return 1;
  }
  query::QueryProcessor v1_qp(v1.get());
  query::QueryProcessor v2_qp(v2.get());

  auto id = [&](const std::string& name) {
    return v1->dictionary().Lookup(name);
  };
  std::vector<query::Pattern> rare_anchored;
  for (size_t k = 0; k < kRareActivities; ++k) {
    query::Pattern p;
    p.activities = {id(ActName("R", k)), id("H0"), id("H1")};
    rare_anchored.push_back(std::move(p));
    p.activities = {id(ActName("R", k)), id("H2"), id("H3")};
    rare_anchored.push_back(std::move(p));
  }
  std::vector<query::Pattern> hot_only;
  for (size_t h = 0; h + 2 < kHotActivities; ++h) {
    query::Pattern p;
    p.activities = {id(ActName("H", h)),
                    id(ActName("H", h + 1)),
                    id(ActName("H", h + 2))};
    hot_only.push_back(std::move(p));
  }

  std::printf(
      "=== posting format: flat v1 vs blocked v2 (folded), cache off, "
      "%zu traces, reps=%zu ===\n",
      traces, options.repetitions);

  std::vector<WorkloadResult> results;
  bool counts_match = true;
  auto run = [&](const std::string& name,
                 const std::vector<query::Pattern>& queries) {
    WorkloadResult r;
    r.name = name;
    r.queries = queries.size();
    PassResult p1 = RunDetectSet(*v1, v1_qp, queries, options.repetitions);
    PassResult p2 = RunDetectSet(*v2, v2_qp, queries, options.repetitions);
    if (p1.matches != p2.matches) {
      std::fprintf(stderr,
                   "MISMATCH on %s: v1 found %zu matches, v2 found %zu\n",
                   name.c_str(), p1.matches, p2.matches);
      counts_match = false;
    }
    r.matches = p1.matches;
    r.v1_ms_per_query = p1.ms_per_query;
    r.v2_ms_per_query = p2.ms_per_query;
    r.v1_bytes_decoded = p1.delta.bytes_decoded;
    r.v2_bytes_decoded = p2.delta.bytes_decoded;
    r.v2_blocks_decoded = p2.delta.blocks_decoded;
    r.v2_blocks_skipped = p2.delta.blocks_skipped;
    r.v2_bytes_skipped = p2.delta.bytes_skipped;
    results.push_back(r);
  };
  run("detect_rare_anchored", rare_anchored);
  run("detect_hot_only", hot_only);

  bench::TablePrinter table({"workload", "v1 ms/query", "v2 ms/query",
                             "speedup", "v1 KiB dec/query", "v2 KiB dec/query",
                             "blocks skipped/query"});
  for (const auto& r : results) {
    table.AddRow({r.name, StringPrintf("%.4f", r.v1_ms_per_query),
                  StringPrintf("%.4f", r.v2_ms_per_query),
                  StringPrintf("%.1fx", r.Speedup()),
                  StringPrintf("%.1f", r.v1_bytes_decoded / 1024.0),
                  StringPrintf("%.1f", r.v2_bytes_decoded / 1024.0),
                  StringPrintf("%llu", static_cast<unsigned long long>(
                                           r.v2_blocks_skipped))});
  }
  table.Print();
  if (!counts_match) return 1;

  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"posting_blocks\",\n"
               "  \"traces\": %zu,\n  \"scale\": %.3f,\n"
               "  \"repetitions\": %zu,\n  \"match_counts_equal\": %s,\n"
               "  \"workloads\": [\n",
               traces, options.scale, options.repetitions,
               counts_match ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        json,
        "    {\"name\": \"%s\", \"queries\": %zu, \"matches\": %zu,\n"
        "     \"v1_cold_ms_per_query\": %.4f, \"v2_cold_ms_per_query\": "
        "%.4f, \"speedup\": %.2f,\n"
        "     \"v1_bytes_decoded_per_query\": %llu, "
        "\"v2_bytes_decoded_per_query\": %llu,\n"
        "     \"decoded_bytes_reduction\": %.3f, "
        "\"v2_blocks_decoded_per_query\": %llu,\n"
        "     \"v2_blocks_skipped_per_query\": %llu, "
        "\"v2_bytes_skipped_per_query\": %llu}%s\n",
        r.name.c_str(), r.queries, r.matches, r.v1_ms_per_query,
        r.v2_ms_per_query, r.Speedup(),
        static_cast<unsigned long long>(r.v1_bytes_decoded),
        static_cast<unsigned long long>(r.v2_bytes_decoded),
        r.DecodedBytesReduction(),
        static_cast<unsigned long long>(r.v2_blocks_decoded),
        static_cast<unsigned long long>(r.v2_blocks_skipped),
        static_cast<unsigned long long>(r.v2_bytes_skipped),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
