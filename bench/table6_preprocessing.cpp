// Reproduces Table 6: index-construction time of
//   [19] (subtree/suffix-array baseline)  vs
//   our Strict-contiguity index (1 thread / all cores)  vs
//   our STNM Indexing flavor (1 thread / all cores)     vs
//   the Elasticsearch-like baseline.
//
// Expected shape (paper §5.3): [19] competitive on small synthetic logs,
// collapsing on real-profile (BPI-like) logs — possibly refusing to finish
// at all on bpi_2017 (reported as "very high"); Strict cheaper than
// Indexing; all-cores several times faster than 1 thread; ES-like indexing
// slower than ours on the large/real datasets.

#include <cstdio>

#include "baselines/esearch/es_engine.h"
#include "baselines/subtree/subtree_index.h"
#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"

using namespace seqdet;

namespace {

double TimeOurs(const eventlog::EventLog& log, index::Policy policy,
                size_t threads, const bench::BenchOptions& options) {
  return bench::TimeSeconds(options.repetitions, [&] {
    auto db = bench::FreshDb();
    index::IndexOptions idx_options;
    idx_options.policy = policy;
    idx_options.method = index::ExtractionMethod::kIndexing;
    idx_options.num_threads = threads;
    bench::BuildIndexOrDie(db.get(), log, idx_options);
  });
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  std::printf("=== Table 6: index build times in seconds (scale=%.2f) ===\n",
              options.scale);
  bench::TablePrinter table({"Log file", "[19]", "Strict (1 thread)",
                             "Strict", "Indexing (1 thread)", "Indexing",
                             "Elasticsearch-like"});

  // Budget reproducing the paper's bpi_2017 failure: the subtree baseline
  // aborts when its subtree space explodes.
  baseline::SubtreeIndexOptions subtree_options;
  subtree_options.max_trie_nodes = 32u << 20;

  for (const std::string& name : datagen::DatasetNames()) {
    auto log = datagen::LoadDataset(name, options.scale);
    if (!log.ok()) return 1;

    std::string subtree_time;
    {
      double total = 0;
      bool failed = false;
      for (size_t r = 0; r < options.repetitions && !failed; ++r) {
        Stopwatch watch;
        auto subtree = baseline::SubtreeIndex::Build(*log, subtree_options);
        if (!subtree.ok()) {
          failed = true;
          break;
        }
        total += watch.ElapsedSeconds();
      }
      subtree_time =
          failed ? "very high (aborted)"
                 : bench::Secs(total / options.repetitions);
    }
    std::fprintf(stderr, "  %s [19]: %s\n", name.c_str(),
                 subtree_time.c_str());

    double strict1 =
        TimeOurs(*log, index::Policy::kStrictContiguity, 1, options);
    double strict_all =
        TimeOurs(*log, index::Policy::kStrictContiguity, options.threads,
                 options);
    double stnm1 =
        TimeOurs(*log, index::Policy::kSkipTillNextMatch, 1, options);
    double stnm_all =
        TimeOurs(*log, index::Policy::kSkipTillNextMatch, options.threads,
                 options);

    double es = bench::TimeSeconds(options.repetitions, [&] {
      auto engine = baseline::EsLikeEngine::Build(*log);
      if (!engine.ok()) std::abort();
    });
    std::fprintf(stderr,
                 "  %s strict1=%.3f strict=%.3f stnm1=%.3f stnm=%.3f "
                 "es=%.3f\n",
                 name.c_str(), strict1, strict_all, stnm1, stnm_all, es);

    table.AddRow({name, subtree_time, bench::Secs(strict1),
                  bench::Secs(strict_all), bench::Secs(stnm1),
                  bench::Secs(stnm_all), bench::Secs(es)});
  }
  table.Print();
  return 0;
}
