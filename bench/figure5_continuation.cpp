// Reproduces Figure 5: response time of the Accurate vs Fast pattern-
// continuation methods as a function of the query pattern length
// (dataset max_10000).
//
// Expected shape (paper §5.4.3): Accurate grows with pattern length like
// detection does; Fast stays flat (it only reads precomputed statistics).

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "query/query_processor.h"

using namespace seqdet;

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  const char* kDataset = "max_10000";
  const size_t kQueries = 20;

  auto log = datagen::LoadDataset(kDataset, options.scale);
  if (!log.ok()) return 1;
  auto db = bench::FreshDb();
  index::IndexOptions idx_options;
  idx_options.num_threads = options.threads;
  auto index = bench::BuildIndexOrDie(db.get(), *log, idx_options);
  query::QueryProcessor qp(index.get());

  // "Accurate (Alg.3)" is the paper's literal algorithm — one full
  // detection per candidate, the curve Figure 5 plots. "Accurate (incr)"
  // is this library's optimized variant that detects the base pattern
  // once. Fast stays flat in both worlds.
  std::printf(
      "=== Figure 5: continuation latency vs pattern length on %s "
      "(scale=%.2f, %zu queries/point) ===\n",
      kDataset, options.scale, kQueries);
  bench::TablePrinter table({"pattern length", "Accurate Alg.3 (ms)",
                             "Accurate incr (ms)", "Fast (ms)"});
  for (size_t len = 1; len <= 8; ++len) {
    datagen::PatternSampler sampler(&(*log), options.seed + len);
    auto patterns = sampler.SampleManySubsequences(kQueries, len);

    Stopwatch watch;
    for (const auto& p : patterns) {
      auto proposals = qp.ContinueAccurateNaive(query::Pattern(p));
      (void)proposals;
    }
    double naive = watch.ElapsedSeconds() / kQueries;

    watch.Restart();
    for (const auto& p : patterns) {
      auto proposals = qp.ContinueAccurate(query::Pattern(p));
      (void)proposals;
    }
    double accurate = watch.ElapsedSeconds() / kQueries;

    watch.Restart();
    for (const auto& p : patterns) {
      auto proposals = qp.ContinueFast(query::Pattern(p));
      (void)proposals;
    }
    double fast = watch.ElapsedSeconds() / kQueries;

    table.AddRow({std::to_string(len), bench::Millis(naive),
                  bench::Millis(accurate), bench::Millis(fast)});
    std::fprintf(stderr, "  len%zu alg3=%.4f accurate=%.4f fast=%.4f\n", len,
                 naive, accurate, fast);
  }
  table.Print();
  return 0;
}
