// Reproduces Figure 3: the three STNM indexing flavors on *random* logs
// (no event correlation), under three sweeps:
//   (a) max events/trace 100..4000   (1000 traces, 500 activities)
//   (b) traces 100..5000             (1000 max events, 100 activities)
//   (c) activities 4..2000           (500 traces, 500 max events)
//
// Expected shape (paper §5.2): Indexing dominates (up to ~an order of
// magnitude); Parsing degrades non-linearly with the number of distinct
// activities; State sits between.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/generators.h"

using namespace seqdet;

namespace {

double RunFlavorBuild(const eventlog::EventLog& log,
                      index::ExtractionMethod method,
                      const bench::BenchOptions& options) {
  return bench::TimeSeconds(options.repetitions, [&] {
    auto db = bench::FreshDb();
    index::IndexOptions idx_options;
    idx_options.policy = index::Policy::kSkipTillNextMatch;
    idx_options.method = method;
    idx_options.num_threads = options.threads;
    bench::BuildIndexOrDie(db.get(), log, idx_options);
  });
}

double RunFlavorExtractOnly(const eventlog::EventLog& log,
                            index::ExtractionMethod method,
                            const bench::BenchOptions& options) {
  return bench::TimeSeconds(options.repetitions, [&] {
    std::vector<index::PairRow> rows;
    for (const auto& trace : log.traces()) {
      rows.clear();
      ExtractPairs(trace, index::Policy::kSkipTillNextMatch, method, &rows);
    }
  });
}

// Two numbers per flavor: "extract" isolates the Section-4 algorithm (the
// quantity Figure 3 differentiates); "build" is end-to-end including the
// staging/commit path into the key-value store, which is identical across
// flavors and dominates at small --scale.
void Sweep(const char* title, const std::vector<size_t>& xs,
           const std::function<datagen::RandomLogConfig(size_t)>& config_fn,
           const bench::BenchOptions& options) {
  std::printf("--- %s ---\n", title);
  bench::TablePrinter table({"x", "events", "Indexing(extract)",
                             "Parsing(extract)", "State(extract)",
                             "Indexing(build)", "Parsing(build)",
                             "State(build)"});
  const index::ExtractionMethod methods[] = {
      index::ExtractionMethod::kIndexing, index::ExtractionMethod::kParsing,
      index::ExtractionMethod::kState};
  for (size_t x : xs) {
    datagen::RandomLogConfig config = config_fn(x);
    eventlog::EventLog log = datagen::GenerateRandomLog(config);
    std::vector<std::string> row = {std::to_string(x),
                                    std::to_string(log.num_events())};
    for (auto method : methods) {
      double secs = RunFlavorExtractOnly(log, method, options);
      row.push_back(bench::Secs(secs));
      std::fprintf(stderr, "  %s x=%zu %s extract: %.3fs\n", title, x,
                   index::ExtractionMethodName(method), secs);
    }
    for (auto method : methods) {
      double secs = RunFlavorBuild(log, method, options);
      row.push_back(bench::Secs(secs));
      std::fprintf(stderr, "  %s x=%zu %s build: %.3fs\n", title, x,
                   index::ExtractionMethodName(method), secs);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::Parse(argc, argv);
  // The scale knob shrinks the trace counts / events per trace of the
  // paper's sweeps proportionally.
  const double s = options.scale;
  auto scaled = [&](size_t v) {
    return std::max<size_t>(4, static_cast<size_t>(v * s));
  };

  std::printf("=== Figure 3: STNM flavors on random logs (scale=%.2f) ===\n",
              s);

  Sweep("(a) max events per trace",
        {scaled(100), scaled(500), scaled(1000), scaled(2000), scaled(4000)},
        [&](size_t x) {
          datagen::RandomLogConfig config;
          config.num_traces = scaled(1000);
          config.max_events_per_trace = x;
          config.num_activities = 500;
          config.seed = options.seed;
          return config;
        },
        options);

  Sweep("(b) number of traces",
        {scaled(100), scaled(500), scaled(1000), scaled(2500), scaled(5000)},
        [&](size_t x) {
          datagen::RandomLogConfig config;
          config.num_traces = x;
          config.max_events_per_trace = scaled(1000);
          config.num_activities = 100;
          config.seed = options.seed + 1;
          return config;
        },
        options);

  Sweep("(c) number of distinct activities",
        {4, 40, 200, 800, 2000},
        [&](size_t x) {
          datagen::RandomLogConfig config;
          config.num_traces = scaled(500);
          // Trace length must stay comparable to the alphabet for the
          // sweep to bite (distinct activities per trace is capped by the
          // trace length), so it scales down less aggressively.
          config.max_events_per_trace =
              std::max<size_t>(150, static_cast<size_t>(500 * s));
          config.num_activities = x;
          config.seed = options.seed + 2;
          return config;
        },
        options);

  return 0;
}
