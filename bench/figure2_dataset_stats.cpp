// Reproduces Table 4 and Figure 2 of the paper: per-dataset trace counts,
// activity counts, and the distributions of events / unique activities per
// trace, for every process-like evaluation log.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/dataset_catalog.h"
#include "log/log_statistics.h"

int main(int argc, char** argv) {
  using namespace seqdet;
  auto options = bench::BenchOptions::Parse(argc, argv);

  std::printf("=== Table 4: dataset profiles (scale=%.2f) ===\n",
              options.scale);
  bench::TablePrinter table(
      {"Log file", "Traces", "Activities", "Events", "mean ev/trace",
       "min", "max"});

  std::vector<std::pair<std::string, eventlog::LogStatistics>> all_stats;
  for (const std::string& name : datagen::DatasetNames()) {
    auto log = datagen::LoadDataset(name, options.scale);
    if (!log.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   log.status().ToString().c_str());
      return 1;
    }
    auto stats = eventlog::LogStatistics::Compute(*log);
    table.AddRow({name, std::to_string(stats.num_traces),
                  std::to_string(stats.num_activities),
                  std::to_string(stats.num_events),
                  StringPrintf("%.2f", stats.mean_events_per_trace),
                  std::to_string(stats.min_events_per_trace),
                  std::to_string(stats.max_events_per_trace)});
    all_stats.emplace_back(name, std::move(stats));
  }
  table.Print();

  std::printf("\n=== Figure 2: per-trace distributions ===\n");
  for (auto& [name, stats] : all_stats) {
    std::printf("%s\n", stats.DistributionReport(name).c_str());
  }
  return 0;
}
