#ifndef SEQDET_LOG_LOG_STATISTICS_H_
#define SEQDET_LOG_LOG_STATISTICS_H_

#include <string>

#include "common/histogram.h"
#include "log/event_log.h"

namespace seqdet::eventlog {

/// Profile of an event log: the numbers the paper reports in Table 4 and the
/// distributions of Figure 2.
struct LogStatistics {
  size_t num_traces = 0;
  size_t num_events = 0;
  size_t num_activities = 0;  // the paper's l = |A|
  double mean_events_per_trace = 0;
  size_t min_events_per_trace = 0;
  size_t max_events_per_trace = 0;  // the paper's n

  /// Figure 2 (left column): events per trace.
  Histogram events_per_trace;
  /// Figure 2 (right column): unique activities per trace.
  Histogram activities_per_trace;

  /// Computes the full profile of `log`.
  static LogStatistics Compute(const EventLog& log);

  /// One Table-4-style summary row: "name  traces  activities  events ...".
  std::string SummaryRow(const std::string& name) const;

  /// Figure-2-style textual distributions.
  std::string DistributionReport(const std::string& name) const;
};

}  // namespace seqdet::eventlog

#endif  // SEQDET_LOG_LOG_STATISTICS_H_
