#ifndef SEQDET_LOG_EVENT_LOG_H_
#define SEQDET_LOG_EVENT_LOG_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "log/activity_dictionary.h"
#include "log/event.h"

namespace seqdet::eventlog {

/// A case / session / trace: the timestamp-ordered events of one logical
/// execution unit (Definition 2.1).
struct Trace {
  TraceId id = 0;
  std::vector<Event> events;

  size_t size() const { return events.size(); }
  bool empty() const { return events.empty(); }

  /// Sorts events by (ts, activity); establishes the total order the paper's
  /// `<=` requires.
  void SortByTimestamp();

  /// True if events are already in (ts, activity) order.
  bool IsSorted() const;

  /// Number of distinct activities appearing in this trace.
  size_t DistinctActivities() const;
};

/// An in-memory event log: an activity dictionary plus a set of traces.
///
/// This is the unit that the pre-processing component consumes — both the
/// "log database" and the batches of new events of Figure 1 are EventLogs.
class EventLog {
 public:
  EventLog() = default;

  /// Appends `event` to the trace `trace_id`, creating the trace if needed.
  void Append(TraceId trace_id, const Event& event);

  /// Convenience: interns `activity_name` and appends.
  void Append(TraceId trace_id, std::string_view activity_name, Timestamp ts);

  /// Adds a whole trace. Fails silently into a merge if the id exists:
  /// events are appended to the existing trace.
  void AddTrace(Trace trace);

  /// Sorts every trace by timestamp.
  void SortAllTraces();

  /// Returns the trace with `id` or nullptr.
  const Trace* FindTrace(TraceId id) const;
  Trace* FindTrace(TraceId id);

  const std::vector<Trace>& traces() const { return traces_; }
  std::vector<Trace>& traces() { return traces_; }

  ActivityDictionary& dictionary() { return dictionary_; }
  const ActivityDictionary& dictionary() const { return dictionary_; }

  size_t num_traces() const { return traces_.size(); }
  size_t num_events() const;
  size_t num_activities() const { return dictionary_.size(); }

 private:
  ActivityDictionary dictionary_;
  std::vector<Trace> traces_;
  std::unordered_map<TraceId, size_t> trace_pos_;
};

}  // namespace seqdet::eventlog

#endif  // SEQDET_LOG_EVENT_LOG_H_
