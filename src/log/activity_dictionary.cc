#include "log/activity_dictionary.h"

namespace seqdet::eventlog {

ActivityId ActivityDictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  ActivityId id = static_cast<ActivityId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

ActivityId ActivityDictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidActivity : it->second;
}

}  // namespace seqdet::eventlog
