#include "log/log_statistics.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"

namespace seqdet::eventlog {

LogStatistics LogStatistics::Compute(const EventLog& log) {
  LogStatistics stats;
  stats.num_traces = log.num_traces();
  stats.num_activities = log.num_activities();
  stats.min_events_per_trace = std::numeric_limits<size_t>::max();
  for (const Trace& t : log.traces()) {
    stats.num_events += t.size();
    stats.min_events_per_trace = std::min(stats.min_events_per_trace, t.size());
    stats.max_events_per_trace = std::max(stats.max_events_per_trace, t.size());
    stats.events_per_trace.Add(static_cast<double>(t.size()));
    stats.activities_per_trace.Add(
        static_cast<double>(t.DistinctActivities()));
  }
  if (stats.num_traces == 0) {
    stats.min_events_per_trace = 0;
  } else {
    stats.mean_events_per_trace =
        static_cast<double>(stats.num_events) /
        static_cast<double>(stats.num_traces);
  }
  return stats;
}

std::string LogStatistics::SummaryRow(const std::string& name) const {
  return StringPrintf("%-12s %8zu traces %6zu activities %9zu events "
                      "(per-trace mean=%.2f min=%zu max=%zu)",
                      name.c_str(), num_traces, num_activities, num_events,
                      mean_events_per_trace, min_events_per_trace,
                      max_events_per_trace);
}

std::string LogStatistics::DistributionReport(const std::string& name) const {
  std::string out = SummaryRow(name) + "\n";
  out += events_per_trace.ToAscii("  events/trace");
  out += activities_per_trace.ToAscii("  unique activities/trace");
  return out;
}

}  // namespace seqdet::eventlog
