#ifndef SEQDET_LOG_XES_IO_H_
#define SEQDET_LOG_XES_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "log/event_log.h"

namespace seqdet::eventlog {

/// Minimal XES (eXtensible Event Stream) support.
///
/// The paper's synthetic logs (PLG2) and the BPI Challenge logs are
/// distributed as XES. This reader understands the subset those files
/// actually use:
///
/// ```xml
/// <log>
///   <trace>
///     <string key="concept:name" value="case_17"/>
///     <event>
///       <string key="concept:name" value="Register request"/>
///       <date key="time:timestamp" value="2021-03-23T10:15:00.000+00:00"/>
///     </event>
///   </trace>
/// </log>
/// ```
///
/// * `concept:name` of a trace becomes the TraceId — parsed as an integer
///   when numeric, otherwise assigned sequentially (the original name is
///   dropped; indexing only needs identity).
/// * `time:timestamp` may be an ISO-8601 `<date>` (converted to epoch
///   milliseconds, the numeric offset suffix and 'Z' are honored) or an
///   `<int>`. Events without a timestamp get their position, per §3.1.1 of
///   the paper ("the position of an event in the sequence can play the role
///   of the timestamp").
/// Options for the XES reader.
struct XesReadOptions {
  /// When non-empty, only events whose `lifecycle:transition` attribute
  /// equals this value (case-insensitive; typically "complete") are kept;
  /// events *without* the attribute are kept too. §2.1 of the paper
  /// requires timestamps to be logged consistently — filtering to one
  /// transition kind is how real XES logs (which record start+complete
  /// per task) are made consistent.
  std::string lifecycle_filter;
};

Result<EventLog> ReadXesLog(std::istream& in,
                            const XesReadOptions& options = {});

/// Parses the XES file at `path`.
Result<EventLog> ReadXesLogFile(const std::string& path,
                                const XesReadOptions& options = {});

/// Writes `log` in the same XES subset (timestamps as `<int>`).
Status WriteXesLog(const EventLog& log, std::ostream& out);

/// Writes `log` to the file at `path`.
Status WriteXesLogFile(const EventLog& log, const std::string& path);

/// Parses an ISO-8601 timestamp ("2021-03-23T10:15:00.000+01:00") to epoch
/// milliseconds. Exposed for testing.
bool ParseIso8601Millis(std::string_view s, int64_t* millis_out);

}  // namespace seqdet::eventlog

#endif  // SEQDET_LOG_XES_IO_H_
