#include "log/csv_io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/strings.h"

namespace seqdet::eventlog {

Result<EventLog> ReadCsvLog(std::istream& in) {
  EventLog log;
  std::string line;
  size_t line_no = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = Split(trimmed, ',');
    if (fields.size() < 3) {
      return Status::InvalidArgument(
          StringPrintf("line %zu: expected at least 3 fields, got %zu",
                       line_no, fields.size()));
    }
    int64_t trace_id;
    if (!ParseInt64(fields[0], &trace_id)) {
      // Tolerate a single header row ("trace_id,activity,timestamp").
      if (first_data_line) {
        first_data_line = false;
        continue;
      }
      return Status::InvalidArgument(
          StringPrintf("line %zu: bad trace id '%s'", line_no,
                       fields[0].c_str()));
    }
    first_data_line = false;
    int64_t ts;
    if (!ParseInt64(fields[2], &ts)) {
      return Status::InvalidArgument(StringPrintf(
          "line %zu: bad timestamp '%s'", line_no, fields[2].c_str()));
    }
    std::string_view activity = Trim(fields[1]);
    if (activity.empty()) {
      return Status::InvalidArgument(
          StringPrintf("line %zu: empty activity", line_no));
    }
    log.Append(static_cast<TraceId>(trace_id), activity, ts);
  }
  log.SortAllTraces();
  return log;
}

Result<EventLog> ReadCsvLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadCsvLog(in);
}

Status WriteCsvLog(const EventLog& log, std::ostream& out) {
  out << "trace_id,activity,timestamp\n";
  for (const Trace& t : log.traces()) {
    for (const Event& e : t.events) {
      out << t.id << ',' << log.dictionary().Name(e.activity) << ',' << e.ts
          << '\n';
    }
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteCsvLogFile(const EventLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteCsvLog(log, out);
}

}  // namespace seqdet::eventlog
