#ifndef SEQDET_LOG_EVENT_H_
#define SEQDET_LOG_EVENT_H_

#include <cstdint>
#include <tuple>

namespace seqdet::eventlog {

/// Interned identifier of an activity (event type); see ActivityDictionary.
using ActivityId = uint32_t;

/// Identifier of a trace / case / session.
using TraceId = uint64_t;

/// Event timestamp. The paper treats timestamps as opaque ordered values and
/// falls back to the position in the trace when none is recorded (§3.1.1);
/// an int64 covers both epoch-milliseconds and positions.
using Timestamp = int64_t;

constexpr ActivityId kInvalidActivity = static_cast<ActivityId>(-1);

/// One log record inside a trace: an instance of an activity at a time.
///
/// Definition 2.1 of the paper: events carry an activity (via the surjective
/// assignment delta), a timestamp, and belong to exactly one case (which in
/// this library is the Trace that owns the event, so no back-pointer is
/// stored here).
struct Event {
  ActivityId activity = kInvalidActivity;
  Timestamp ts = 0;

  friend bool operator==(const Event& a, const Event& b) {
    return a.activity == b.activity && a.ts == b.ts;
  }
  /// Orders by timestamp, breaking ties by activity so sorting is stable
  /// across runs.
  friend bool operator<(const Event& a, const Event& b) {
    return std::tie(a.ts, a.activity) < std::tie(b.ts, b.activity);
  }
};

}  // namespace seqdet::eventlog

#endif  // SEQDET_LOG_EVENT_H_
