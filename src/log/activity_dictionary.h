#ifndef SEQDET_LOG_ACTIVITY_DICTIONARY_H_
#define SEQDET_LOG_ACTIVITY_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "log/event.h"

namespace seqdet::eventlog {

/// Bidirectional mapping between activity names and dense ActivityIds.
///
/// The indices and the pair extractors work on dense integer ids; names only
/// matter at the log-parsing and result-presentation boundaries. Ids are
/// assigned in first-seen order, so a dictionary built from the same log is
/// deterministic.
class ActivityDictionary {
 public:
  ActivityDictionary() = default;

  /// Returns the id for `name`, interning it if new.
  ActivityId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidActivity when unknown.
  ActivityId Lookup(std::string_view name) const;

  /// Returns the name for `id`. Requires a valid id.
  const std::string& Name(ActivityId id) const { return names_.at(id); }

  bool Contains(std::string_view name) const {
    return Lookup(name) != kInvalidActivity;
  }

  /// Number of distinct activities (the paper's `l = |A|`).
  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// All names, indexed by id.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ActivityId> ids_;
};

}  // namespace seqdet::eventlog

#endif  // SEQDET_LOG_ACTIVITY_DICTIONARY_H_
