#include "log/event_log.h"

#include <algorithm>
#include <unordered_set>

namespace seqdet::eventlog {

void Trace::SortByTimestamp() {
  std::stable_sort(events.begin(), events.end());
}

bool Trace::IsSorted() const {
  return std::is_sorted(events.begin(), events.end());
}

size_t Trace::DistinctActivities() const {
  std::unordered_set<ActivityId> seen;
  seen.reserve(events.size());
  for (const Event& e : events) seen.insert(e.activity);
  return seen.size();
}

void EventLog::Append(TraceId trace_id, const Event& event) {
  auto it = trace_pos_.find(trace_id);
  if (it == trace_pos_.end()) {
    trace_pos_.emplace(trace_id, traces_.size());
    traces_.push_back(Trace{trace_id, {event}});
  } else {
    traces_[it->second].events.push_back(event);
  }
}

void EventLog::Append(TraceId trace_id, std::string_view activity_name,
                      Timestamp ts) {
  Append(trace_id, Event{dictionary_.Intern(activity_name), ts});
}

void EventLog::AddTrace(Trace trace) {
  auto it = trace_pos_.find(trace.id);
  if (it == trace_pos_.end()) {
    trace_pos_.emplace(trace.id, traces_.size());
    traces_.push_back(std::move(trace));
  } else {
    auto& dst = traces_[it->second].events;
    dst.insert(dst.end(), trace.events.begin(), trace.events.end());
  }
}

void EventLog::SortAllTraces() {
  for (Trace& t : traces_) t.SortByTimestamp();
}

const Trace* EventLog::FindTrace(TraceId id) const {
  auto it = trace_pos_.find(id);
  return it == trace_pos_.end() ? nullptr : &traces_[it->second];
}

Trace* EventLog::FindTrace(TraceId id) {
  auto it = trace_pos_.find(id);
  return it == trace_pos_.end() ? nullptr : &traces_[it->second];
}

size_t EventLog::num_events() const {
  size_t n = 0;
  for (const Trace& t : traces_) n += t.size();
  return n;
}

}  // namespace seqdet::eventlog
