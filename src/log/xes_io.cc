#include "log/xes_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "common/strings.h"

namespace seqdet::eventlog {

namespace {

// Days since epoch for the first day of each month (non-leap year).
constexpr int kCumulativeDays[12] = {0,   31,  59,  90,  120, 151,
                                     181, 212, 243, 273, 304, 334};

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int64_t DaysFromCivil(int year, int month, int day) {
  // Count of days since 1970-01-01 (proleptic Gregorian).
  int64_t days = 0;
  if (year >= 1970) {
    for (int y = 1970; y < year; ++y) days += IsLeap(y) ? 366 : 365;
  } else {
    for (int y = year; y < 1970; ++y) days -= IsLeap(y) ? 366 : 365;
  }
  days += kCumulativeDays[month - 1];
  if (month > 2 && IsLeap(year)) days += 1;
  days += day - 1;
  return days;
}

/// A very small pull-parser for the XML subset XES files use: start tags
/// with double-quoted attributes, end tags, self-closing tags. Comments,
/// processing instructions and CDATA are skipped. Text content is ignored
/// (XES carries data in attributes).
class MiniXmlParser {
 public:
  explicit MiniXmlParser(std::istream& in) : in_(in) {}

  struct Tag {
    std::string name;
    std::map<std::string, std::string> attrs;
    bool closing = false;      // </name>
    bool self_closing = false; // <name ... />
  };

  /// Advances to the next tag. Returns false at end of input, sets *error
  /// on malformed input.
  bool NextTag(Tag* tag, std::string* error) {
    int c;
    // Skip to the next '<'.
    while ((c = in_.get()) != EOF && c != '<') {
    }
    if (c == EOF) return false;
    tag->name.clear();
    tag->attrs.clear();
    tag->closing = false;
    tag->self_closing = false;

    c = in_.get();
    if (c == EOF) {
      *error = "truncated tag";
      return false;
    }
    if (c == '?' || c == '!') {  // <?xml ...?>, <!-- ... -->, <!DOCTYPE ...>
      SkipSpecial(c);
      return NextTag(tag, error);
    }
    if (c == '/') {
      tag->closing = true;
      c = in_.get();
    }
    while (c != EOF && !std::isspace(c) && c != '>' && c != '/') {
      tag->name.push_back(static_cast<char>(c));
      c = in_.get();
    }
    // Attributes.
    for (;;) {
      while (c != EOF && std::isspace(c)) c = in_.get();
      if (c == EOF) {
        *error = "truncated tag " + tag->name;
        return false;
      }
      if (c == '>') return true;
      if (c == '/') {
        tag->self_closing = true;
        c = in_.get();  // consume '>'
        if (c != '>') {
          *error = "malformed self-closing tag " + tag->name;
          return false;
        }
        return true;
      }
      std::string key, value;
      while (c != EOF && c != '=' && !std::isspace(c)) {
        key.push_back(static_cast<char>(c));
        c = in_.get();
      }
      while (c != EOF && c != '=') c = in_.get();
      c = in_.get();
      while (c != EOF && std::isspace(c)) c = in_.get();
      if (c != '"' && c != '\'') {
        *error = "expected quoted attribute value in <" + tag->name + ">";
        return false;
      }
      int quote = c;
      c = in_.get();
      while (c != EOF && c != quote) {
        value.push_back(static_cast<char>(c));
        c = in_.get();
      }
      if (c == EOF) {
        *error = "unterminated attribute in <" + tag->name + ">";
        return false;
      }
      tag->attrs[key] = Unescape(value);
      c = in_.get();
    }
  }

 private:
  void SkipSpecial(int first) {
    if (first == '!') {
      // Could be a comment <!-- ... --> or doctype; for comments require
      // the terminating "-->", otherwise stop at '>'.
      int c1 = in_.get();
      int c2 = in_.get();
      if (c1 == '-' && c2 == '-') {
        int a = 0, b = 0, c = 0;
        while ((c = in_.get()) != EOF) {
          if (a == '-' && b == '-' && c == '>') return;
          a = b;
          b = c;
        }
        return;
      }
    }
    int c;
    while ((c = in_.get()) != EOF && c != '>') {
    }
  }

  static std::string Unescape(const std::string& s) {
    if (s.find('&') == std::string::npos) return s;
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out.push_back(s[i]);
        continue;
      }
      if (s.compare(i, 4, "&lt;") == 0) {
        out.push_back('<');
        i += 3;
      } else if (s.compare(i, 4, "&gt;") == 0) {
        out.push_back('>');
        i += 3;
      } else if (s.compare(i, 5, "&amp;") == 0) {
        out.push_back('&');
        i += 4;
      } else if (s.compare(i, 6, "&quot;") == 0) {
        out.push_back('"');
        i += 5;
      } else if (s.compare(i, 6, "&apos;") == 0) {
        out.push_back('\'');
        i += 5;
      } else {
        out.push_back(s[i]);
      }
    }
    return out;
  }

  std::istream& in_;
};

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

bool ParseIso8601Millis(std::string_view s, int64_t* millis_out) {
  // Accepted shapes: YYYY-MM-DDTHH:MM:SS[.fff][Z|+HH:MM|-HH:MM]
  int year, month, day, hour, minute, second;
  int consumed = 0;
  std::string buf(s);
  if (std::sscanf(buf.c_str(), "%4d-%2d-%2dT%2d:%2d:%2d%n", &year, &month,
                  &day, &hour, &minute, &second, &consumed) != 6) {
    return false;
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {
    return false;
  }
  std::string_view rest = s.substr(static_cast<size_t>(consumed));
  int64_t millis = 0;
  if (!rest.empty() && rest.front() == '.') {
    rest.remove_prefix(1);
    int digits = 0;
    while (!rest.empty() && std::isdigit(static_cast<unsigned char>(
                                rest.front()))) {
      if (digits < 3) millis = millis * 10 + (rest.front() - '0');
      rest.remove_prefix(1);
      ++digits;
    }
    while (digits < 3) {
      millis *= 10;
      ++digits;
    }
  }
  int64_t offset_minutes = 0;
  if (!rest.empty()) {
    if (rest.front() == 'Z') {
      rest.remove_prefix(1);
    } else if (rest.front() == '+' || rest.front() == '-') {
      int sign = rest.front() == '+' ? 1 : -1;
      int oh, om;
      std::string obuf(rest.substr(1));
      if (std::sscanf(obuf.c_str(), "%2d:%2d", &oh, &om) != 2) {
        // Also allow +HHMM.
        if (std::sscanf(obuf.c_str(), "%2d%2d", &oh, &om) != 2) return false;
      }
      offset_minutes = sign * (oh * 60 + om);
      rest = {};
    }
  }
  int64_t days = DaysFromCivil(year, month, day);
  int64_t secs = days * 86400 + hour * 3600 + minute * 60 + second -
                 offset_minutes * 60;
  *millis_out = secs * 1000 + millis;
  return true;
}

namespace {
bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}
}  // namespace

Result<EventLog> ReadXesLog(std::istream& in, const XesReadOptions& options) {
  EventLog log;
  MiniXmlParser parser(in);
  MiniXmlParser::Tag tag;
  std::string error;

  bool in_trace = false;
  bool in_event = false;
  TraceId current_trace = 0;
  TraceId next_synthetic_id = 0;
  bool trace_has_explicit_id = false;
  std::string event_activity;
  Timestamp event_ts = 0;
  bool event_has_ts = false;
  bool event_lifecycle_matches = true;
  size_t event_position = 0;
  Trace trace;

  while (parser.NextTag(&tag, &error)) {
    if (tag.name == "trace") {
      if (tag.closing) {
        in_trace = false;
        if (!trace_has_explicit_id) trace.id = next_synthetic_id;
        ++next_synthetic_id;
        log.AddTrace(std::move(trace));
        trace = Trace{};
      } else {
        in_trace = true;
        trace_has_explicit_id = false;
        current_trace = next_synthetic_id;
        trace = Trace{current_trace, {}};
        event_position = 0;
      }
      continue;
    }
    if (tag.name == "event") {
      if (tag.closing) {
        if (!in_trace) {
          return Status::Corruption("event outside trace");
        }
        if (event_activity.empty()) {
          return Status::Corruption("event without concept:name");
        }
        if (event_lifecycle_matches) {
          Timestamp ts = event_has_ts
                             ? event_ts
                             : static_cast<Timestamp>(event_position);
          trace.events.push_back(
              Event{log.dictionary().Intern(event_activity), ts});
          ++event_position;
        }
        in_event = false;
      } else {
        in_event = true;
        event_activity.clear();
        event_has_ts = false;
        event_lifecycle_matches = true;
      }
      continue;
    }
    if (tag.name == "string" || tag.name == "date" || tag.name == "int") {
      auto key_it = tag.attrs.find("key");
      auto val_it = tag.attrs.find("value");
      if (key_it == tag.attrs.end() || val_it == tag.attrs.end()) continue;
      const std::string& key = key_it->second;
      const std::string& value = val_it->second;
      if (in_event) {
        if (key == "concept:name") {
          event_activity = value;
        } else if (key == "lifecycle:transition") {
          if (!options.lifecycle_filter.empty()) {
            event_lifecycle_matches =
                EqualsIgnoreCase(value, options.lifecycle_filter);
          }
        } else if (key == "time:timestamp") {
          if (tag.name == "int") {
            int64_t v;
            if (!ParseInt64(value, &v)) {
              return Status::Corruption("bad int timestamp: " + value);
            }
            event_ts = v;
            event_has_ts = true;
          } else if (tag.name == "date") {
            int64_t ms;
            if (!ParseIso8601Millis(value, &ms)) {
              return Status::Corruption("bad ISO-8601 timestamp: " + value);
            }
            event_ts = ms;
            event_has_ts = true;
          }
        }
      } else if (in_trace && key == "concept:name") {
        int64_t numeric;
        // Accept "17", "case_17", "trace 17": use the trailing integer when
        // present, otherwise fall back to sequential ids.
        std::string_view v = value;
        size_t digit_start = v.find_last_not_of("0123456789");
        digit_start = digit_start == std::string_view::npos ? 0
                                                            : digit_start + 1;
        if (digit_start < v.size() &&
            ParseInt64(v.substr(digit_start), &numeric)) {
          trace.id = static_cast<TraceId>(numeric);
          trace_has_explicit_id = true;
        }
      }
      continue;
    }
    // Unknown tags (<log>, <extension>, <global>, <classifier>, <float>,
    // <boolean>, ...) are skipped.
  }
  if (!error.empty()) return Status::Corruption("XES parse error: " + error);
  log.SortAllTraces();
  return log;
}

Result<EventLog> ReadXesLogFile(const std::string& path,
                                const XesReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadXesLog(in, options);
}

Status WriteXesLog(const EventLog& log, std::ostream& out) {
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<log>\n";
  for (const Trace& t : log.traces()) {
    out << "  <trace>\n    <string key=\"concept:name\" value=\"" << t.id
        << "\"/>\n";
    for (const Event& e : t.events) {
      out << "    <event>\n      <string key=\"concept:name\" value=\""
          << Escape(log.dictionary().Name(e.activity))
          << "\"/>\n      <int key=\"time:timestamp\" value=\"" << e.ts
          << "\"/>\n    </event>\n";
    }
    out << "  </trace>\n";
  }
  out << "</log>\n";
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteXesLogFile(const EventLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteXesLog(log, out);
}

}  // namespace seqdet::eventlog
