#ifndef SEQDET_LOG_CSV_IO_H_
#define SEQDET_LOG_CSV_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "log/event_log.h"

namespace seqdet::eventlog {

/// CSV log format: one event per row, `trace_id,activity,timestamp`,
/// with an optional header row. This mirrors the relational shape of the
/// paper's log database (§3.1): "each row ... contains the trace identifier,
/// the event type, the timestamp".
///
/// Rows may contain extra application-specific columns after the first
/// three; they are ignored, as the paper does.

/// Parses a CSV stream into an event log. Traces are sorted by timestamp on
/// return. Malformed rows yield an InvalidArgument status naming the line.
Result<EventLog> ReadCsvLog(std::istream& in);

/// Parses the CSV file at `path`.
Result<EventLog> ReadCsvLogFile(const std::string& path);

/// Writes `log` as CSV (with a header row).
Status WriteCsvLog(const EventLog& log, std::ostream& out);

/// Writes `log` to the file at `path`.
Status WriteCsvLogFile(const EventLog& log, const std::string& path);

}  // namespace seqdet::eventlog

#endif  // SEQDET_LOG_CSV_IO_H_
