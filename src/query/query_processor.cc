#include "query/query_processor.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace seqdet::query {

using eventlog::ActivityId;
using eventlog::Timestamp;
using eventlog::TraceId;
using index::EventTypePair;
using index::PairCountStats;
using index::PairOccurrence;

namespace {

/// Equation 1. A zero average duration (instantaneous completions) would
/// divide by zero; such candidates are maximally "close", so rank them by
/// completions alone.
double Score(uint64_t completions, double average_duration) {
  if (average_duration <= 0) return static_cast<double>(completions);
  return static_cast<double>(completions) / average_duration;
}

struct TraceTsKey {
  TraceId trace;
  Timestamp ts;
  friend bool operator==(const TraceTsKey&, const TraceTsKey&) = default;
};

struct TraceTsKeyHash {
  size_t operator()(const TraceTsKey& k) const {
    uint64_t h = k.trace * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(k.ts) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// How many loop iterations pass between Deadline polls. steady_clock reads
/// cost tens of nanoseconds, so at this stride the checks are free while
/// still bounding deadline overshoot to a few thousand joined matches.
constexpr size_t kDeadlineStride = 4096;

Status DeadlineExceeded() {
  return Status::Aborted("query deadline exceeded");
}

}  // namespace

Result<StatisticsResult> QueryProcessor::Statistics(
    const Pattern& pattern, const StatisticsOptions& options) const {
  if (pattern.size() < 2) {
    return Status::InvalidArgument("statistics needs a pattern of >= 2");
  }
  StatisticsResult result;
  result.completions_upper_bound = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i + 1 < pattern.size(); ++i) {
    EventTypePair pair{pattern.activities[i], pattern.activities[i + 1]};
    SEQDET_ASSIGN_OR_RETURN(PairCountStats stats,
                            index_->GetPairStats(pair));
    PairStatisticsRow row;
    row.pair = pair;
    row.total_completions = stats.total_completions;
    row.average_duration = stats.AverageDuration();
    if (options.include_last_completion) {
      SEQDET_ASSIGN_OR_RETURN(row.last_completion,
                              index_->GetPairLastCompletion(pair));
    }
    result.completions_upper_bound =
        std::min(result.completions_upper_bound, stats.total_completions);
    result.estimated_duration += row.average_duration;
    result.pairs.push_back(row);
  }
  return result;
}

Result<std::vector<PatternMatch>> QueryProcessor::ExtendMatches(
    std::vector<PatternMatch> matches,
    const std::vector<PairOccurrence>& postings, const Deadline& deadline) {
  // Algorithm 2 lines 5-13: keep matches whose last event coincides with
  // the first event of a posting of the next pair — a join on
  // (trace, ts_first). Under SC/STNM a pair's completions never share
  // their first event, so each key maps to one continuation and the match
  // is *moved* into its extension; under skip-till-any-match several
  // postings share a first event and every one extends the match
  // (overlapping results are the point of that policy).
  std::vector<PatternMatch> extended;
  extended.reserve(matches.size());

  // Posting lists arrive sorted by (trace, ts_first). When the surviving
  // match set is much smaller than the posting list — the shape warm-cache
  // repeated queries and selective patterns produce — probing the sorted
  // snapshot per match beats building a hash of every posting, and touches
  // none of the shared snapshot's cache lines beyond the probed ranges.
  size_t ticks = 0;
  const bool probe_sorted =
      matches.size() < postings.size() / 8 || postings.size() < 16;
  if (probe_sorted) {
    for (PatternMatch& match : matches) {
      if (++ticks % kDeadlineStride == 0 && deadline.Expired()) {
        return DeadlineExceeded();
      }
      const PairOccurrence probe{match.trace, match.timestamps.back(),
                                 std::numeric_limits<Timestamp>::min()};
      auto it = std::lower_bound(postings.begin(), postings.end(), probe);
      auto end = it;
      while (end != postings.end() && end->trace == probe.trace &&
             end->ts_first == probe.ts_first) {
        ++end;
      }
      if (it == end) continue;
      for (auto last = std::prev(end); it != last; ++it) {
        PatternMatch copy = match;
        copy.timestamps.push_back(it->ts_second);
        extended.push_back(std::move(copy));
      }
      match.timestamps.push_back(it->ts_second);
      extended.push_back(std::move(match));
    }
    return extended;
  }

  std::unordered_map<TraceTsKey, std::vector<Timestamp>, TraceTsKeyHash>
      continuation;
  continuation.reserve(postings.size());
  for (const PairOccurrence& posting : postings) {
    if (++ticks % kDeadlineStride == 0 && deadline.Expired()) {
      return DeadlineExceeded();
    }
    continuation[TraceTsKey{posting.trace, posting.ts_first}].push_back(
        posting.ts_second);
  }
  for (PatternMatch& match : matches) {
    if (++ticks % kDeadlineStride == 0 && deadline.Expired()) {
      return DeadlineExceeded();
    }
    auto it = continuation.find(
        TraceTsKey{match.trace, match.timestamps.back()});
    if (it == continuation.end()) continue;
    const std::vector<Timestamp>& successors = it->second;
    for (size_t s = 0; s + 1 < successors.size(); ++s) {
      PatternMatch copy = match;
      copy.timestamps.push_back(successors[s]);
      extended.push_back(std::move(copy));
    }
    match.timestamps.push_back(successors.back());
    extended.push_back(std::move(match));
  }
  return extended;
}

Result<std::vector<PatternMatch>> QueryProcessor::Detect(
    const Pattern& pattern, const DetectionConstraints& constraints) const {
  if (pattern.size() < 2) {
    return Status::InvalidArgument(
        "detection needs a pattern of >= 2 events (the index is pair-based)");
  }
  if (constraints.deadline.Expired()) return DeadlineExceeded();
  auto gap_ok = [&constraints](const PatternMatch& m) {
    if (!constraints.max_gap.has_value()) return true;
    size_t n = m.timestamps.size();
    return m.timestamps[n - 1] - m.timestamps[n - 2] <= *constraints.max_gap;
  };
  const size_t num_pairs = pattern.size() - 1;
  auto pair_at = [&pattern](size_t i) {
    return EventTypePair{pattern.activities[i], pattern.activities[i + 1]};
  };

  // Selectivity-ordered pruning (>= 2 pairs; one pair has nothing to
  // intersect with). Every full match needs a completion of *every*
  // adjacent pair in its trace, so the block-header trace ranges of each
  // pair's posting list bound the candidate traces: intersect them —
  // starting from the smallest list, the cheapest place to run dry — and
  // the join then decodes only blocks overlapping the survivors.
  index::TraceIntervalSet candidates;
  bool prune = false;
  if (num_pairs >= 2) {
    std::vector<index::PairPostingSummary> summaries(num_pairs);
    for (size_t i = 0; i < num_pairs; ++i) {
      SEQDET_ASSIGN_OR_RETURN(summaries[i],
                              index_->GetPairSummary(pair_at(i)));
      if (summaries[i].postings == 0) return std::vector<PatternMatch>{};
    }
    std::vector<size_t> order(num_pairs);
    for (size_t i = 0; i < num_pairs; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&summaries](size_t a, size_t b) {
      return summaries[a].postings < summaries[b].postings;
    });
    candidates = summaries[order[0]].traces;
    for (size_t k = 1; k < num_pairs && !candidates.empty(); ++k) {
      candidates = index::TraceIntervalSet::Intersect(
          candidates, summaries[order[k]].traces);
    }
    if (candidates.empty()) return std::vector<PatternMatch>{};
    // An unbounded candidate set (v1 lists, or blocks spanning every
    // trace) prunes nothing; prefer the whole-list cache then.
    prune = !candidates.IsAll();
  }
  auto fetch = [&](size_t i) {
    return prune ? index_->GetPairPostingsFiltered(pair_at(i), candidates)
                 : index_->GetPairPostingsShared(pair_at(i));
  };

  if (constraints.deadline.Expired()) return DeadlineExceeded();
  SEQDET_ASSIGN_OR_RETURN(auto first_postings, fetch(0));
  std::vector<PatternMatch> matches;
  matches.reserve(first_postings->size());
  size_t ticks = 0;
  for (const PairOccurrence& posting : *first_postings) {
    if (++ticks % kDeadlineStride == 0 && constraints.deadline.Expired()) {
      return DeadlineExceeded();
    }
    if (prune && !candidates.Contains(posting.trace)) continue;
    PatternMatch match{posting.trace,
                       {posting.ts_first, posting.ts_second}};
    if (gap_ok(match)) matches.push_back(std::move(match));
  }
  for (size_t i = 1; i + 1 < pattern.size() && !matches.empty(); ++i) {
    if (constraints.deadline.Expired()) return DeadlineExceeded();
    SEQDET_ASSIGN_OR_RETURN(auto postings, fetch(i));
    SEQDET_ASSIGN_OR_RETURN(
        matches, ExtendMatches(std::move(matches), *postings,
                               constraints.deadline));
    if (constraints.max_gap.has_value()) {
      std::erase_if(matches,
                    [&gap_ok](const PatternMatch& m) { return !gap_ok(m); });
    }
  }
  if (constraints.max_span.has_value()) {
    std::erase_if(matches, [&constraints](const PatternMatch& m) {
      return m.timestamps.back() - m.timestamps.front() >
             *constraints.max_span;
    });
  }
  return matches;
}

Result<std::vector<std::vector<PatternMatch>>> QueryProcessor::DetectBatch(
    const std::vector<Pattern>& patterns, ThreadPool* pool,
    const DetectionConstraints& constraints) const {
  std::vector<std::vector<PatternMatch>> results(patterns.size());
  std::vector<Status> statuses(patterns.size());
  auto run_one = [&](size_t i) {
    auto matches = Detect(patterns[i], constraints);
    if (matches.ok()) {
      results[i] = std::move(matches).value();
    } else {
      statuses[i] = matches.status();
    }
  };
  if (pool != nullptr && patterns.size() > 1) {
    pool->ParallelFor(patterns.size(), run_one);
  } else {
    for (size_t i = 0; i < patterns.size(); ++i) run_one(i);
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return results;
}

Result<std::vector<PatternMatch>> QueryProcessor::DetectInTrace(
    eventlog::TraceId trace, const Pattern& pattern) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  if (index_->options().policy == index::Policy::kSkipTillAnyMatch) {
    return Status::Unsupported(
        "per-trace drill-down is not available under skip-till-any-match");
  }
  SEQDET_ASSIGN_OR_RETURN(auto events, index_->GetTraceSequence(trace));
  std::vector<PatternMatch> matches;
  const auto& ids = pattern.activities;
  if (index_->options().policy == index::Policy::kStrictContiguity) {
    for (size_t start = 0; start + ids.size() <= events.size(); ++start) {
      bool ok = true;
      for (size_t i = 0; i < ids.size(); ++i) {
        if (events[start + i].activity != ids[i]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      PatternMatch match;
      match.trace = trace;
      for (size_t i = 0; i < ids.size(); ++i) {
        match.timestamps.push_back(events[start + i].ts);
      }
      matches.push_back(std::move(match));
    }
  } else {
    // Greedy whole-pattern STNM.
    size_t state = 0;
    PatternMatch current;
    current.trace = trace;
    for (const auto& e : events) {
      if (e.activity != ids[state]) continue;
      current.timestamps.push_back(e.ts);
      if (++state == ids.size()) {
        matches.push_back(current);
        current.timestamps.clear();
        state = 0;
      }
    }
  }
  return matches;
}

void QueryProcessor::RankProposals(
    std::vector<ContinuationProposal>* proposals) {
  for (ContinuationProposal& p : *proposals) {
    p.score = Score(p.total_completions, p.average_duration);
  }
  std::sort(proposals->begin(), proposals->end(),
            [](const ContinuationProposal& a, const ContinuationProposal& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.activity < b.activity;
            });
}

Result<ContinuationProposal> QueryProcessor::VerifyCandidate(
    const Pattern& pattern, const std::vector<PatternMatch>& base_matches,
    ActivityId candidate, const ContinuationConstraints& constraints) const {
  SEQDET_ASSIGN_OR_RETURN(
      auto postings,
      index_->GetPairPostingsShared(
          EventTypePair{pattern.activities.back(), candidate}));
  // base_matches is reused for every candidate, so it is copied (by the
  // by-value parameter) rather than moved into the join.
  SEQDET_ASSIGN_OR_RETURN(std::vector<PatternMatch> extended,
                          ExtendMatches(base_matches, *postings));

  ContinuationProposal proposal;
  proposal.activity = candidate;
  int64_t total_gap = 0;
  for (const PatternMatch& match : extended) {
    Timestamp gap = match.timestamps[match.timestamps.size() - 1] -
                    match.timestamps[match.timestamps.size() - 2];
    if (constraints.max_gap.has_value() && gap > *constraints.max_gap) {
      continue;  // line 7: time constraint
    }
    ++proposal.total_completions;
    total_gap += gap;
  }
  proposal.average_duration =
      proposal.total_completions == 0
          ? 0.0
          : static_cast<double>(total_gap) /
                static_cast<double>(proposal.total_completions);
  return proposal;
}

Result<ContinuationProposal> QueryProcessor::VerifySingleEventCandidate(
    ActivityId base, ActivityId candidate,
    const ContinuationConstraints& constraints) const {
  SEQDET_ASSIGN_OR_RETURN(
      auto postings,
      index_->GetPairPostingsShared(EventTypePair{base, candidate}));
  ContinuationProposal proposal;
  proposal.activity = candidate;
  int64_t total_gap = 0;
  for (const PairOccurrence& posting : *postings) {
    Timestamp gap = posting.ts_second - posting.ts_first;
    if (constraints.max_gap.has_value() && gap > *constraints.max_gap) {
      continue;
    }
    ++proposal.total_completions;
    total_gap += gap;
  }
  proposal.average_duration =
      proposal.total_completions == 0
          ? 0.0
          : static_cast<double>(total_gap) /
                static_cast<double>(proposal.total_completions);
  return proposal;
}

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueAccurate(
    const Pattern& pattern, const ContinuationConstraints& constraints) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty continuation pattern");
  }
  // Line 2: candidate continuations from the Count table.
  SEQDET_ASSIGN_OR_RETURN(
      auto candidates, index_->GetFollowerStats(pattern.activities.back()));

  // Detect the base pattern once; each candidate only joins one more pair
  // (§5.4.2: continuation is incremental, the base is not re-queried).
  std::vector<PatternMatch> base_matches;
  if (pattern.size() >= 2) {
    SEQDET_ASSIGN_OR_RETURN(base_matches, Detect(pattern));
  }

  std::vector<ContinuationProposal> proposals;
  proposals.reserve(candidates.size());
  for (const PairCountStats& candidate : candidates) {
    ContinuationProposal proposal;
    if (pattern.size() == 1) {
      SEQDET_ASSIGN_OR_RETURN(
          proposal,
          VerifySingleEventCandidate(pattern.activities.back(),
                                     candidate.other, constraints));
    } else {
      SEQDET_ASSIGN_OR_RETURN(
          proposal, VerifyCandidate(pattern, base_matches, candidate.other,
                                    constraints));
    }
    proposals.push_back(proposal);
  }
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueAccurateNaive(
    const Pattern& pattern, const ContinuationConstraints& constraints) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty continuation pattern");
  }
  SEQDET_ASSIGN_OR_RETURN(
      auto candidates, index_->GetFollowerStats(pattern.activities.back()));
  std::vector<ContinuationProposal> proposals;
  proposals.reserve(candidates.size());
  for (const PairCountStats& candidate : candidates) {
    Pattern extended = pattern.Extended(candidate.other);
    ContinuationProposal proposal;
    proposal.activity = candidate.other;
    if (extended.size() < 2) {
      proposals.push_back(proposal);
      continue;
    }
    SEQDET_ASSIGN_OR_RETURN(auto matches, Detect(extended));
    int64_t total_gap = 0;
    for (const PatternMatch& match : matches) {
      Timestamp gap = match.timestamps[match.timestamps.size() - 1] -
                      match.timestamps[match.timestamps.size() - 2];
      if (constraints.max_gap.has_value() && gap > *constraints.max_gap) {
        continue;
      }
      ++proposal.total_completions;
      total_gap += gap;
    }
    proposal.average_duration =
        proposal.total_completions == 0
            ? 0.0
            : static_cast<double>(total_gap) /
                  static_cast<double>(proposal.total_completions);
    proposals.push_back(proposal);
  }
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueFast(
    const Pattern& pattern) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty continuation pattern");
  }
  // Lines 2-8: upper bound of whole-pattern completions.
  uint64_t max_completions = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i + 1 < pattern.size(); ++i) {
    SEQDET_ASSIGN_OR_RETURN(
        PairCountStats stats,
        index_->GetPairStats(EventTypePair{pattern.activities[i],
                                           pattern.activities[i + 1]}));
    max_completions = std::min(max_completions, stats.total_completions);
  }
  // Lines 10-13: cap each candidate's count by the pattern bound.
  SEQDET_ASSIGN_OR_RETURN(
      auto candidates, index_->GetFollowerStats(pattern.activities.back()));
  std::vector<ContinuationProposal> proposals;
  proposals.reserve(candidates.size());
  for (const PairCountStats& candidate : candidates) {
    ContinuationProposal proposal;
    proposal.activity = candidate.other;
    proposal.total_completions =
        std::min(max_completions, candidate.total_completions);
    proposal.average_duration = candidate.AverageDuration();
    proposals.push_back(proposal);
  }
  RankProposals(&proposals);
  return proposals;
}

namespace {

/// The pattern with `candidate` inserted before position `gap_index`.
Pattern Spliced(const Pattern& pattern, size_t gap_index,
                ActivityId candidate) {
  Pattern out;
  out.activities.reserve(pattern.size() + 1);
  out.activities.insert(out.activities.end(), pattern.activities.begin(),
                        pattern.activities.begin() +
                            static_cast<ptrdiff_t>(gap_index));
  out.activities.push_back(candidate);
  out.activities.insert(out.activities.end(),
                        pattern.activities.begin() +
                            static_cast<ptrdiff_t>(gap_index),
                        pattern.activities.end());
  return out;
}

}  // namespace

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueInsertFast(
    const Pattern& pattern, size_t gap_index) const {
  if (pattern.empty() || gap_index > pattern.size()) {
    return Status::InvalidArgument("bad continuation gap index");
  }
  if (gap_index == pattern.size()) return ContinueFast(pattern);
  if (gap_index == 0) {
    // Prepend: candidates are predecessors of the first event.
    SEQDET_ASSIGN_OR_RETURN(
        auto predecessors,
        index_->GetPredecessorStats(pattern.activities.front()));
    std::vector<ContinuationProposal> proposals;
    for (const PairCountStats& candidate : predecessors) {
      proposals.push_back(ContinuationProposal{
          candidate.other, candidate.total_completions,
          candidate.AverageDuration(), 0});
    }
    RankProposals(&proposals);
    return proposals;
  }

  const ActivityId left = pattern.activities[gap_index - 1];
  const ActivityId right = pattern.activities[gap_index];
  SEQDET_ASSIGN_OR_RETURN(auto followers, index_->GetFollowerStats(left));
  SEQDET_ASSIGN_OR_RETURN(auto predecessors,
                          index_->GetPredecessorStats(right));
  std::unordered_map<ActivityId, PairCountStats> into_right;
  for (const PairCountStats& p : predecessors) into_right.emplace(p.other, p);

  // Upper bound from the rest of the pattern's pairs.
  uint64_t pattern_bound = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i + 1 < pattern.size(); ++i) {
    if (i + 1 == gap_index) continue;  // the split pair is replaced
    SEQDET_ASSIGN_OR_RETURN(
        PairCountStats stats,
        index_->GetPairStats(EventTypePair{pattern.activities[i],
                                           pattern.activities[i + 1]}));
    pattern_bound = std::min(pattern_bound, stats.total_completions);
  }

  std::vector<ContinuationProposal> proposals;
  for (const PairCountStats& out_of_left : followers) {
    auto it = into_right.find(out_of_left.other);
    if (it == into_right.end()) continue;  // never precedes `right`
    ContinuationProposal proposal;
    proposal.activity = out_of_left.other;
    proposal.total_completions =
        std::min({pattern_bound, out_of_left.total_completions,
                  it->second.total_completions});
    proposal.average_duration =
        out_of_left.AverageDuration() + it->second.AverageDuration();
    proposals.push_back(proposal);
  }
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ContinuationProposal>>
QueryProcessor::ContinueInsertAccurate(
    const Pattern& pattern, size_t gap_index,
    const ContinuationConstraints& constraints) const {
  if (pattern.empty() || gap_index > pattern.size()) {
    return Status::InvalidArgument("bad continuation gap index");
  }
  if (gap_index == pattern.size()) {
    return ContinueAccurate(pattern, constraints);
  }
  SEQDET_ASSIGN_OR_RETURN(auto candidates,
                          ContinueInsertFast(pattern, gap_index));
  std::vector<ContinuationProposal> proposals;
  proposals.reserve(candidates.size());
  for (const ContinuationProposal& candidate : candidates) {
    Pattern spliced = Spliced(pattern, gap_index, candidate.activity);
    ContinuationProposal proposal;
    proposal.activity = candidate.activity;
    if (spliced.size() < 2) {
      proposals.push_back(candidate);
      continue;
    }
    SEQDET_ASSIGN_OR_RETURN(auto matches, Detect(spliced));
    int64_t total_gap = 0;
    for (const PatternMatch& match : matches) {
      // Duration of the detour through the inserted event.
      size_t at = gap_index;  // index of the inserted event in the match
      Timestamp gap =
          at + 1 < match.timestamps.size()
              ? match.timestamps[at + 1] -
                    (at > 0 ? match.timestamps[at - 1]
                            : match.timestamps[at])
              : match.timestamps[at] - match.timestamps[at - 1];
      if (constraints.max_gap.has_value() && gap > *constraints.max_gap) {
        continue;
      }
      ++proposal.total_completions;
      total_gap += gap;
    }
    proposal.average_duration =
        proposal.total_completions == 0
            ? 0.0
            : static_cast<double>(total_gap) /
                  static_cast<double>(proposal.total_completions);
    proposals.push_back(proposal);
  }
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueHybrid(
    const Pattern& pattern, size_t top_k,
    const ContinuationConstraints& constraints) const {
  // Line 3: initial ranking from the Fast heuristic.
  SEQDET_ASSIGN_OR_RETURN(auto fast, ContinueFast(pattern));
  if (top_k == 0) return fast;

  // Line 4: Accurate verification of the topK candidates only.
  std::vector<PatternMatch> base_matches;
  if (pattern.size() >= 2) {
    SEQDET_ASSIGN_OR_RETURN(base_matches, Detect(pattern));
  }
  std::vector<ContinuationProposal> proposals;
  size_t limit = std::min(top_k, fast.size());
  for (size_t i = 0; i < limit; ++i) {
    ContinuationProposal proposal;
    if (pattern.size() == 1) {
      SEQDET_ASSIGN_OR_RETURN(
          proposal,
          VerifySingleEventCandidate(pattern.activities.back(),
                                     fast[i].activity, constraints));
    } else {
      SEQDET_ASSIGN_OR_RETURN(
          proposal, VerifyCandidate(pattern, base_matches, fast[i].activity,
                                    constraints));
    }
    proposals.push_back(proposal);
  }
  // Line 5: only the verified topK are returned, re-ranked by their
  // accurate scores. (Mixing the unverified Fast tail back in would let
  // its optimistic upper-bound counts outrank verified candidates.)
  RankProposals(&proposals);
  return proposals;
}

}  // namespace seqdet::query
