#include "query/query_processor.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace seqdet::query {

using eventlog::ActivityId;
using eventlog::Timestamp;
using eventlog::TraceId;
using index::EventTypePair;
using index::PairCountStats;
using index::PairOccurrence;

namespace {

/// Equation 1. A zero average duration (instantaneous completions) would
/// divide by zero; such candidates are maximally "close", so rank them by
/// completions alone.
double Score(uint64_t completions, double average_duration) {
  if (average_duration <= 0) return static_cast<double>(completions);
  return static_cast<double>(completions) / average_duration;
}

struct TraceTsKey {
  TraceId trace;
  Timestamp ts;
  friend bool operator==(const TraceTsKey&, const TraceTsKey&) = default;
};

struct TraceTsKeyHash {
  size_t operator()(const TraceTsKey& k) const {
    uint64_t h = k.trace * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(k.ts) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// How many loop iterations pass between Deadline polls. steady_clock reads
/// cost tens of nanoseconds, so at this stride the checks are free while
/// still bounding deadline overshoot to a few thousand joined matches.
constexpr size_t kDeadlineStride = 4096;

Status DeadlineExceeded() {
  return Status::Aborted("query deadline exceeded");
}

/// The join's working representation of a match set. Every match at a given
/// join depth has the same number of timestamps, so the set is stored as a
/// flat structure-of-arrays — a trace column plus a row-major timestamp
/// matrix — instead of one heap-allocated vector per match. A detection
/// over a hot pair joins tens of thousands of matches per stage; keeping
/// them in two contiguous buffers turns the join into sequential scans and
/// removes every per-match allocation (PatternMatch objects are
/// materialized once, on return).
struct MatchSet {
  size_t width = 0;  // timestamps per match
  std::vector<TraceId> traces;
  std::vector<Timestamp> ts;  // traces.size() * width, row-major
  /// Whether rows are sorted by (trace, last timestamp) — the join key of
  /// the next stage. Holds under SC/STNM (pair completions never cross, so
  /// extending in row order keeps the order); STAM extensions can break it.
  bool sorted_by_key = true;

  size_t size() const { return traces.size(); }
  const Timestamp* row(size_t r) const { return ts.data() + r * width; }
  Timestamp last(size_t r) const { return ts[r * width + width - 1]; }
};

/// Drops every row for which keep(row_timestamps) is false, preserving
/// order (and therefore sortedness).
template <typename Keep>
void FilterRows(MatchSet* set, Keep keep) {
  size_t out_row = 0;
  for (size_t r = 0; r < set->size(); ++r) {
    const Timestamp* src = set->row(r);
    if (!keep(src)) continue;
    if (out_row != r) {
      set->traces[out_row] = set->traces[r];
      std::copy(src, src + set->width, set->ts.data() + out_row * set->width);
    }
    ++out_row;
  }
  set->traces.resize(out_row);
  set->ts.resize(out_row * set->width);
}

std::vector<PatternMatch> ToPatternMatches(const MatchSet& set) {
  std::vector<PatternMatch> out;
  out.reserve(set.size());
  for (size_t r = 0; r < set.size(); ++r) {
    PatternMatch m;
    m.trace = set.traces[r];
    const Timestamp* src = set.row(r);
    m.timestamps.assign(src, src + set.width);
    out.push_back(std::move(m));
  }
  return out;
}

/// Algorithm 2 lines 5-13 over one contiguous slice of the join: keep
/// matches in rows [row_begin, row_end) whose last event coincides with
/// the first event of a posting in [p_begin, p_end) — a join on
/// (trace, ts_first). Under SC/STNM a pair's completions never share their
/// first event, so each key has one continuation; under skip-till-any-match
/// several postings share a first event and every one extends the match
/// (overlapping results are the point of that policy). The posting range
/// must be sorted by (trace, ts_first) — what GetPairPostingsShared
/// returns. This is both the whole serial join (full ranges) and one
/// morsel of the parallel join; whichever internal path runs, rows are
/// visited in order and each row's continuations appended in posting
/// order, so the output rows depend only on the input ranges.
Result<MatchSet> ExtendMatchRange(const MatchSet& matches, size_t row_begin,
                                  size_t row_end, const PairOccurrence* p_begin,
                                  const PairOccurrence* p_end,
                                  const Deadline& deadline) {
  const size_t rows = row_end - row_begin;
  const size_t num_postings = static_cast<size_t>(p_end - p_begin);
  MatchSet out;
  out.width = matches.width + 1;
  out.traces.reserve(rows);
  out.ts.reserve(rows * out.width);
  size_t ticks = 0;

  TraceId prev_trace = 0;
  Timestamp prev_last = 0;
  auto append = [&](size_t r, Timestamp next) {
    TraceId trace = matches.traces[r];
    if (!out.traces.empty() &&
        (trace < prev_trace || (trace == prev_trace && next < prev_last))) {
      out.sorted_by_key = false;
    }
    prev_trace = trace;
    prev_last = next;
    out.traces.push_back(trace);
    const Timestamp* src = matches.row(r);
    out.ts.insert(out.ts.end(), src, src + matches.width);
    out.ts.push_back(next);
  };

  // When the surviving match set is much smaller than the posting list —
  // the shape selective patterns produce — binary-probing the sorted
  // snapshot per match beats scanning it, and touches none of the shared
  // snapshot's cache lines beyond the probed ranges.
  const bool probe_sorted = rows < num_postings / 8 || num_postings < 16;
  if (probe_sorted) {
    for (size_t r = row_begin; r < row_end; ++r) {
      if (++ticks % kDeadlineStride == 0 && deadline.Expired()) {
        return DeadlineExceeded();
      }
      const PairOccurrence probe{matches.traces[r], matches.last(r),
                                 std::numeric_limits<Timestamp>::min()};
      auto it = std::lower_bound(p_begin, p_end, probe);
      while (it != p_end && it->trace == probe.trace &&
             it->ts_first == probe.ts_first) {
        append(r, it->ts_second);
        ++it;
      }
    }
    return out;
  }

  // Comparable sizes and both sides sorted by the join key: a linear merge
  // join — no hash table, no allocations, two sequential scans.
  if (matches.sorted_by_key) {
    const PairOccurrence* p = p_begin;
    for (size_t r = row_begin; r < row_end; ++r) {
      if (++ticks % kDeadlineStride == 0 && deadline.Expired()) {
        return DeadlineExceeded();
      }
      const TraceId trace = matches.traces[r];
      const Timestamp key = matches.last(r);
      while (p != p_end && (p->trace < trace ||
                            (p->trace == trace && p->ts_first < key))) {
        ++p;
      }
      // Consume the matching run without advancing p: a later row may
      // share the key (STAM inputs), and keys only grow.
      for (const PairOccurrence* q = p;
           q != p_end && q->trace == trace && q->ts_first == key; ++q) {
        append(r, q->ts_second);
      }
    }
    return out;
  }

  // Unsorted matches (STAM after a key-order-breaking extension): hash the
  // posting runs. Postings with the same (trace, ts_first) are contiguous,
  // so the map needs one entry per run pointing back into the snapshot.
  struct Run {
    const PairOccurrence* start;
    size_t len;
  };
  std::unordered_map<TraceTsKey, Run, TraceTsKeyHash> continuation;
  continuation.reserve(num_postings);
  for (const PairOccurrence* p = p_begin; p != p_end;) {
    if (++ticks % kDeadlineStride == 0 && deadline.Expired()) {
      return DeadlineExceeded();
    }
    const PairOccurrence* start = p;
    const PairOccurrence& head = *p;
    do {
      ++p;
    } while (p != p_end && p->trace == head.trace &&
             p->ts_first == head.ts_first);
    continuation.emplace(TraceTsKey{head.trace, head.ts_first},
                         Run{start, static_cast<size_t>(p - start)});
  }
  for (size_t r = row_begin; r < row_end; ++r) {
    if (++ticks % kDeadlineStride == 0 && deadline.Expired()) {
      return DeadlineExceeded();
    }
    auto it = continuation.find(TraceTsKey{matches.traces[r], matches.last(r)});
    if (it == continuation.end()) continue;
    const Run run = it->second;
    for (size_t s = 0; s < run.len; ++s) {
      append(r, run.start[s].ts_second);
    }
  }
  return out;
}

/// The pool (possibly null) and tuning knobs a join runs under.
struct ParallelContext {
  ThreadPool* pool = nullptr;
  const ParallelExecutionOptions* options = nullptr;
};

/// The full pair join: the serial kernel over the whole input, or — when a
/// pool is available, the input is sorted by the join key, and the join is
/// big enough to amortize the fork/join — trace-partitioned morsels run
/// concurrently and concatenated in morsel order.
///
/// Byte-identity of the morsel path (DESIGN.md §13): morsel boundaries are
/// aligned so no trace straddles one, each match row joins only postings of
/// its own trace, so morsel m's output equals the serial output rows for
/// its row range; concatenating in morsel order therefore reproduces the
/// serial row order exactly. The sorted_by_key flag is stitched across
/// fragment boundaries with the same comparison the serial append makes.
Result<MatchSet> ExtendMatchSet(const MatchSet& matches,
                                const std::vector<PairOccurrence>& postings,
                                const Deadline& deadline,
                                const ParallelContext& par) {
  const PairOccurrence* p_begin = postings.data();
  const PairOccurrence* p_end = p_begin + postings.size();
  const bool want_parallel =
      par.pool != nullptr && par.options != nullptr &&
      par.pool->num_threads() > 1 && matches.sorted_by_key &&
      matches.size() + postings.size() >= par.options->min_parallel_join_input;
  if (!want_parallel) {
    return ExtendMatchRange(matches, 0, matches.size(), p_begin, p_end,
                            deadline);
  }

  // Cut the posting array every ~morsel_target_postings entries, then slide
  // each cut forward to the next trace boundary so a trace's postings land
  // in exactly one morsel.
  const size_t target = std::max<size_t>(1, par.options->morsel_target_postings);
  std::vector<size_t> cuts{0};
  while (cuts.back() < postings.size()) {
    size_t end = std::min(postings.size(), cuts.back() + target);
    while (end < postings.size() &&
           postings[end].trace == postings[end - 1].trace) {
      ++end;
    }
    cuts.push_back(end);
  }
  const size_t morsels = cuts.size() - 1;
  if (morsels < 2) {
    return ExtendMatchRange(matches, 0, matches.size(), p_begin, p_end,
                            deadline);
  }

  // Assign each match row to the morsel owning its trace's postings. Rows
  // whose trace falls in a gap between morsels produce no output wherever
  // they run, so boundary placement for them is immaterial.
  std::vector<size_t> row_cuts(morsels + 1);
  row_cuts[0] = 0;
  row_cuts[morsels] = matches.size();
  for (size_t m = 1; m < morsels; ++m) {
    row_cuts[m] = static_cast<size_t>(
        std::lower_bound(matches.traces.begin(), matches.traces.end(),
                         postings[cuts[m]].trace) -
        matches.traces.begin());
  }

  std::vector<MatchSet> fragments(morsels);
  std::vector<Status> statuses(morsels);
  par.pool->ParallelFor(morsels, [&](size_t m) {
    auto fragment =
        ExtendMatchRange(matches, row_cuts[m], row_cuts[m + 1],
                         p_begin + cuts[m], p_begin + cuts[m + 1], deadline);
    if (fragment.ok()) {
      fragments[m] = std::move(fragment).value();
    } else {
      statuses[m] = fragment.status();
    }
  });
  for (const Status& s : statuses) SEQDET_RETURN_IF_ERROR(s);

  MatchSet out;
  out.width = matches.width + 1;
  size_t total = 0;
  for (const MatchSet& f : fragments) total += f.size();
  out.traces.reserve(total);
  out.ts.reserve(total * out.width);
  for (MatchSet& f : fragments) {
    if (f.size() == 0) continue;
    if (!out.traces.empty()) {
      // Stitch the sorted flag across the fragment boundary — exactly the
      // comparison the serial append would have made between these rows.
      const size_t last = out.size() - 1;
      if (f.traces[0] < out.traces[last] ||
          (f.traces[0] == out.traces[last] && f.last(0) < out.last(last))) {
        out.sorted_by_key = false;
      }
    }
    if (!f.sorted_by_key) out.sorted_by_key = false;
    out.traces.insert(out.traces.end(), f.traces.begin(), f.traces.end());
    out.ts.insert(out.ts.end(), f.ts.begin(), f.ts.end());
  }
  return out;
}

}  // namespace

Result<StatisticsResult> QueryProcessor::Statistics(
    const Pattern& pattern, const StatisticsOptions& options) const {
  if (pattern.size() < 2) {
    return Status::InvalidArgument("statistics needs a pattern of >= 2");
  }
  StatisticsResult result;
  result.completions_upper_bound = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i + 1 < pattern.size(); ++i) {
    EventTypePair pair{pattern.activities[i], pattern.activities[i + 1]};
    SEQDET_ASSIGN_OR_RETURN(PairCountStats stats,
                            index_->GetPairStats(pair));
    PairStatisticsRow row;
    row.pair = pair;
    row.total_completions = stats.total_completions;
    row.average_duration = stats.AverageDuration();
    row.sum_duration = stats.sum_duration;
    if (options.include_last_completion) {
      SEQDET_ASSIGN_OR_RETURN(row.last_completion,
                              index_->GetPairLastCompletion(pair));
    }
    result.completions_upper_bound =
        std::min(result.completions_upper_bound, stats.total_completions);
    result.estimated_duration += row.average_duration;
    result.pairs.push_back(row);
  }
  return result;
}

Result<std::vector<PatternMatch>> QueryProcessor::ExtendMatches(
    std::vector<PatternMatch> matches,
    const std::vector<PairOccurrence>& postings, const Deadline& deadline)
    const {
  if (matches.empty()) return std::vector<PatternMatch>{};
  // Pack into the flat working representation (all inputs come from a
  // prior Detect, so every match has the same width), join, unpack.
  MatchSet set;
  set.width = matches[0].timestamps.size();
  set.traces.reserve(matches.size());
  set.ts.reserve(matches.size() * set.width);
  for (const PatternMatch& m : matches) {
    if (!set.traces.empty() &&
        (m.trace < set.traces.back() ||
         (m.trace == set.traces.back() &&
          m.timestamps.back() < set.last(set.size() - 1)))) {
      set.sorted_by_key = false;
    }
    set.traces.push_back(m.trace);
    set.ts.insert(set.ts.end(), m.timestamps.begin(), m.timestamps.end());
  }
  SEQDET_ASSIGN_OR_RETURN(
      MatchSet extended,
      ExtendMatchSet(set, postings, deadline,
                     ParallelContext{pool_, &parallel_}));
  return ToPatternMatches(extended);
}

Result<std::vector<PatternMatch>> QueryProcessor::Detect(
    const Pattern& pattern, const DetectionConstraints& constraints) const {
  if (pattern.size() < 2) {
    return Status::InvalidArgument(
        "detection needs a pattern of >= 2 events (the index is pair-based)");
  }
  if (constraints.deadline.Expired()) return DeadlineExceeded();
  const size_t num_pairs = pattern.size() - 1;
  auto pair_at = [&pattern](size_t i) {
    return EventTypePair{pattern.activities[i], pattern.activities[i + 1]};
  };

  // Selectivity-ordered pruning (>= 2 pairs; one pair has nothing to
  // intersect with). Every full match needs a completion of *every*
  // adjacent pair in its trace, so the block-header trace ranges of each
  // pair's posting list bound the candidate traces: intersect them —
  // starting from the smallest list, the cheapest place to run dry — and
  // the join then decodes only blocks overlapping the survivors.
  index::TraceIntervalSet candidates;
  uint64_t candidate_span = 0;
  std::vector<index::PairPostingSummary> summaries;
  if (num_pairs >= 2) {
    summaries.resize(num_pairs);
    for (size_t i = 0; i < num_pairs; ++i) {
      SEQDET_ASSIGN_OR_RETURN(summaries[i],
                              index_->GetPairSummary(pair_at(i)));
      if (summaries[i].postings == 0) return std::vector<PatternMatch>{};
    }
    std::vector<size_t> order(num_pairs);
    for (size_t i = 0; i < num_pairs; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&summaries](size_t a, size_t b) {
      return summaries[a].postings < summaries[b].postings;
    });
    candidates = summaries[order[0]].traces;
    for (size_t k = 1; k < num_pairs && !candidates.empty(); ++k) {
      candidates = index::TraceIntervalSet::Intersect(
          candidates, summaries[order[k]].traces);
    }
    if (candidates.empty()) return std::vector<PatternMatch>{};
    candidate_span = candidates.Span();
  }
  // Filtering a pair's list pays only when the candidate set is narrower
  // than the list's own trace span — when the spans are equal (a pattern
  // of uniformly hot pairs) no block can be skipped and the selective
  // decode path is pure per-query overhead (an unbounded v1 set trivially
  // fails the test). Decided per pair: a rare anchor narrows the hot pairs
  // it is joined with but not itself.
  auto want_filter = [&](size_t i) {
    return !summaries.empty() &&
           candidate_span < summaries[i].traces.Span();
  };
  if (constraints.deadline.Expired()) return DeadlineExceeded();

  // Parallel posting acquisition: with a pool, fetch every pair's list up
  // front and concurrently, overlapping the SDSEG2 block decodes and
  // posting-cache fills the serial engine pays one join step at a time.
  // The serial engine keeps the lazy per-step fetch below so a join that
  // runs dry never touches the remaining pairs' lists.
  std::vector<index::PostingCache::Snapshot> prefetched;
  if (pool_ != nullptr && pool_->num_threads() > 1 && num_pairs >= 2) {
    std::vector<index::SequenceIndex::PairPostingsRequest> requests(num_pairs);
    for (size_t i = 0; i < num_pairs; ++i) {
      requests[i].pair = pair_at(i);
      requests[i].filter = want_filter(i) ? &candidates : nullptr;
    }
    SEQDET_ASSIGN_OR_RETURN(prefetched,
                            index_->GetPairPostingsBatch(requests, pool_));
  }
  auto fetch = [&](size_t i) -> Result<index::PostingCache::Snapshot> {
    if (!prefetched.empty()) return prefetched[i];
    return want_filter(i)
               ? index_->GetPairPostingsFiltered(pair_at(i), candidates)
               : index_->GetPairPostingsShared(pair_at(i));
  };
  SEQDET_ASSIGN_OR_RETURN(auto first_postings, fetch(0));
  // Trace-level refinement of the first matches is worthwhile under the
  // same selectivity condition as block filtering (Contains is a binary
  // search per posting — pure overhead when nothing gets dropped).
  const bool prune_first = want_filter(0);
  MatchSet matches;
  matches.width = 2;
  matches.traces.reserve(first_postings->size());
  matches.ts.reserve(first_postings->size() * 2);
  size_t ticks = 0;
  for (const PairOccurrence& posting : *first_postings) {
    if (++ticks % kDeadlineStride == 0 && constraints.deadline.Expired()) {
      return DeadlineExceeded();
    }
    if (prune_first && !candidates.Contains(posting.trace)) continue;
    if (constraints.max_gap.has_value() &&
        posting.ts_second - posting.ts_first > *constraints.max_gap) {
      continue;
    }
    if (!matches.traces.empty() &&
        (posting.trace < matches.traces.back() ||
         (posting.trace == matches.traces.back() &&
          posting.ts_second < matches.last(matches.size() - 1)))) {
      matches.sorted_by_key = false;
    }
    matches.traces.push_back(posting.trace);
    matches.ts.push_back(posting.ts_first);
    matches.ts.push_back(posting.ts_second);
  }
  for (size_t i = 1; i + 1 < pattern.size() && matches.size() > 0; ++i) {
    if (constraints.deadline.Expired()) return DeadlineExceeded();
    SEQDET_ASSIGN_OR_RETURN(auto postings, fetch(i));
    SEQDET_ASSIGN_OR_RETURN(
        matches, ExtendMatchSet(matches, *postings, constraints.deadline,
                                ParallelContext{pool_, &parallel_}));
    if (constraints.max_gap.has_value()) {
      const size_t w = matches.width;
      const Timestamp max_gap = *constraints.max_gap;
      FilterRows(&matches, [w, max_gap](const Timestamp* row) {
        return row[w - 1] - row[w - 2] <= max_gap;
      });
    }
  }
  if (constraints.max_span.has_value()) {
    const size_t w = matches.width;
    const Timestamp max_span = *constraints.max_span;
    FilterRows(&matches, [w, max_span](const Timestamp* row) {
      return row[w - 1] - row[0] <= max_span;
    });
  }
  return ToPatternMatches(matches);
}

// ---------------------------------------------------------------------------
// Extended-operator detection (DESIGN.md §14).
// ---------------------------------------------------------------------------

namespace {

/// The working state of the extended join: matches of one uniform width
/// sharing the same Kleene depth distribution, plus — per positive pattern
/// element — the index of the LAST timestamp its chain occupies (the first
/// follows as last_of[j-1] + 1). Groups stay separate because MatchSet and
/// ExtendMatches are fixed-width; every group flows through the same
/// morsel-parallel join kernel Detect uses.
struct ExtGroup {
  std::vector<PatternMatch> matches;
  std::vector<uint32_t> last_of;
};

/// The tighter of two optional inclusive bounds.
std::optional<Timestamp> TighterBound(std::optional<Timestamp> a,
                                      std::optional<Timestamp> b) {
  if (!a) return b;
  if (!b) return a;
  return std::min(*a, *b);
}

/// Union of the concrete pair posting lists over `from` x `to`, sorted by
/// (trace, ts_first, ts_second) and deduplicated (two concrete pairs emit
/// the same occurrence only when events share timestamps). With
/// `strict_progress`, occurrences whose timestamp does not advance are
/// dropped — the rule that bounds Kleene closures.
Result<std::vector<PairOccurrence>> MergedPostings(
    const index::SequenceIndex* index, const std::vector<ActivityId>& from,
    const std::vector<ActivityId>& to, bool strict_progress) {
  std::vector<PairOccurrence> out;
  for (ActivityId a : from) {
    for (ActivityId b : to) {
      SEQDET_ASSIGN_OR_RETURN(auto snapshot,
                              index->GetPairPostingsShared({a, b}));
      for (const PairOccurrence& p : *snapshot) {
        if (strict_progress && p.ts_second <= p.ts_first) continue;
        out.push_back(p);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Prepends postings to matches whose first timestamp equals the posting's
/// second — the leading-Kleene left extension. `postings_by_second` must be
/// sorted by (trace, ts_second, ts_first).
std::vector<PatternMatch> LeftExtendMatches(
    const std::vector<PatternMatch>& matches,
    const std::vector<PairOccurrence>& postings_by_second) {
  auto by_second_less = [](const PairOccurrence& p, const PairOccurrence& q) {
    return std::tie(p.trace, p.ts_second, p.ts_first) <
           std::tie(q.trace, q.ts_second, q.ts_first);
  };
  std::vector<PatternMatch> out;
  for (const PatternMatch& m : matches) {
    const PairOccurrence probe{m.trace, std::numeric_limits<Timestamp>::min(),
                               m.timestamps.front()};
    for (auto it = std::lower_bound(postings_by_second.begin(),
                                    postings_by_second.end(), probe,
                                    by_second_less);
         it != postings_by_second.end() && it->trace == m.trace &&
         it->ts_second == m.timestamps.front();
         ++it) {
      PatternMatch extended;
      extended.trace = m.trace;
      extended.timestamps.reserve(m.timestamps.size() + 1);
      extended.timestamps.push_back(it->ts_first);
      for (Timestamp ts : m.timestamps) extended.timestamps.push_back(ts);
      out.push_back(std::move(extended));
    }
  }
  return out;
}

/// Canonical result order of extended detection: (trace, timestamps
/// lexicographic). Distinct Kleene depth splits can assemble identical
/// vectors, so callers dedupe right after sorting.
bool CanonicalMatchLess(const PatternMatch& a, const PatternMatch& b) {
  if (a.trace != b.trace) return a.trace < b.trace;
  return std::lexicographical_compare(a.timestamps.begin(),
                                      a.timestamps.end(),
                                      b.timestamps.begin(),
                                      b.timestamps.end());
}

}  // namespace

Result<std::vector<PatternMatch>> QueryProcessor::DetectExtended(
    const ExtendedPattern& pattern,
    const DetectionConstraints& constraints) const {
  SEQDET_RETURN_IF_ERROR(pattern.Validate());
  const Deadline& deadline = constraints.deadline;
  if (deadline.Expired()) return DeadlineExceeded();

  const std::optional<Timestamp> max_gap =
      TighterBound(pattern.max_gap, constraints.max_gap);
  const std::optional<Timestamp> max_span =
      TighterBound(pattern.max_span, constraints.max_span);

  // Plain patterns take the identical Detect join plan (selectivity-ordered
  // pruning, parallel prefetch) and keep its result order.
  if (pattern.IsPlain() && pattern.size() >= 2) {
    DetectionConstraints plain;
    plain.max_gap = max_gap;
    plain.max_span = max_span;
    plain.deadline = deadline;
    return Detect(pattern.AsPlain(), plain);
  }

  // The extended composition is defined over SC/STNM pair sets (the SASE
  // oracle is the normative spec and covers exactly those policies).
  if (index_->options().policy == index::Policy::kSkipTillAnyMatch) {
    return Status::Unsupported(
        "extended operators are only defined under strict-contiguity and "
        "skip-till-next-match");
  }

  // Inclusive time bounds, applied eagerly after every extension: a
  // violated gap or span never heals, and eager dropping is what keeps
  // Kleene closures small.
  auto gap_ok = [&max_gap](Timestamp prev, Timestamp next) {
    return !max_gap || next - prev <= *max_gap;
  };
  auto span_ok = [&max_span](Timestamp first, Timestamp last) {
    return !max_span || last - first <= *max_span;
  };
  auto filter_bounds = [&](std::vector<PatternMatch>* matches) {
    std::erase_if(*matches, [&](const PatternMatch& m) {
      for (size_t i = 1; i < m.timestamps.size(); ++i) {
        if (!gap_ok(m.timestamps[i - 1], m.timestamps[i])) return true;
      }
      return !span_ok(m.timestamps.front(), m.timestamps.back());
    });
  };

  std::vector<size_t> positives;
  for (size_t i = 0; i < pattern.elements.size(); ++i) {
    if (!pattern.elements[i].negated) positives.push_back(i);
  }
  auto elem = [&](size_t j) -> const PatternElement& {
    return pattern.elements[positives[j]];
  };
  const size_t k = positives.size();

  // Seq-table sequences, fetched once per trace — shared by the
  // single-positive seed and the negation checks.
  std::unordered_map<TraceId, std::vector<eventlog::Event>> sequences;
  auto trace_events =
      [&](TraceId trace) -> Result<const std::vector<eventlog::Event>*> {
    auto it = sequences.find(trace);
    if (it == sequences.end()) {
      SEQDET_ASSIGN_OR_RETURN(auto events, index_->GetTraceSequence(trace));
      it = sequences.emplace(trace, std::move(events)).first;
    }
    return &it->second;
  };

  std::vector<ExtGroup> groups;
  if (k == 1) {
    // Single positive element (compliance templates): every matching event
    // across every stored trace seeds a width-1 match. All policies agree
    // on length-1 occurrences.
    SEQDET_ASSIGN_OR_RETURN(std::vector<TraceId> traces,
                            index_->ListTraces());
    ExtGroup seed;
    seed.last_of = {0};
    size_t ticks = 0;
    for (TraceId trace : traces) {
      if (++ticks % 64 == 0 && deadline.Expired()) return DeadlineExceeded();
      SEQDET_ASSIGN_OR_RETURN(const auto* events, trace_events(trace));
      for (const eventlog::Event& ev : *events) {
        if (!elem(0).Matches(ev.activity)) continue;
        PatternMatch m;
        m.trace = trace;
        m.timestamps.push_back(ev.ts);
        seed.matches.push_back(std::move(m));
      }
    }
    groups.push_back(std::move(seed));
  } else {
    // Seed with the (P0, P1) pair, then left-close a leading Kleene: the
    // pair index has no single-event occurrence lists, so the first
    // transition is folded into the seed and earlier chain members of a
    // Kleene P0 are prepended afterwards.
    SEQDET_ASSIGN_OR_RETURN(
        std::vector<PairOccurrence> seed_postings,
        MergedPostings(index_, elem(0).alternatives, elem(1).alternatives,
                       /*strict_progress=*/false));
    ExtGroup seed;
    seed.last_of = {0, 1};
    seed.matches.reserve(seed_postings.size());
    for (const PairOccurrence& p : seed_postings) {
      if (!gap_ok(p.ts_first, p.ts_second) ||
          !span_ok(p.ts_first, p.ts_second)) {
        continue;
      }
      PatternMatch m;
      m.trace = p.trace;
      m.timestamps.push_back(p.ts_first);
      m.timestamps.push_back(p.ts_second);
      seed.matches.push_back(std::move(m));
    }
    groups.push_back(std::move(seed));
    if (elem(0).kleene) {
      SEQDET_ASSIGN_OR_RETURN(
          std::vector<PairOccurrence> self,
          MergedPostings(index_, elem(0).alternatives, elem(0).alternatives,
                         /*strict_progress=*/true));
      std::sort(self.begin(), self.end(),
                [](const PairOccurrence& p, const PairOccurrence& q) {
                  return std::tie(p.trace, p.ts_second, p.ts_first) <
                         std::tie(q.trace, q.ts_second, q.ts_first);
                });
      size_t frontier = 0;  // groups[frontier..] are the newest depth
      while (frontier < groups.size()) {
        if (deadline.Expired()) return DeadlineExceeded();
        std::vector<PatternMatch> deeper =
            LeftExtendMatches(groups[frontier].matches, self);
        filter_bounds(&deeper);
        ++frontier;
        if (deeper.empty()) continue;
        ExtGroup g;
        for (uint32_t idx : groups[frontier - 1].last_of) {
          g.last_of.push_back(idx + 1);  // the prepend shifted every index
        }
        g.matches = std::move(deeper);
        groups.push_back(std::move(g));
      }
    }
  }

  // Close the remaining positives left to right. j == 1 was folded into
  // the seed (and a leading Kleene left-closed above); each Kleene element
  // gets a right closure chaining strict-progress self pairs.
  for (size_t j = (k == 1 ? 0 : 1); j < k; ++j) {
    if (deadline.Expired()) return DeadlineExceeded();
    if (j >= 2) {
      SEQDET_ASSIGN_OR_RETURN(
          std::vector<PairOccurrence> postings,
          MergedPostings(index_, elem(j - 1).alternatives,
                         elem(j).alternatives, /*strict_progress=*/false));
      std::vector<ExtGroup> next;
      next.reserve(groups.size());
      for (ExtGroup& g : groups) {
        SEQDET_ASSIGN_OR_RETURN(
            std::vector<PatternMatch> extended,
            ExtendMatches(std::move(g.matches), postings, deadline));
        filter_bounds(&extended);
        if (extended.empty()) continue;
        ExtGroup ng;
        ng.last_of = std::move(g.last_of);
        ng.last_of.push_back(
            static_cast<uint32_t>(extended.front().timestamps.size() - 1));
        ng.matches = std::move(extended);
        next.push_back(std::move(ng));
      }
      groups = std::move(next);
    }
    if (elem(j).kleene && !(j == 0 && k > 1)) {
      SEQDET_ASSIGN_OR_RETURN(
          std::vector<PairOccurrence> self,
          MergedPostings(index_, elem(j).alternatives, elem(j).alternatives,
                         /*strict_progress=*/true));
      // Close every existing group; newly produced depths join the queue
      // and are themselves closed until the strict-progress rule runs the
      // frontier dry.
      size_t frontier = 0;
      while (frontier < groups.size()) {
        if (deadline.Expired()) return DeadlineExceeded();
        SEQDET_ASSIGN_OR_RETURN(
            std::vector<PatternMatch> deeper,
            ExtendMatches(groups[frontier].matches, self, deadline));
        filter_bounds(&deeper);
        ++frontier;
        if (deeper.empty()) continue;
        ExtGroup g;
        g.last_of = groups[frontier - 1].last_of;
        g.last_of.back() += 1;
        g.matches = std::move(deeper);
        groups.push_back(std::move(g));
      }
    }
  }

  // Negation post-verification: a match dies when an event of the negated
  // set lies strictly inside the open interval between its positive
  // neighbours' matched events (unbounded at the pattern ends).
  std::vector<size_t> negations;
  for (size_t i = 0; i < pattern.elements.size(); ++i) {
    if (pattern.elements[i].negated) negations.push_back(i);
  }
  if (!negations.empty()) {
    for (ExtGroup& g : groups) {
      size_t ticks = 0;
      std::vector<PatternMatch> kept;
      kept.reserve(g.matches.size());
      for (PatternMatch& m : g.matches) {
        if (++ticks % 1024 == 0 && deadline.Expired()) {
          return DeadlineExceeded();
        }
        SEQDET_ASSIGN_OR_RETURN(const auto* events, trace_events(m.trace));
        bool violated = false;
        for (size_t e : negations) {
          size_t left = k, right = k;  // k = "no such neighbour"
          for (size_t j = 0; j < k; ++j) {
            if (positives[j] < e) left = j;
            if (positives[j] > e) {
              right = j;
              break;
            }
          }
          const bool has_left = left != k;
          const bool has_right = right != k;
          const Timestamp left_ts =
              has_left ? m.timestamps[g.last_of[left]] : 0;
          const Timestamp right_ts =
              has_right
                  ? m.timestamps[right == 0 ? 0 : g.last_of[right - 1] + 1]
                  : 0;
          for (const eventlog::Event& ev : *events) {
            if (!pattern.elements[e].Matches(ev.activity)) continue;
            if (has_left && ev.ts <= left_ts) continue;
            if (has_right && ev.ts >= right_ts) continue;
            violated = true;
            break;
          }
          if (violated) break;
        }
        if (!violated) kept.push_back(std::move(m));
      }
      g.matches = std::move(kept);
    }
  }

  // Canonical order + dedup across groups.
  std::vector<PatternMatch> out;
  size_t total = 0;
  for (const ExtGroup& g : groups) total += g.matches.size();
  out.reserve(total);
  for (ExtGroup& g : groups) {
    for (PatternMatch& m : g.matches) out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(), CanonicalMatchLess);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<std::vector<PatternMatch>>> QueryProcessor::DetectBatch(
    const std::vector<Pattern>& patterns, ThreadPool* pool,
    const DetectionConstraints& constraints) const {
  if (pool == nullptr) pool = pool_;
  std::vector<std::vector<PatternMatch>> results(patterns.size());
  std::vector<Status> statuses(patterns.size());
  auto run_one = [&](size_t i) {
    auto matches = Detect(patterns[i], constraints);
    if (matches.ok()) {
      results[i] = std::move(matches).value();
    } else {
      statuses[i] = matches.status();
    }
  };
  if (pool != nullptr && patterns.size() > 1) {
    pool->ParallelFor(patterns.size(), run_one);
  } else {
    for (size_t i = 0; i < patterns.size(); ++i) run_one(i);
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return results;
}

Result<std::vector<PatternMatch>> QueryProcessor::DetectInTrace(
    eventlog::TraceId trace, const Pattern& pattern) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  if (index_->options().policy == index::Policy::kSkipTillAnyMatch) {
    return Status::Unsupported(
        "per-trace drill-down is not available under skip-till-any-match");
  }
  SEQDET_ASSIGN_OR_RETURN(auto events, index_->GetTraceSequence(trace));
  std::vector<PatternMatch> matches;
  const auto& ids = pattern.activities;
  if (index_->options().policy == index::Policy::kStrictContiguity) {
    for (size_t start = 0; start + ids.size() <= events.size(); ++start) {
      bool ok = true;
      for (size_t i = 0; i < ids.size(); ++i) {
        if (events[start + i].activity != ids[i]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      PatternMatch match;
      match.trace = trace;
      for (size_t i = 0; i < ids.size(); ++i) {
        match.timestamps.push_back(events[start + i].ts);
      }
      matches.push_back(std::move(match));
    }
  } else {
    // Greedy whole-pattern STNM.
    size_t state = 0;
    PatternMatch current;
    current.trace = trace;
    for (const auto& e : events) {
      if (e.activity != ids[state]) continue;
      current.timestamps.push_back(e.ts);
      if (++state == ids.size()) {
        matches.push_back(current);
        current.timestamps.clear();
        state = 0;
      }
    }
  }
  return matches;
}

void QueryProcessor::RankProposals(
    std::vector<ContinuationProposal>* proposals) {
  for (ContinuationProposal& p : *proposals) {
    p.score = Score(p.total_completions, p.average_duration);
  }
  std::sort(proposals->begin(), proposals->end(),
            [](const ContinuationProposal& a, const ContinuationProposal& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.activity < b.activity;
            });
}

Status QueryProcessor::VerifyCandidates(
    size_t n, const std::function<Result<ContinuationProposal>(size_t)>& verify,
    std::vector<ContinuationProposal>* proposals) const {
  proposals->assign(n, ContinuationProposal{});
  std::vector<Status> statuses(n);
  auto run_one = [&](size_t i) {
    auto proposal = verify(i);
    if (proposal.ok()) {
      (*proposals)[i] = std::move(proposal).value();
    } else {
      statuses[i] = proposal.status();
    }
  };
  // Each verification is an independent read of the (quiescent-under-MVCC)
  // index, so candidates fan out whenever the pool can actually overlap
  // them. Results land by index, keeping the serial candidate order.
  if (pool_ != nullptr && pool_->num_threads() > 1 &&
      n >= parallel_.min_parallel_candidates) {
    pool_->ParallelFor(n, run_one);
  } else {
    for (size_t i = 0; i < n; ++i) run_one(i);
  }
  for (const Status& s : statuses) SEQDET_RETURN_IF_ERROR(s);
  return Status::OK();
}

Result<ContinuationProposal> QueryProcessor::VerifyCandidate(
    const Pattern& pattern, const std::vector<PatternMatch>& base_matches,
    ActivityId candidate, const ContinuationConstraints& constraints) const {
  SEQDET_ASSIGN_OR_RETURN(
      auto postings,
      index_->GetPairPostingsShared(
          EventTypePair{pattern.activities.back(), candidate}));
  // base_matches is reused for every candidate, so it is copied (by the
  // by-value parameter) rather than moved into the join.
  SEQDET_ASSIGN_OR_RETURN(std::vector<PatternMatch> extended,
                          ExtendMatches(base_matches, *postings));

  ContinuationProposal proposal;
  proposal.activity = candidate;
  int64_t total_gap = 0;
  for (const PatternMatch& match : extended) {
    Timestamp gap = match.timestamps[match.timestamps.size() - 1] -
                    match.timestamps[match.timestamps.size() - 2];
    if (constraints.max_gap.has_value() && gap > *constraints.max_gap) {
      continue;  // line 7: time constraint
    }
    ++proposal.total_completions;
    total_gap += gap;
  }
  proposal.sum_duration = total_gap;
  proposal.average_duration =
      proposal.total_completions == 0
          ? 0.0
          : static_cast<double>(total_gap) /
                static_cast<double>(proposal.total_completions);
  return proposal;
}

Result<ContinuationProposal> QueryProcessor::VerifySingleEventCandidate(
    ActivityId base, ActivityId candidate,
    const ContinuationConstraints& constraints) const {
  SEQDET_ASSIGN_OR_RETURN(
      auto postings,
      index_->GetPairPostingsShared(EventTypePair{base, candidate}));
  ContinuationProposal proposal;
  proposal.activity = candidate;
  int64_t total_gap = 0;
  for (const PairOccurrence& posting : *postings) {
    Timestamp gap = posting.ts_second - posting.ts_first;
    if (constraints.max_gap.has_value() && gap > *constraints.max_gap) {
      continue;
    }
    ++proposal.total_completions;
    total_gap += gap;
  }
  proposal.sum_duration = total_gap;
  proposal.average_duration =
      proposal.total_completions == 0
          ? 0.0
          : static_cast<double>(total_gap) /
                static_cast<double>(proposal.total_completions);
  return proposal;
}

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueAccurate(
    const Pattern& pattern, const ContinuationConstraints& constraints) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty continuation pattern");
  }
  // Line 2: candidate continuations from the Count table.
  SEQDET_ASSIGN_OR_RETURN(
      auto candidates, index_->GetFollowerStats(pattern.activities.back()));

  // Detect the base pattern once; each candidate only joins one more pair
  // (§5.4.2: continuation is incremental, the base is not re-queried).
  std::vector<PatternMatch> base_matches;
  if (pattern.size() >= 2) {
    SEQDET_ASSIGN_OR_RETURN(base_matches, Detect(pattern));
  }

  std::vector<ContinuationProposal> proposals;
  SEQDET_RETURN_IF_ERROR(VerifyCandidates(
      candidates.size(),
      [&](size_t i) -> Result<ContinuationProposal> {
        if (pattern.size() == 1) {
          return VerifySingleEventCandidate(pattern.activities.back(),
                                            candidates[i].other, constraints);
        }
        return VerifyCandidate(pattern, base_matches, candidates[i].other,
                               constraints);
      },
      &proposals));
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueAccurateNaive(
    const Pattern& pattern, const ContinuationConstraints& constraints) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty continuation pattern");
  }
  SEQDET_ASSIGN_OR_RETURN(
      auto candidates, index_->GetFollowerStats(pattern.activities.back()));
  std::vector<ContinuationProposal> proposals;
  proposals.reserve(candidates.size());
  for (const PairCountStats& candidate : candidates) {
    Pattern extended = pattern.Extended(candidate.other);
    ContinuationProposal proposal;
    proposal.activity = candidate.other;
    if (extended.size() < 2) {
      proposals.push_back(proposal);
      continue;
    }
    SEQDET_ASSIGN_OR_RETURN(auto matches, Detect(extended));
    int64_t total_gap = 0;
    for (const PatternMatch& match : matches) {
      Timestamp gap = match.timestamps[match.timestamps.size() - 1] -
                      match.timestamps[match.timestamps.size() - 2];
      if (constraints.max_gap.has_value() && gap > *constraints.max_gap) {
        continue;
      }
      ++proposal.total_completions;
      total_gap += gap;
    }
    proposal.sum_duration = total_gap;
    proposal.average_duration =
        proposal.total_completions == 0
            ? 0.0
            : static_cast<double>(total_gap) /
                  static_cast<double>(proposal.total_completions);
    proposals.push_back(proposal);
  }
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueFast(
    const Pattern& pattern) const {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty continuation pattern");
  }
  // Lines 2-8: upper bound of whole-pattern completions.
  uint64_t max_completions = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i + 1 < pattern.size(); ++i) {
    SEQDET_ASSIGN_OR_RETURN(
        PairCountStats stats,
        index_->GetPairStats(EventTypePair{pattern.activities[i],
                                           pattern.activities[i + 1]}));
    max_completions = std::min(max_completions, stats.total_completions);
  }
  // Lines 10-13: cap each candidate's count by the pattern bound.
  SEQDET_ASSIGN_OR_RETURN(
      auto candidates, index_->GetFollowerStats(pattern.activities.back()));
  std::vector<ContinuationProposal> proposals;
  proposals.reserve(candidates.size());
  for (const PairCountStats& candidate : candidates) {
    ContinuationProposal proposal;
    proposal.activity = candidate.other;
    proposal.total_completions =
        std::min(max_completions, candidate.total_completions);
    proposal.average_duration = candidate.AverageDuration();
    proposal.sum_duration = candidate.sum_duration;
    proposals.push_back(proposal);
  }
  RankProposals(&proposals);
  return proposals;
}

namespace {

/// The pattern with `candidate` inserted before position `gap_index`.
Pattern Spliced(const Pattern& pattern, size_t gap_index,
                ActivityId candidate) {
  Pattern out;
  out.activities.reserve(pattern.size() + 1);
  out.activities.insert(out.activities.end(), pattern.activities.begin(),
                        pattern.activities.begin() +
                            static_cast<ptrdiff_t>(gap_index));
  out.activities.push_back(candidate);
  out.activities.insert(out.activities.end(),
                        pattern.activities.begin() +
                            static_cast<ptrdiff_t>(gap_index),
                        pattern.activities.end());
  return out;
}

}  // namespace

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueInsertFast(
    const Pattern& pattern, size_t gap_index) const {
  if (pattern.empty() || gap_index > pattern.size()) {
    return Status::InvalidArgument("bad continuation gap index");
  }
  if (gap_index == pattern.size()) return ContinueFast(pattern);
  if (gap_index == 0) {
    // Prepend: candidates are predecessors of the first event.
    SEQDET_ASSIGN_OR_RETURN(
        auto predecessors,
        index_->GetPredecessorStats(pattern.activities.front()));
    std::vector<ContinuationProposal> proposals;
    for (const PairCountStats& candidate : predecessors) {
      proposals.push_back(ContinuationProposal{
          candidate.other, candidate.total_completions,
          candidate.AverageDuration(), 0});
    }
    RankProposals(&proposals);
    return proposals;
  }

  const ActivityId left = pattern.activities[gap_index - 1];
  const ActivityId right = pattern.activities[gap_index];
  SEQDET_ASSIGN_OR_RETURN(auto followers, index_->GetFollowerStats(left));
  SEQDET_ASSIGN_OR_RETURN(auto predecessors,
                          index_->GetPredecessorStats(right));
  std::unordered_map<ActivityId, PairCountStats> into_right;
  for (const PairCountStats& p : predecessors) into_right.emplace(p.other, p);

  // Upper bound from the rest of the pattern's pairs.
  uint64_t pattern_bound = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i + 1 < pattern.size(); ++i) {
    if (i + 1 == gap_index) continue;  // the split pair is replaced
    SEQDET_ASSIGN_OR_RETURN(
        PairCountStats stats,
        index_->GetPairStats(EventTypePair{pattern.activities[i],
                                           pattern.activities[i + 1]}));
    pattern_bound = std::min(pattern_bound, stats.total_completions);
  }

  std::vector<ContinuationProposal> proposals;
  for (const PairCountStats& out_of_left : followers) {
    auto it = into_right.find(out_of_left.other);
    if (it == into_right.end()) continue;  // never precedes `right`
    ContinuationProposal proposal;
    proposal.activity = out_of_left.other;
    proposal.total_completions =
        std::min({pattern_bound, out_of_left.total_completions,
                  it->second.total_completions});
    proposal.average_duration =
        out_of_left.AverageDuration() + it->second.AverageDuration();
    proposals.push_back(proposal);
  }
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ContinuationProposal>>
QueryProcessor::ContinueInsertAccurate(
    const Pattern& pattern, size_t gap_index,
    const ContinuationConstraints& constraints) const {
  if (pattern.empty() || gap_index > pattern.size()) {
    return Status::InvalidArgument("bad continuation gap index");
  }
  if (gap_index == pattern.size()) {
    return ContinueAccurate(pattern, constraints);
  }
  SEQDET_ASSIGN_OR_RETURN(auto candidates,
                          ContinueInsertFast(pattern, gap_index));
  std::vector<ContinuationProposal> proposals;
  SEQDET_RETURN_IF_ERROR(VerifyCandidates(
      candidates.size(),
      [&](size_t i) -> Result<ContinuationProposal> {
        const ContinuationProposal& candidate = candidates[i];
        Pattern spliced = Spliced(pattern, gap_index, candidate.activity);
        if (spliced.size() < 2) return candidate;
        ContinuationProposal proposal;
        proposal.activity = candidate.activity;
        SEQDET_ASSIGN_OR_RETURN(auto matches, Detect(spliced));
        int64_t total_gap = 0;
        for (const PatternMatch& match : matches) {
          // Duration of the detour through the inserted event.
          size_t at = gap_index;  // index of the inserted event in the match
          Timestamp gap =
              at + 1 < match.timestamps.size()
                  ? match.timestamps[at + 1] -
                        (at > 0 ? match.timestamps[at - 1]
                                : match.timestamps[at])
                  : match.timestamps[at] - match.timestamps[at - 1];
          if (constraints.max_gap.has_value() && gap > *constraints.max_gap) {
            continue;
          }
          ++proposal.total_completions;
          total_gap += gap;
        }
        proposal.sum_duration = total_gap;
        proposal.average_duration =
            proposal.total_completions == 0
                ? 0.0
                : static_cast<double>(total_gap) /
                      static_cast<double>(proposal.total_completions);
        return proposal;
      },
      &proposals));
  RankProposals(&proposals);
  return proposals;
}

Result<std::vector<ContinuationProposal>> QueryProcessor::ContinueHybrid(
    const Pattern& pattern, size_t top_k,
    const ContinuationConstraints& constraints) const {
  // Line 3: initial ranking from the Fast heuristic.
  SEQDET_ASSIGN_OR_RETURN(auto fast, ContinueFast(pattern));
  if (top_k == 0) return fast;

  // Line 4: Accurate verification of the topK candidates only.
  std::vector<PatternMatch> base_matches;
  if (pattern.size() >= 2) {
    SEQDET_ASSIGN_OR_RETURN(base_matches, Detect(pattern));
  }
  std::vector<ContinuationProposal> proposals;
  size_t limit = std::min(top_k, fast.size());
  SEQDET_RETURN_IF_ERROR(VerifyCandidates(
      limit,
      [&](size_t i) -> Result<ContinuationProposal> {
        if (pattern.size() == 1) {
          return VerifySingleEventCandidate(pattern.activities.back(),
                                            fast[i].activity, constraints);
        }
        return VerifyCandidate(pattern, base_matches, fast[i].activity,
                               constraints);
      },
      &proposals));
  // Line 5: only the verified topK are returned, re-ranked by their
  // accurate scores. (Mixing the unverified Fast tail back in would let
  // its optimistic upper-bound counts outrank verified candidates.)
  RankProposals(&proposals);
  return proposals;
}

}  // namespace seqdet::query
