#ifndef SEQDET_QUERY_PATTERN_PARSER_H_
#define SEQDET_QUERY_PATTERN_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "query/pattern.h"
#include "query/query_processor.h"

namespace seqdet::query {

/// A parsed textual query: the pattern plus optional time constraints.
struct ParsedQuery {
  Pattern pattern;
  DetectionConstraints constraints;
};

/// Parses the small textual pattern language used by the CLI and examples:
///
/// ```
///   query      := step ( "->" step )*  constraint*
///   step       := NAME | '"' any chars '"'
///   constraint := "within" INT        -- max first-to-last span
///               | "gap" "<=" INT      -- max gap between matched events
/// ```
///
/// Examples:
///   `search -> add_to_cart -> checkout within 3600`
///   `"Create Fine" -> "Send Fine" gap <= 86400`
///
/// Activity names are resolved against `dictionary`; unknown names fail
/// with NotFound, malformed syntax with InvalidArgument.
Result<ParsedQuery> ParsePatternQuery(
    std::string_view text, const eventlog::ActivityDictionary& dictionary);

}  // namespace seqdet::query

#endif  // SEQDET_QUERY_PATTERN_PARSER_H_
