#ifndef SEQDET_QUERY_PATTERN_PARSER_H_
#define SEQDET_QUERY_PATTERN_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "query/pattern.h"
#include "query/query_processor.h"

namespace seqdet::query {

/// A parsed textual query: the pattern plus optional time constraints.
struct ParsedQuery {
  Pattern pattern;
  DetectionConstraints constraints;
};

/// Parses the full textual pattern language (DESIGN.md §14):
///
/// ```
///   query      := template constraint* | element ( "->"? element )* constraint*
///   element    := "!"? symbol "+"?
///   symbol     := name | "(" name ( "|" name )* ")"
///   name       := NAME | '"' any chars '"'
///   template   := "response"   "(" name "," name ")"
///               | "precedence" "(" name "," name ")"
///               | "absence"    "(" name ")"
///   constraint := "within" DURATION       -- max first-to-last span
///               | "gap" "<=" DURATION     -- max gap between matched events
///   DURATION   := INT [ "s" | "m" | "h" | "d" ]
/// ```
///
/// Examples:
///   `A (B|C)+ !D E within 5m`
///   `search -> add_to_cart -> checkout within 3600`
///   `response("Create Fine", "Send Fine") gap <= 1d`
///
/// `!X+` is rejected; a pattern needs at least one positive element. The
/// "->" separators are optional and interchangeable with whitespace.
/// Quoting suspends keyword recognition, so activities literally named
/// `within` (or containing grammar punctuation) stay expressible. Activity
/// names are resolved against `dictionary`; unknown names fail with
/// NotFound, malformed syntax with InvalidArgument. Compliance templates
/// expand to the extended pattern whose matches are the rule's violation
/// witnesses (see CompliancePattern).
Result<ExtendedPattern> ParseExtendedPatternQuery(
    std::string_view text, const eventlog::ActivityDictionary& dictionary);

/// Plain-sequence subset of the language for the endpoints that are
/// defined on plain patterns only (/stats, /continue): accepts exactly the
/// queries ParseExtendedPatternQuery does *minus* disjunction, Kleene and
/// negation, and returns the time bounds as DetectionConstraints.
Result<ParsedQuery> ParsePatternQuery(
    std::string_view text, const eventlog::ActivityDictionary& dictionary);

}  // namespace seqdet::query

#endif  // SEQDET_QUERY_PATTERN_PARSER_H_
