#ifndef SEQDET_QUERY_PATTERN_H_
#define SEQDET_QUERY_PATTERN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "log/activity_dictionary.h"
#include "log/event.h"

namespace seqdet::query {

/// A query pattern: the sequence of event types <ev_1, ..., ev_p> every
/// query type of §3.2.1 takes as input.
struct Pattern {
  std::vector<eventlog::ActivityId> activities;

  Pattern() = default;
  explicit Pattern(std::vector<eventlog::ActivityId> ids)
      : activities(std::move(ids)) {}

  size_t size() const { return activities.size(); }
  bool empty() const { return activities.empty(); }

  /// Resolves activity names against `dictionary`; fails on unknown names.
  static Result<Pattern> FromNames(
      const eventlog::ActivityDictionary& dictionary,
      const std::vector<std::string>& names);

  /// Renders back to names for display.
  std::string ToString(const eventlog::ActivityDictionary& dictionary) const;

  /// The extended pattern <ev_1, ..., ev_p, next>.
  Pattern Extended(eventlog::ActivityId next) const;
};

// ---------------------------------------------------------------------------
// Extended pattern language (DESIGN.md §14)
// ---------------------------------------------------------------------------

/// One element of an extended pattern: a set of alternative event types,
/// optionally Kleene-closed or negated.
///
///   A          — one event of type A
///   (B|C)      — one event of type B or C (disjunction)
///   (B|C)+     — one or more, chained through the pair index's self pairs;
///                every repetition step must make strict temporal progress
///                (ts grows), which is what bounds the closure
///   !D         — negation: no D may occur strictly between the two
///                neighbouring positive matches (see interval rules below)
struct PatternElement {
  /// The alternative set, kept sorted ascending and deduplicated — the
  /// canonical form FromNames and the parser produce, which operator== and
  /// the round-trip property rely on.
  std::vector<eventlog::ActivityId> alternatives;
  /// Kleene plus: one *or more* consecutive occurrences. Never combined
  /// with `negated` (the parser rejects `!X+`).
  bool kleene = false;
  /// Negated elements constrain the gap between their positive neighbours
  /// instead of matching an event of their own; they contribute no
  /// timestamp to a match.
  bool negated = false;

  bool Matches(eventlog::ActivityId a) const;

  friend bool operator==(const PatternElement&, const PatternElement&) =
      default;
};

/// Time-boundary semantics (normative; pinned by extensions_test and the
/// differential oracle):
///   * `within W` (max_span): last - first <= W keeps the match — the bound
///     itself is INCLUSIVE (span == W passes, span == W+1 fails).
///   * `gap <= G` (max_gap): every adjacent pair of *matched* timestamps —
///     including consecutive events inside one Kleene chain — must satisfy
///     next - prev <= G, again INCLUSIVE.
///   * negation intervals are EXCLUSIVE (open): `A !D E` kills a match only
///     when a D exists with ts(A) < ts(D) < ts(E); a D sharing a timestamp
///     with either neighbour does not. A leading `!D A...` checks
///     ts(D) < ts(first match); a trailing `...A !D` checks
///     ts(D) > ts(last match).
struct ExtendedPattern {
  std::vector<PatternElement> elements;
  /// `within W`: inclusive bound on last - first timestamp.
  std::optional<eventlog::Timestamp> max_span;
  /// `gap <= G`: inclusive bound on every adjacent matched-timestamp gap.
  std::optional<eventlog::Timestamp> max_gap;

  size_t size() const { return elements.size(); }
  bool empty() const { return elements.empty(); }

  /// Number of non-negated elements (each contributes >= 1 timestamp).
  size_t NumPositives() const;

  /// True when the pattern uses no extended operator at all: every element
  /// is a single-alternative positive without Kleene. (Time bounds do not
  /// affect plainness — the plain engine takes them as constraints.)
  bool IsPlain() const;

  /// The plain Pattern this reduces to; only meaningful when IsPlain().
  Pattern AsPlain() const;

  /// Wraps a plain pattern into the extended representation.
  static ExtendedPattern FromPlain(const Pattern& pattern);

  /// Structural validation shared by the parser, the engine, and the
  /// oracle: at least one element, at least one positive element, no empty
  /// alternative set, and no negated Kleene.
  Status Validate() const;

  /// Canonical text form, re-parseable by ParseExtendedPatternQuery:
  /// elements separated by single spaces, alternatives in stored order,
  /// names quoted when they would not re-tokenize as a single bare word,
  /// time bounds as raw integers (`within 300 gap <= 60`).
  std::string ToString(const eventlog::ActivityDictionary& dictionary) const;

  friend bool operator==(const ExtendedPattern&, const ExtendedPattern&) =
      default;
};

/// Canned compliance-rule templates ("Temporal Compliance Rules" paper,
/// PAPERS.md). Each expands to an extended pattern whose matches are the
/// rule's VIOLATION witnesses:
///   response(A, B)   -> `A !B`  — an A never followed by any later B
///   precedence(A, B) -> `!A B`  — a B with no earlier A
///   absence(A)       -> `A`    — every occurrence of the forbidden A
enum class ComplianceRule { kResponse, kPrecedence, kAbsence };

/// Builds the violation-witness pattern for `rule` over already-resolved
/// activity ids (`second` is ignored for kAbsence).
ExtendedPattern CompliancePattern(ComplianceRule rule,
                                  eventlog::ActivityId first,
                                  eventlog::ActivityId second = 0);

}  // namespace seqdet::query

#endif  // SEQDET_QUERY_PATTERN_H_
