#ifndef SEQDET_QUERY_PATTERN_H_
#define SEQDET_QUERY_PATTERN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "log/activity_dictionary.h"
#include "log/event.h"

namespace seqdet::query {

/// A query pattern: the sequence of event types <ev_1, ..., ev_p> every
/// query type of §3.2.1 takes as input.
struct Pattern {
  std::vector<eventlog::ActivityId> activities;

  Pattern() = default;
  explicit Pattern(std::vector<eventlog::ActivityId> ids)
      : activities(std::move(ids)) {}

  size_t size() const { return activities.size(); }
  bool empty() const { return activities.empty(); }

  /// Resolves activity names against `dictionary`; fails on unknown names.
  static Result<Pattern> FromNames(
      const eventlog::ActivityDictionary& dictionary,
      const std::vector<std::string>& names);

  /// Renders back to names for display.
  std::string ToString(const eventlog::ActivityDictionary& dictionary) const;

  /// The extended pattern <ev_1, ..., ev_p, next>.
  Pattern Extended(eventlog::ActivityId next) const;
};

}  // namespace seqdet::query

#endif  // SEQDET_QUERY_PATTERN_H_
