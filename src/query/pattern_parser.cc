#include "query/pattern_parser.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <vector>

#include "common/strings.h"

namespace seqdet::query {

namespace {

struct Token {
  std::string text;
  bool quoted = false;
  /// Grammar punctuation: one of ( ) | ! + , -> <= — never an activity
  /// name unless quoted.
  bool punct = false;
};

bool IsPunctChar(char c) {
  return c == '(' || c == ')' || c == '|' || c == '!' || c == '+' || c == ',';
}

struct Tokenizer {
  std::string_view input;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < input.size() &&
           std::isspace(static_cast<unsigned char>(input[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= input.size();
  }

  /// Returns the next token: grammar punctuation, a quoted string (sans
  /// quotes, marked quoted so keywords and punctuation can be used as
  /// activity names), or a bare word.
  Result<Token> Next() {
    SkipSpace();
    if (pos >= input.size()) {
      return Status::InvalidArgument("unexpected end of query");
    }
    char c = input[pos];
    if (c == '"') {
      size_t close = input.find('"', pos + 1);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quote");
      }
      Token token{std::string(input.substr(pos + 1, close - pos - 1)), true,
                  false};
      pos = close + 1;
      return token;
    }
    if (input.substr(pos, 2) == "->" || input.substr(pos, 2) == "<=") {
      pos += 2;
      return Token{std::string(input.substr(pos - 2, 2)), false, true};
    }
    if (IsPunctChar(c)) {
      ++pos;
      return Token{std::string(1, c), false, true};
    }
    size_t start = pos;
    while (pos < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[pos])) &&
           input[pos] != '"' && !IsPunctChar(input[pos]) &&
           input.substr(pos, 2) != "->" && input.substr(pos, 2) != "<=") {
      ++pos;
    }
    if (pos == start) {
      return Status::InvalidArgument("empty token");
    }
    return Token{std::string(input.substr(start, pos - start)), false, false};
  }

  /// Peeks without consuming.
  Result<Token> Peek() {
    size_t saved = pos;
    auto token = Next();
    pos = saved;
    return token;
  }
};

bool IsKeyword(const Token& t) {
  return !t.quoted && (t.text == "within" || t.text == "gap");
}

/// Resolves an activity-name token; punctuation and keywords must be
/// quoted to act as names.
Result<eventlog::ActivityId> ResolveName(
    const Token& token, const eventlog::ActivityDictionary& dictionary) {
  if (token.punct || IsKeyword(token)) {
    return Status::InvalidArgument("expected an activity name, got '" +
                                   token.text + "'");
  }
  eventlog::ActivityId id = dictionary.Lookup(token.text);
  if (id == eventlog::kInvalidActivity) {
    return Status::NotFound("unknown activity: " + token.text);
  }
  return id;
}

/// `within` / `gap <=` bounds: a non-negative integer with an optional
/// s/m/h/d unit suffix (`5m` == 300). Inclusive semantics are the
/// evaluator's business (pattern.h); the parser just produces seconds.
Result<eventlog::Timestamp> ParseDuration(const Token& token,
                                          const char* what) {
  auto bad = [&] {
    return Status::InvalidArgument(std::string("bad '") + what +
                                   "' bound: " + token.text);
  };
  if (token.punct || token.quoted || token.text.empty()) return bad();
  std::string digits = token.text;
  int64_t multiplier = 1;
  switch (digits.back()) {
    case 's': multiplier = 1; digits.pop_back(); break;
    case 'm': multiplier = 60; digits.pop_back(); break;
    case 'h': multiplier = 3600; digits.pop_back(); break;
    case 'd': multiplier = 86400; digits.pop_back(); break;
    default: break;
  }
  int64_t value;
  if (digits.empty() || !ParseInt64(digits, &value) || value < 0) {
    return bad();
  }
  if (value > std::numeric_limits<int64_t>::max() / multiplier) {
    return bad();
  }
  return value * multiplier;
}

/// One element: `!? symbol +?` with symbol a name or a `(a|b|...)` group.
Result<PatternElement> ParseElement(Tokenizer& tokens,
                                    const eventlog::ActivityDictionary&
                                        dictionary) {
  PatternElement element;
  SEQDET_ASSIGN_OR_RETURN(Token token, tokens.Next());
  if (token.punct && token.text == "!") {
    element.negated = true;
    SEQDET_ASSIGN_OR_RETURN(token, tokens.Next());
  }
  if (token.punct && token.text == "(") {
    for (;;) {
      SEQDET_ASSIGN_OR_RETURN(Token name, tokens.Next());
      SEQDET_ASSIGN_OR_RETURN(eventlog::ActivityId id,
                              ResolveName(name, dictionary));
      element.alternatives.push_back(id);
      SEQDET_ASSIGN_OR_RETURN(Token sep, tokens.Next());
      if (sep.punct && sep.text == ")") break;
      if (!sep.punct || sep.text != "|") {
        return Status::InvalidArgument("expected '|' or ')' in group, got '" +
                                       sep.text + "'");
      }
    }
  } else {
    SEQDET_ASSIGN_OR_RETURN(eventlog::ActivityId id,
                            ResolveName(token, dictionary));
    element.alternatives.push_back(id);
  }
  if (!tokens.AtEnd()) {
    SEQDET_ASSIGN_OR_RETURN(Token suffix, tokens.Peek());
    if (suffix.punct && suffix.text == "+") {
      IgnoreStatus(tokens.Next());  // consume the '+' (cannot fail; peeked)
      element.kleene = true;
    }
  }
  if (element.negated && element.kleene) {
    return Status::InvalidArgument("a negated element cannot carry '+'");
  }
  // Canonical form: alternatives sorted and deduplicated ((A|B) == (B|A),
  // and (A|A) collapses to A).
  std::sort(element.alternatives.begin(), element.alternatives.end());
  element.alternatives.erase(
      std::unique(element.alternatives.begin(), element.alternatives.end()),
      element.alternatives.end());
  return element;
}

/// Trailing `within` / `gap <=` constraints straight into the pattern.
Status ParseConstraints(Tokenizer& tokens, ExtendedPattern* pattern) {
  while (!tokens.AtEnd()) {
    SEQDET_ASSIGN_OR_RETURN(Token keyword, tokens.Next());
    if (!keyword.quoted && keyword.text == "within") {
      SEQDET_ASSIGN_OR_RETURN(Token value, tokens.Next());
      SEQDET_ASSIGN_OR_RETURN(pattern->max_span,
                              ParseDuration(value, "within"));
    } else if (!keyword.quoted && keyword.text == "gap") {
      SEQDET_ASSIGN_OR_RETURN(Token op, tokens.Next());
      if (!op.punct || op.text != "<=") {
        return Status::InvalidArgument("expected '<=' after 'gap'");
      }
      SEQDET_ASSIGN_OR_RETURN(Token value, tokens.Next());
      SEQDET_ASSIGN_OR_RETURN(pattern->max_gap, ParseDuration(value, "gap"));
    } else {
      return Status::InvalidArgument("unknown constraint: " + keyword.text);
    }
  }
  return Status::OK();
}

/// `response(A, B)` / `precedence(A, B)` / `absence(A)` — recognized only
/// when the unquoted keyword is immediately followed by '('; otherwise the
/// word parses as an ordinary activity name.
Result<std::optional<ExtendedPattern>> TryParseTemplate(
    Tokenizer& tokens, const eventlog::ActivityDictionary& dictionary) {
  size_t saved = tokens.pos;
  auto head = tokens.Next();
  if (!head.ok() || head->quoted || head->punct) {
    tokens.pos = saved;
    return std::optional<ExtendedPattern>{};
  }
  ComplianceRule rule;
  size_t arity;
  if (head->text == "response") {
    rule = ComplianceRule::kResponse;
    arity = 2;
  } else if (head->text == "precedence") {
    rule = ComplianceRule::kPrecedence;
    arity = 2;
  } else if (head->text == "absence") {
    rule = ComplianceRule::kAbsence;
    arity = 1;
  } else {
    tokens.pos = saved;
    return std::optional<ExtendedPattern>{};
  }
  auto open = tokens.Peek();
  if (!open.ok() || !open->punct || open->text != "(") {
    tokens.pos = saved;  // e.g. an activity actually named "response"
    return std::optional<ExtendedPattern>{};
  }
  IgnoreStatus(tokens.Next());  // consume '('
  std::vector<eventlog::ActivityId> args;
  for (size_t i = 0; i < arity; ++i) {
    if (i > 0) {
      SEQDET_ASSIGN_OR_RETURN(Token comma, tokens.Next());
      if (!comma.punct || comma.text != ",") {
        return Status::InvalidArgument("expected ',' in " + head->text +
                                       "(...), got '" + comma.text + "'");
      }
    }
    SEQDET_ASSIGN_OR_RETURN(Token name, tokens.Next());
    SEQDET_ASSIGN_OR_RETURN(eventlog::ActivityId id,
                            ResolveName(name, dictionary));
    args.push_back(id);
  }
  SEQDET_ASSIGN_OR_RETURN(Token close, tokens.Next());
  if (!close.punct || close.text != ")") {
    return Status::InvalidArgument("expected ')' to close " + head->text +
                                   "(...), got '" + close.text + "'");
  }
  return std::optional<ExtendedPattern>{
      CompliancePattern(rule, args[0], arity > 1 ? args[1] : 0)};
}

}  // namespace

Result<ExtendedPattern> ParseExtendedPatternQuery(
    std::string_view text, const eventlog::ActivityDictionary& dictionary) {
  Tokenizer tokens{text};
  if (tokens.AtEnd()) {
    return Status::InvalidArgument("empty query");
  }

  SEQDET_ASSIGN_OR_RETURN(std::optional<ExtendedPattern> templ,
                          TryParseTemplate(tokens, dictionary));
  ExtendedPattern pattern;
  if (templ.has_value()) {
    pattern = *std::move(templ);
  } else {
    for (;;) {
      SEQDET_ASSIGN_OR_RETURN(PatternElement element,
                              ParseElement(tokens, dictionary));
      pattern.elements.push_back(std::move(element));
      if (tokens.AtEnd()) break;
      SEQDET_ASSIGN_OR_RETURN(Token next, tokens.Peek());
      if (IsKeyword(next)) break;  // constraints begin
      if (next.punct && next.text == "->") {
        IgnoreStatus(tokens.Next());  // consume (cannot fail; peeked)
        // A dangling arrow falls through to ParseElement, which reports
        // "unexpected end of query".
      }
    }
  }
  SEQDET_RETURN_IF_ERROR(ParseConstraints(tokens, &pattern));
  SEQDET_RETURN_IF_ERROR(pattern.Validate());
  return pattern;
}

Result<ParsedQuery> ParsePatternQuery(
    std::string_view text, const eventlog::ActivityDictionary& dictionary) {
  SEQDET_ASSIGN_OR_RETURN(ExtendedPattern extended,
                          ParseExtendedPatternQuery(text, dictionary));
  if (!extended.IsPlain()) {
    return Status::InvalidArgument(
        "extended operators (|, +, !) are only supported by detection "
        "queries; this endpoint takes a plain sequence");
  }
  ParsedQuery query;
  query.pattern = extended.AsPlain();
  query.constraints.max_span = extended.max_span;
  query.constraints.max_gap = extended.max_gap;
  return query;
}

}  // namespace seqdet::query
