#include "query/pattern_parser.h"

#include <cctype>
#include <vector>

#include "common/strings.h"

namespace seqdet::query {

namespace {

struct Token {
  std::string text;
  bool quoted = false;
};

struct Tokenizer {
  std::string_view input;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < input.size() &&
           std::isspace(static_cast<unsigned char>(input[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= input.size();
  }

  /// Returns the next token: an arrow, a comparison, a quoted string (sans
  /// quotes, marked quoted so keywords can be used as activity names), a
  /// number, or a bare word.
  Result<Token> Next() {
    SkipSpace();
    if (pos >= input.size()) {
      return Status::InvalidArgument("unexpected end of query");
    }
    char c = input[pos];
    if (c == '"') {
      size_t close = input.find('"', pos + 1);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quote");
      }
      Token token{std::string(input.substr(pos + 1, close - pos - 1)), true};
      pos = close + 1;
      return token;
    }
    if (input.substr(pos, 2) == "->" || input.substr(pos, 2) == "<=") {
      pos += 2;
      return Token{std::string(input.substr(pos - 2, 2)), false};
    }
    size_t start = pos;
    while (pos < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[pos])) &&
           input.substr(pos, 2) != "->" && input.substr(pos, 2) != "<=") {
      ++pos;
    }
    if (pos == start) {
      return Status::InvalidArgument("empty token");
    }
    return Token{std::string(input.substr(start, pos - start)), false};
  }

  /// Peeks without consuming.
  Result<Token> Peek() {
    size_t saved = pos;
    auto token = Next();
    pos = saved;
    return token;
  }
};

}  // namespace

Result<ParsedQuery> ParsePatternQuery(
    std::string_view text, const eventlog::ActivityDictionary& dictionary) {
  Tokenizer tokens{text};
  ParsedQuery query;

  // Steps: name ("->" name)*. Quoting suspends keyword recognition, so
  // activities literally named "within" or "gap" stay expressible.
  for (;;) {
    SEQDET_ASSIGN_OR_RETURN(Token name, tokens.Next());
    if (!name.quoted &&
        (name.text == "->" || name.text == "<=" || name.text == "within" ||
         name.text == "gap")) {
      return Status::InvalidArgument("expected an activity name, got '" +
                                     name.text + "'");
    }
    eventlog::ActivityId id = dictionary.Lookup(name.text);
    if (id == eventlog::kInvalidActivity) {
      return Status::NotFound("unknown activity: " + name.text);
    }
    query.pattern.activities.push_back(id);

    if (tokens.AtEnd()) return query;
    auto peeked = tokens.Peek();
    if (!peeked.ok()) return peeked.status();
    if (peeked->quoted || peeked->text != "->") break;
    IgnoreStatus(tokens.Next());  // consume the arrow (cannot fail; peeked)
  }

  // Constraints.
  while (!tokens.AtEnd()) {
    SEQDET_ASSIGN_OR_RETURN(Token keyword, tokens.Next());
    if (keyword.text == "within") {
      SEQDET_ASSIGN_OR_RETURN(Token value, tokens.Next());
      int64_t span;
      if (!ParseInt64(value.text, &span) || span < 0) {
        return Status::InvalidArgument("bad 'within' bound: " + value.text);
      }
      query.constraints.max_span = span;
    } else if (keyword.text == "gap") {
      SEQDET_ASSIGN_OR_RETURN(Token op, tokens.Next());
      if (op.text != "<=") {
        return Status::InvalidArgument("expected '<=' after 'gap'");
      }
      SEQDET_ASSIGN_OR_RETURN(Token value, tokens.Next());
      int64_t gap;
      if (!ParseInt64(value.text, &gap) || gap < 0) {
        return Status::InvalidArgument("bad gap bound: " + value.text);
      }
      query.constraints.max_gap = gap;
    } else {
      return Status::InvalidArgument("unknown constraint: " + keyword.text);
    }
  }
  return query;
}

}  // namespace seqdet::query
