#ifndef SEQDET_QUERY_QUERY_PROCESSOR_H_
#define SEQDET_QUERY_QUERY_PROCESSOR_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/inline_vector.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/sequence_index.h"
#include "query/pattern.h"

namespace seqdet::query {

/// One detected occurrence of a pattern: the trace and the timestamp of
/// each matched event (so callers get start/end times for free, §3.2.1).
/// Timestamps live inline for patterns of up to 8 events — materializing
/// the tens of thousands of matches a hot pair produces costs no heap
/// allocations (longer patterns spill transparently).
struct PatternMatch {
  eventlog::TraceId trace = 0;
  InlineVector<eventlog::Timestamp, 8> timestamps;

  friend bool operator==(const PatternMatch&, const PatternMatch&) = default;
};

/// Statistics-query output for one consecutive pair of the pattern.
struct PairStatisticsRow {
  index::EventTypePair pair;
  uint64_t total_completions = 0;
  double average_duration = 0;
  /// The integer duration sum average_duration derives from — the
  /// associative form a shard router needs to merge rows exactly
  /// (DESIGN.md §15).
  int64_t sum_duration = 0;
  /// Timestamp of the pair's most recent indexed completion across all
  /// traces (from LastChecked, §3.2.1); absent unless requested or never
  /// completed.
  std::optional<eventlog::Timestamp> last_completion;
};

/// Knobs for the Statistics query.
struct StatisticsOptions {
  /// Also retrieve each pair's most recent completion timestamp. Costs one
  /// LastChecked range scan per pair.
  bool include_last_completion = false;
};

/// Optional constraints for detection queries (a practical extension the
/// paper's time-aware queries motivate).
struct DetectionConstraints {
  /// Max time between consecutive matched events.
  std::optional<eventlog::Timestamp> max_gap;
  /// Max time between the first and the last matched event.
  std::optional<eventlog::Timestamp> max_span;
  /// Cooperative cancellation budget: Detect/DetectBatch poll it between
  /// posting scans and inside long pair joins, returning Status::Aborted
  /// once expired. Default: never expires. Serving deadlines come from
  /// here (QueryService turns the per-request budget into this field).
  Deadline deadline;
};

/// Output of the Statistics query: pairwise rows plus the derived
/// whole-pattern insights §3.2.1 describes.
struct StatisticsResult {
  std::vector<PairStatisticsRow> pairs;
  /// Upper bound on whole-pattern completions (min over pair completions).
  uint64_t completions_upper_bound = 0;
  /// Estimate of the whole-pattern duration (sum of pair avg durations).
  double estimated_duration = 0;
};

/// One ranked pattern-continuation candidate.
struct ContinuationProposal {
  eventlog::ActivityId activity = 0;
  uint64_t total_completions = 0;
  double average_duration = 0;
  /// Equation 1: total_completions / average_duration.
  double score = 0;
  /// The integer gap sum average_duration was derived from (0 when the
  /// producing path only had averages, e.g. the insert-in-the-middle
  /// heuristic). The shard router merges this instead of the double:
  /// integer sums are associative across shards, re-dividing reproduces
  /// the single-process average bit-for-bit (DESIGN.md §15).
  int64_t sum_duration = 0;
};

/// Optional constraint for the Accurate continuation (Algorithm 3 line 7):
/// only count completions whose gap between ev_p and the appended event is
/// at most `max_gap`.
struct ContinuationConstraints {
  std::optional<eventlog::Timestamp> max_gap;
};

/// Tuning knobs of the morsel-driven intra-query execution engine (used
/// only when the processor is given a ThreadPool). Defaults are production
/// values; tests shrink the thresholds to force many morsels over tiny
/// logs. Whatever the values, parallel execution returns byte-identical
/// match vectors to the serial path (see DESIGN.md §13 for the argument).
struct ParallelExecutionOptions {
  /// Target postings per join morsel: every ExtendMatches merge join over a
  /// (trace, ts)-sorted input is split into contiguous trace-aligned ranges
  /// of roughly this many postings, run on the pool, and concatenated in
  /// morsel order.
  size_t morsel_target_postings = 128u << 10;
  /// Minimum total join input (postings + surviving matches) before a join
  /// is morselized at all; below it the fork/join overhead exceeds the win.
  size_t min_parallel_join_input = 32u << 10;
  /// Minimum continuation-candidate count before verification fans out.
  size_t min_parallel_candidates = 2;
};

/// The query-processor component of Figure 1. All queries run against a
/// SequenceIndex; none touches the raw log.
///
/// Intra-query parallelism: constructed with a ThreadPool, a single query
/// fans out three ways — all pair posting lists are fetched/decoded
/// concurrently on entry, each pair join runs as trace-partitioned morsels,
/// and continuation candidates are verified concurrently. Parallel and
/// serial execution return byte-identical results; a null pool (the
/// default) is the serial engine. The pool may be shared with other
/// processors and with DetectBatch — nested fan-outs run inline (see
/// ThreadPool::ParallelFor).
class QueryProcessor {
 public:
  explicit QueryProcessor(const index::SequenceIndex* index,
                          ThreadPool* pool = nullptr,
                          const ParallelExecutionOptions& parallel = {})
      : index_(index), pool_(pool), parallel_(parallel) {}

  /// Statistics query: per consecutive pair, completions and average
  /// duration from the Count table; plus whole-pattern bounds.
  Result<StatisticsResult> Statistics(
      const Pattern& pattern, const StatisticsOptions& options = {}) const;

  /// Pattern detection (Algorithm 2): every trace occurrence of `pattern`
  /// under the index's policy. Patterns need >= 2 events (the index is
  /// pair-based).
  Result<std::vector<PatternMatch>> Detect(
      const Pattern& pattern,
      const DetectionConstraints& constraints = {}) const;

  /// Extended-operator detection (DESIGN.md §14): expands disjunctions and
  /// Kleene+ into a positive pair-join skeleton over the index — merged
  /// alternative-pair posting lists run through the same (morsel-parallel)
  /// join kernel Detect uses — then post-verifies negation intervals and
  /// time windows per candidate match.
  ///
  /// Contract:
  ///  * a plain pattern (>= 2 single-alternative positives, no operators)
  ///    delegates to Detect unchanged — identical join plan, identical
  ///    result order;
  ///  * patterns that use extended operators return their matches
  ///    deduplicated and sorted by (trace, timestamps) — distinct Kleene
  ///    depth splits can assemble the same timestamp vector;
  ///  * time bounds embedded in the pattern (`within`/`gap <=`) combine
  ///    with `constraints` — the tighter bound wins; both are inclusive
  ///    (pattern.h);
  ///  * single-positive-element skeletons (compliance templates) and
  ///    negation checks replay Seq-table sequences, so they are
  ///    Unsupported when the index runs without the Seq table.
  Result<std::vector<PatternMatch>> DetectExtended(
      const ExtendedPattern& pattern,
      const DetectionConstraints& constraints = {}) const;

  /// Accurate continuation (Algorithm 3): every candidate continuation is
  /// verified with a full detection of the extended pattern.
  Result<std::vector<ContinuationProposal>> ContinueAccurate(
      const Pattern& pattern,
      const ContinuationConstraints& constraints = {}) const;

  /// Algorithm 3 exactly as printed: getCompletions(tempPattern) re-runs
  /// the full detection for every candidate, so the cost is
  /// |candidates| x Detect(p+1). ContinueAccurate computes the base
  /// matches once and joins each candidate's single extra pair instead —
  /// same results, and the ablation bench quantifies the gap.
  Result<std::vector<ContinuationProposal>> ContinueAccurateNaive(
      const Pattern& pattern,
      const ContinuationConstraints& constraints = {}) const;

  /// Fast continuation (Algorithm 4): pure Count-table heuristic; the
  /// completion count is the min of the pattern's pairwise upper bound and
  /// the candidate pair's count.
  Result<std::vector<ContinuationProposal>> ContinueFast(
      const Pattern& pattern) const;

  /// Hybrid continuation (Algorithm 5): Fast ranking, then Accurate
  /// verification of the topK candidates; only the verified candidates are
  /// returned, re-ranked by their accurate scores. topK = 0 degenerates to
  /// Fast (the full heuristic list); topK >= |A| to Accurate.
  Result<std::vector<ContinuationProposal>> ContinueHybrid(
      const Pattern& pattern, size_t top_k,
      const ContinuationConstraints& constraints = {}) const;

  /// Evaluates many detection queries, optionally in parallel on `pool`
  /// (reads are lock-free against a quiescent index, so this scales with
  /// cores). A null `pool` falls back to the processor's own pool, so a
  /// parallel processor fans the batch out by default; per-query intra-
  /// query fan-outs then run inline on the batch workers. Result i
  /// corresponds to patterns[i]; a failed query yields an empty result and
  /// the first error is returned.
  Result<std::vector<std::vector<PatternMatch>>> DetectBatch(
      const std::vector<Pattern>& patterns, ThreadPool* pool = nullptr,
      const DetectionConstraints& constraints = {}) const;

  /// Drill-down: detects `pattern` inside one stored trace by replaying
  /// its Seq-table sequence. Unlike Detect this uses *whole-pattern*
  /// semantics (SC: all windows; STNM: greedy non-overlapping), so it can
  /// also verify Algorithm 2 results. Requires the Seq table; STAM is
  /// unsupported (enumeration can be exponential — use Detect).
  Result<std::vector<PatternMatch>> DetectInTrace(
      eventlog::TraceId trace, const Pattern& pattern) const;

  /// §7 extension — continuation "at arbitrary places in the query
  /// pattern": proposes events to insert between pattern[gap_index-1] and
  /// pattern[gap_index]. gap_index = pattern.size() appends at the end
  /// (== ContinueAccurate). Candidates are events that both follow the
  /// left neighbour and precede the right neighbour (Count ∩ ReverseCount);
  /// each is verified with a full detection of the spliced pattern.
  Result<std::vector<ContinuationProposal>> ContinueInsertAccurate(
      const Pattern& pattern, size_t gap_index,
      const ContinuationConstraints& constraints = {}) const;

  /// Heuristic flavor of ContinueInsertAccurate: pairwise Count bounds
  /// only, no detection.
  Result<std::vector<ContinuationProposal>> ContinueInsertFast(
      const Pattern& pattern, size_t gap_index) const;

  const index::SequenceIndex* index() const { return index_; }

  /// The intra-query execution pool (null = serial engine).
  ThreadPool* pool() const { return pool_; }

  /// Scores + sorts proposals by Equation 1 (descending; ties broken by
  /// activity id, making the order a deterministic total order). Public
  /// because the shard router re-ranks merged per-shard aggregates with
  /// exactly this code — any drift would break its byte-identity
  /// guarantee.
  static void RankProposals(std::vector<ContinuationProposal>* proposals);

 private:
  /// Joins `matches` with the postings of (last pattern event, next):
  /// keeps matches whose last event is the first component of a posting,
  /// extended by the posting's second timestamp (the Algorithm 2 step).
  /// Takes `matches` by value so the common single-continuation case can
  /// move each surviving match into its extension; pass std::move when the
  /// input is no longer needed. `postings` must be sorted by
  /// (trace, ts_first) — what GetPairPostingsShared returns. Polls
  /// `deadline` every few thousand joined matches and aborts the join —
  /// the cancellation point that keeps one huge pair join from blowing a
  /// serving deadline. Runs as trace-partitioned morsels on the
  /// processor's pool when the join is large enough.
  Result<std::vector<PatternMatch>> ExtendMatches(
      std::vector<PatternMatch> matches,
      const std::vector<index::PairOccurrence>& postings,
      const Deadline& deadline = Deadline::Never()) const;

  /// Runs `verify(i)` for every candidate index in [0, n) — concurrently on
  /// the pool when there are enough candidates (each verification is an
  /// independent index read) — storing result i into (*proposals)[i].
  /// Failures keep candidate order: the lowest-index error is returned,
  /// matching what the serial loop would have reported first.
  Status VerifyCandidates(
      size_t n,
      const std::function<Result<ContinuationProposal>(size_t)>& verify,
      std::vector<ContinuationProposal>* proposals) const;

  /// Accurate verification of a single candidate given the precomputed
  /// base-pattern matches (the "incremental" advantage of §5.4.2: the base
  /// pattern is not re-detected per candidate).
  Result<ContinuationProposal> VerifyCandidate(
      const Pattern& pattern, const std::vector<PatternMatch>& base_matches,
      eventlog::ActivityId candidate,
      const ContinuationConstraints& constraints) const;

  /// Accurate verification for a single-event base pattern: the postings of
  /// (base, candidate) are themselves the completions.
  Result<ContinuationProposal> VerifySingleEventCandidate(
      eventlog::ActivityId base, eventlog::ActivityId candidate,
      const ContinuationConstraints& constraints) const;

  const index::SequenceIndex* index_;
  ThreadPool* pool_;
  ParallelExecutionOptions parallel_;
};

}  // namespace seqdet::query

#endif  // SEQDET_QUERY_QUERY_PROCESSOR_H_
