#include "query/pattern.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace seqdet::query {

Result<Pattern> Pattern::FromNames(
    const eventlog::ActivityDictionary& dictionary,
    const std::vector<std::string>& names) {
  Pattern pattern;
  pattern.activities.reserve(names.size());
  for (const std::string& name : names) {
    eventlog::ActivityId id = dictionary.Lookup(name);
    if (id == eventlog::kInvalidActivity) {
      return Status::NotFound("unknown activity: " + name);
    }
    pattern.activities.push_back(id);
  }
  return pattern;
}

std::string Pattern::ToString(
    const eventlog::ActivityDictionary& dictionary) const {
  std::string out = "<";
  for (size_t i = 0; i < activities.size(); ++i) {
    if (i) out += ", ";
    out += dictionary.Name(activities[i]);
  }
  out += ">";
  return out;
}

Pattern Pattern::Extended(eventlog::ActivityId next) const {
  Pattern out = *this;
  out.activities.push_back(next);
  return out;
}

bool PatternElement::Matches(eventlog::ActivityId a) const {
  return std::binary_search(alternatives.begin(), alternatives.end(), a);
}

size_t ExtendedPattern::NumPositives() const {
  size_t n = 0;
  for (const PatternElement& e : elements) {
    if (!e.negated) ++n;
  }
  return n;
}

bool ExtendedPattern::IsPlain() const {
  for (const PatternElement& e : elements) {
    if (e.negated || e.kleene || e.alternatives.size() != 1) return false;
  }
  return true;
}

Pattern ExtendedPattern::AsPlain() const {
  Pattern out;
  out.activities.reserve(elements.size());
  for (const PatternElement& e : elements) {
    out.activities.push_back(e.alternatives.front());
  }
  return out;
}

ExtendedPattern ExtendedPattern::FromPlain(const Pattern& pattern) {
  ExtendedPattern out;
  out.elements.reserve(pattern.size());
  for (eventlog::ActivityId id : pattern.activities) {
    out.elements.push_back(PatternElement{{id}, false, false});
  }
  return out;
}

Status ExtendedPattern::Validate() const {
  if (elements.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  size_t positives = 0;
  for (const PatternElement& e : elements) {
    if (e.alternatives.empty()) {
      return Status::InvalidArgument("pattern element with no alternatives");
    }
    if (e.negated && e.kleene) {
      return Status::InvalidArgument("a negated element cannot carry '+'");
    }
    if (!e.negated) ++positives;
  }
  if (positives == 0) {
    return Status::InvalidArgument(
        "pattern needs at least one positive (non-negated) element");
  }
  if ((max_span && *max_span < 0) || (max_gap && *max_gap < 0)) {
    return Status::InvalidArgument("negative time bound");
  }
  return Status::OK();
}

namespace {

/// True when `name` would not survive the extended tokenizer as one bare
/// word: empty, contains whitespace / grammar punctuation / a two-char
/// operator, or collides with a keyword. Names containing '"' itself are
/// unrepresentable (the quote syntax has no escapes) — callers control
/// dictionary contents.
bool NeedsQuoting(const std::string& name) {
  if (name.empty()) return true;
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) return true;
    if (c == '(' || c == ')' || c == '|' || c == '!' || c == '+' ||
        c == ',' || c == '"') {
      return true;
    }
  }
  if (name.find("->") != std::string::npos ||
      name.find("<=") != std::string::npos) {
    return true;
  }
  return name == "within" || name == "gap" || name == "response" ||
         name == "precedence" || name == "absence";
}

void AppendName(const eventlog::ActivityDictionary& dictionary,
                eventlog::ActivityId id, std::string* out) {
  std::string name(dictionary.Name(id));
  if (NeedsQuoting(name)) {
    out->push_back('"');
    out->append(name);
    out->push_back('"');
  } else {
    out->append(name);
  }
}

}  // namespace

std::string ExtendedPattern::ToString(
    const eventlog::ActivityDictionary& dictionary) const {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    const PatternElement& e = elements[i];
    if (i) out.push_back(' ');
    if (e.negated) out.push_back('!');
    if (e.alternatives.size() > 1) {
      out.push_back('(');
      for (size_t a = 0; a < e.alternatives.size(); ++a) {
        if (a) out.push_back('|');
        AppendName(dictionary, e.alternatives[a], &out);
      }
      out.push_back(')');
    } else if (!e.alternatives.empty()) {
      AppendName(dictionary, e.alternatives.front(), &out);
    }
    if (e.kleene) out.push_back('+');
  }
  if (max_span) {
    out += " within ";
    out += std::to_string(*max_span);
  }
  if (max_gap) {
    out += " gap <= ";
    out += std::to_string(*max_gap);
  }
  return out;
}

ExtendedPattern CompliancePattern(ComplianceRule rule,
                                  eventlog::ActivityId first,
                                  eventlog::ActivityId second) {
  ExtendedPattern out;
  switch (rule) {
    case ComplianceRule::kResponse:
      // A with no later B.
      out.elements.push_back(PatternElement{{first}, false, false});
      out.elements.push_back(PatternElement{{second}, false, true});
      break;
    case ComplianceRule::kPrecedence:
      // B with no earlier A.
      out.elements.push_back(PatternElement{{first}, false, true});
      out.elements.push_back(PatternElement{{second}, false, false});
      break;
    case ComplianceRule::kAbsence:
      out.elements.push_back(PatternElement{{first}, false, false});
      break;
  }
  return out;
}

}  // namespace seqdet::query
