#include "query/pattern.h"

namespace seqdet::query {

Result<Pattern> Pattern::FromNames(
    const eventlog::ActivityDictionary& dictionary,
    const std::vector<std::string>& names) {
  Pattern pattern;
  pattern.activities.reserve(names.size());
  for (const std::string& name : names) {
    eventlog::ActivityId id = dictionary.Lookup(name);
    if (id == eventlog::kInvalidActivity) {
      return Status::NotFound("unknown activity: " + name);
    }
    pattern.activities.push_back(id);
  }
  return pattern;
}

std::string Pattern::ToString(
    const eventlog::ActivityDictionary& dictionary) const {
  std::string out = "<";
  for (size_t i = 0; i < activities.size(); ++i) {
    if (i) out += ", ";
    out += dictionary.Name(activities[i]);
  }
  out += ">";
  return out;
}

Pattern Pattern::Extended(eventlog::ActivityId next) const {
  Pattern out = *this;
  out.activities.push_back(next);
  return out;
}

}  // namespace seqdet::query
