#ifndef SEQDET_SERVER_QUERY_SERVICE_H_
#define SEQDET_SERVER_QUERY_SERVICE_H_

#include "index/sequence_index.h"
#include "query/query_processor.h"
#include "server/http_server.h"

namespace seqdet::server {

/// The query-processor service of Figure 1 (the paper deploys it as a Java
/// Spring application): JSON-over-HTTP endpoints in front of a
/// SequenceIndex.
///
/// Endpoints (all GET, pattern expressions use the textual language of
/// query/pattern_parser.h, URL-encoded in `q`):
///   /health                               liveness probe
///   /info                                 policy, periods, activity count,
///                                         posting format, read-cache
///                                         counters, decode counters
///                                         (read_stats) and maintenance
///                                         service stats (folds run, bytes
///                                         rewritten, queue depth, errors)
///   /detect?q=A->B[&limit=N]              pattern detection
///   /stats?q=A->B[&last=1]                pairwise statistics
///   /continue?q=A->B&mode=accurate|fast|hybrid[&topk=K][&limit=N]
///
/// The service borrows the index; both must outlive the HttpServer.
class QueryService {
 public:
  explicit QueryService(const index::SequenceIndex* index)
      : index_(index), qp_(index) {}

  /// Registers every endpoint on `server`.
  void RegisterRoutes(HttpServer* server);

 private:
  HttpResponse HandleHealth(const HttpRequest& request) const;
  HttpResponse HandleInfo(const HttpRequest& request) const;
  HttpResponse HandleDetect(const HttpRequest& request) const;
  HttpResponse HandleStats(const HttpRequest& request) const;
  HttpResponse HandleContinue(const HttpRequest& request) const;

  const index::SequenceIndex* index_;
  query::QueryProcessor qp_;
};

}  // namespace seqdet::server

#endif  // SEQDET_SERVER_QUERY_SERVICE_H_
