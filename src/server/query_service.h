#ifndef SEQDET_SERVER_QUERY_SERVICE_H_
#define SEQDET_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/sequence_index.h"
#include "query/query_processor.h"
#include "server/http_server.h"

namespace seqdet::server {

/// Admission-control and deadline knobs of the serving front end.
struct ServingOptions {
  /// Max query-route requests (detect/stats/continue) executing at once;
  /// excess requests are shed immediately with 503 + Retry-After instead
  /// of queueing behind a pile they would time out in anyway. 0 = off.
  size_t max_inflight = 64;
  /// Deadline budget applied to every query request that does not carry
  /// its own `deadline_ms` parameter. 0 = no implicit deadline.
  int64_t default_deadline_ms = 0;
  /// Upper clamp on client-supplied `deadline_ms`.
  int64_t max_deadline_ms = 600000;
  /// Value of the Retry-After header on shed (503) responses.
  int64_t retry_after_seconds = 1;
  /// Also register /debug/sleep?ms=N — a handler that holds a gated slot
  /// asleep. Only the tests and bench_serving set this; it makes overload
  /// and drain behavior deterministic to provoke.
  bool debug_routes = false;
  /// Workers of the intra-query execution pool shared by every request:
  /// posting prefetch, morselized pair joins, and parallel continuation
  /// verification all fan out on it (see QueryProcessor). 0 or 1 = the
  /// serial engine (no pool is created).
  size_t query_threads = 0;
};

/// Point-in-time serving counters for one route.
struct RouteStatsSnapshot {
  std::string route;
  uint64_t requests = 0;           // admitted or not, every arrival counts
  uint64_t shed = 0;               // rejected by admission control (503)
  uint64_t deadline_exceeded = 0;  // cancelled by the deadline budget (504)
  uint64_t errors = 0;             // 5xx from the handler itself
  int64_t inflight = 0;            // executing right now (gauge)
  uint64_t latency_samples = 0;    // size of the percentile window
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;               // max within the window
};

/// Point-in-time serving counters for the whole service.
struct ServingStatsSnapshot {
  size_t max_inflight = 0;
  int64_t default_deadline_ms = 0;
  int64_t inflight = 0;     // gated requests executing now (gauge)
  uint64_t shed_total = 0;  // all-route 503 count
  std::vector<RouteStatsSnapshot> routes;
};

/// The query-processor service of Figure 1 (the paper deploys it as a Java
/// Spring application): JSON-over-HTTP endpoints in front of a
/// SequenceIndex, with an admission-control front end — a bounded
/// in-flight budget that sheds overload with 503 + Retry-After, and
/// per-request deadline budgets that cooperatively cancel long joins in
/// QueryProcessor::Detect (the request returns 504 within roughly one
/// posting-scan chunk of the budget).
///
/// Endpoints (all GET, pattern expressions use the textual language of
/// query/pattern_parser.h, URL-encoded in `q`):
///   /health                               liveness probe (never gated)
///   /info                                 policy, periods, activity count,
///                                         posting format, read-cache /
///                                         decode / maintenance stats, and
///                                         the serving stats (per-route
///                                         requests, in-flight, shed,
///                                         timeouts, p50/p99 latency,
///                                         HTTP-layer counters)
///   /detect?q=A->B[&limit=N][&deadline_ms=N]   pattern detection
///   /stats?q=A->B[&last=1]                pairwise statistics
///   /continue?q=A->B&mode=accurate|fast|hybrid[&topk=K][&limit=N]
///
/// /stats and /continue additionally accept `raw=1` — the shard-internal
/// wire format of the scatter-gather router (shard_router.h): the same
/// aggregates as integer sums (completions, duration sums, activity ids)
/// instead of derived doubles, unlimited, so N such responses merge
/// associatively and the router can recompute every double exactly as the
/// single process would have. Not a public API; its shape may change with
/// the router.
///
/// The service borrows the index; both must outlive the HttpServer.
class QueryService {
 public:
  explicit QueryService(const index::SequenceIndex* index,
                        ServingOptions options = {});

  /// Registers every endpoint on `server` (also the source of the
  /// HTTP-layer counters /info reports).
  void RegisterRoutes(HttpServer* server);

  const ServingOptions& serving_options() const { return options_; }

  /// Snapshot of the admission/latency counters of every route.
  ServingStatsSnapshot serving_stats() const;

  /// The intra-query execution pool (null when query_threads <= 1).
  const ThreadPool* query_pool() const { return query_pool_.get(); }

 private:
  /// Bounded-memory latency/err accounting for one route. The percentile
  /// window keeps the most recent kLatencyWindow samples (common/histogram
  /// computes the percentiles over that window at snapshot time), so a
  /// long-lived server's stats stay O(1) in memory.
  struct RouteStats {
    explicit RouteStats(std::string name) : route(std::move(name)) {}

    void RecordLatency(double ms) REQUIRES(!mu);
    RouteStatsSnapshot Snapshot() const REQUIRES(!mu);

    const std::string route;
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> deadline_exceeded{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<int64_t> inflight{0};

    /// Leaf lock (common/sync.h map): held only for the window write /
    /// copy; never across the handler or any other acquisition.
    mutable Mutex mu;
    std::vector<double> latency_window GUARDED_BY(mu);  // newest overwrite
    size_t window_next GUARDED_BY(mu) = 0;
  };
  static constexpr size_t kLatencyWindow = 8192;

  using DeadlineHandler =
      std::function<HttpResponse(const HttpRequest&, const Deadline&)>;

  /// The admission/deadline/stats wrapper every route goes through.
  /// `gated` routes consume an in-flight slot and may be shed.
  HttpResponse Dispatch(RouteStats* stats, bool gated, const HttpRequest& r,
                        const DeadlineHandler& handler);

  /// The request's deadline budget: `deadline_ms` parameter (clamped to
  /// max_deadline_ms) or the service default; Never() when both are 0.
  Deadline RequestDeadline(const HttpRequest& request) const;

  HttpResponse HandleHealth(const HttpRequest& request) const;
  HttpResponse HandleInfo(const HttpRequest& request) const;
  HttpResponse HandleDetect(const HttpRequest& request,
                            const Deadline& deadline) const;
  HttpResponse HandleStats(const HttpRequest& request) const;
  HttpResponse HandleContinue(const HttpRequest& request) const;
  HttpResponse HandleDebugSleep(const HttpRequest& request,
                                const Deadline& deadline) const;

  const index::SequenceIndex* index_;
  /// Intra-query execution pool (null = serial engine). Declared before
  /// qp_, which borrows it for its whole lifetime.
  std::unique_ptr<ThreadPool> query_pool_;
  query::QueryProcessor qp_;
  ServingOptions options_;
  HttpServer* server_ = nullptr;  // set by RegisterRoutes, for /info

  std::atomic<int64_t> inflight_{0};  // across all gated routes
  RouteStats health_stats_{"/health"};
  RouteStats info_stats_{"/info"};
  RouteStats detect_stats_{"/detect"};
  RouteStats pair_stats_stats_{"/stats"};
  RouteStats continue_stats_{"/continue"};
  RouteStats sleep_stats_{"/debug/sleep"};
};

/// Serializes Detect results exactly as /detect responds. Shared with the
/// differential harness so its byte-identical HTTP-vs-in-process assertion
/// and the live handler can never drift apart.
std::string DetectResponseJson(const std::vector<query::PatternMatch>& matches,
                               size_t limit);

/// Same serialization with an explicit `total` — the shard router's merge
/// holds only the limit-truncated union of per-shard matches but knows the
/// exact global total (shard totals are pre-limit and sum). The two-arg
/// overload above is total = matches.size().
std::string DetectResponseJson(int64_t total,
                               const std::vector<query::PatternMatch>& matches,
                               size_t limit);

/// One /stats response row with its activity names resolved. The single
/// process resolves names through its dictionary; the router takes them
/// from the shard rows — either way the serialized bytes go through
/// StatsResponseJson below, which is what makes router output and
/// single-process output byte-identical by construction.
struct StatsRowView {
  std::string first;
  std::string second;
  uint64_t completions = 0;
  double avg_duration = 0;
  std::optional<eventlog::Timestamp> last_completion;
};

/// Serializes /stats exactly as the single-process handler responds.
std::string StatsResponseJson(const std::vector<StatsRowView>& rows,
                              uint64_t completions_upper_bound,
                              double estimated_duration);

/// One /continue proposal with its activity name resolved.
struct ProposalView {
  std::string activity;
  uint64_t completions = 0;
  double avg_duration = 0;
  double score = 0;
};

/// Serializes /continue exactly as the single-process handler responds.
std::string ContinueResponseJson(const std::vector<ProposalView>& proposals,
                                 size_t limit);

}  // namespace seqdet::server

#endif  // SEQDET_SERVER_QUERY_SERVICE_H_
