#ifndef SEQDET_SERVER_HTTP_CLIENT_H_
#define SEQDET_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace seqdet::server {

/// Minimal blocking HTTP/1.1 keep-alive client for 127.0.0.1 — the load
/// generator of bench_serving, the transport of the server tests and the
/// HTTP differential mode, and `seqdet info --port`'s way of asking a live
/// server for its stats. One in-flight request at a time per client; the
/// connection persists across Get() calls and transparently reconnects when
/// the server closed it (keep-alive limit, drain, restart).
class HttpClient {
 public:
  struct Response {
    int status = 0;
    std::map<std::string, std::string> headers;  // keys lowercased
    std::string body;
  };

  explicit HttpClient(uint16_t port) : port_(port) {}
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// GETs `target` (path + query string, already percent-encoded).
  Result<Response> Get(const std::string& target);

  /// Drops the persistent connection (the next Get reconnects).
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// Percent-encodes one URL query-string value.
  static std::string UrlEncode(std::string_view s);

 private:
  Status Connect();
  Status SendRequest(const std::string& target);
  Result<Response> ReadResponse();

  uint16_t port_;
  int fd_ = -1;
  std::string buffer_;  // bytes received past the previous response
};

}  // namespace seqdet::server

#endif  // SEQDET_SERVER_HTTP_CLIENT_H_
