#ifndef SEQDET_SERVER_HTTP_CLIENT_H_
#define SEQDET_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/unique_fd.h"

namespace seqdet::server {

/// Minimal blocking HTTP/1.1 keep-alive client — the load generator of
/// bench_serving, the transport of the server tests and the HTTP
/// differential mode, `seqdet info --port`'s way of asking a live server
/// for its stats, and the scatter leg of the shard router. One in-flight
/// request at a time per client; the connection persists across Get()
/// calls and transparently reconnects when the server closed it
/// (keep-alive limit, drain, restart).
///
/// Hosts are numeric IPv4 ("127.0.0.1", "10.0.0.7") or "localhost"; there
/// is deliberately no resolver — every deployment this serves is
/// loopback or an explicit shard list.
class HttpClient {
 public:
  struct Response {
    int status = 0;
    std::map<std::string, std::string> headers;  // keys lowercased
    std::string body;
  };

  /// Transport knobs. Zero means "block forever" — the historical
  /// behavior, still right for tests and the CLI; the router always sets
  /// both, since a hung worker must cost a bounded slice of the request
  /// deadline, never a stuck thread.
  struct Options {
    int64_t connect_timeout_ms = 0;  // non-blocking connect + poll when > 0
    int64_t io_timeout_ms = 0;       // SO_RCVTIMEO/SO_SNDTIMEO when > 0
  };

  explicit HttpClient(uint16_t port) : HttpClient(port, Options()) {}
  HttpClient(uint16_t port, Options options)
      : host_("127.0.0.1"), port_(port), options_(options) {}
  HttpClient(std::string host, uint16_t port)
      : HttpClient(std::move(host), port, Options()) {}
  HttpClient(std::string host, uint16_t port, Options options)
      : host_(std::move(host)), port_(port), options_(options) {}
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// GETs `target` (path + query string, already percent-encoded).
  ///
  /// Error taxonomy: a timeout (connect or read) returns Aborted — the
  /// request may still be executing server-side, so the caller must not
  /// assume it never happened; every other transport failure returns
  /// IOError. Only an IOError on a *reused* keep-alive connection is
  /// transparently retried once on a fresh connection (the server closing
  /// an idle connection is indistinguishable from that on the first
  /// write); timeouts and fresh-connection failures are never retried
  /// here — hedging is the router's decision, not the transport's.
  ///
  /// Blocking (connect/send/recv, bounded only by Options timeouts):
  /// never call while holding a lock.
  SEQDET_BLOCKING Result<Response> Get(const std::string& target);

  /// Drops the persistent connection (the next Get reconnects).
  void Close();

  bool connected() const { return fd_.ok(); }

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  /// Adjusts the io timeout for subsequent requests (applied to the live
  /// connection too) — the router tightens this per hop as the request
  /// deadline budget runs down.
  void set_io_timeout_ms(int64_t ms);

  /// Requests this client completed without reconnecting (monotonic) —
  /// the connection-reuse observable the pool regression test asserts on.
  uint64_t reused_requests() const { return reused_requests_; }

  /// Percent-encodes one URL query-string value.
  static std::string UrlEncode(std::string_view s);

 private:
  SEQDET_BLOCKING Status Connect();
  Status ApplyIoTimeout();
  SEQDET_BLOCKING Status SendRequest(const std::string& target);
  SEQDET_BLOCKING Result<Response> ReadResponse(bool* timed_out);

  std::string host_;
  uint16_t port_;
  Options options_;
  UniqueFd fd_;
  std::string buffer_;  // bytes received past the previous response
  uint64_t reused_requests_ = 0;
};

/// A small per-host pool of keep-alive HttpClients. Before it existed,
/// every error-path caller (and every scatter leg) built a throwaway
/// client, so each request cost a fresh TCP connection and the old fd was
/// only as gone as the caller's cleanup was careful. Acquire() hands out a
/// pooled connection (or dials a new one), and the returned Handle checks
/// it back in on destruction — but only if it is still connected: a
/// client that errored closed its socket, so poisoned connections drop out
/// of the pool by construction instead of poisoning the next request.
///
/// Thread-safe; Handles themselves are single-threaded like HttpClient.
class HttpClientPool {
 public:
  struct Options {
    size_t max_idle_per_host = 4;     // extra returns close instead
    HttpClient::Options client;       // transport knobs for new dials
  };

  struct Stats {
    uint64_t dials = 0;     // clients constructed
    uint64_t reuses = 0;    // Acquire() served from the pool
    uint64_t returns = 0;   // handles checked a live connection back in
    uint64_t discards = 0;  // handles dropped a dead/excess connection
    size_t idle = 0;        // gauge: connections parked in the pool
  };

  class Handle {
   public:
    Handle() = default;
    Handle(HttpClientPool* pool, std::string key,
           std::unique_ptr<HttpClient> client)
        : pool_(pool), key_(std::move(key)), client_(std::move(client)) {}
    ~Handle() { Release(); }
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        key_ = std::move(other.key_);
        client_ = std::move(other.client_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    HttpClient* operator->() { return client_.get(); }
    HttpClient& operator*() { return *client_; }
    HttpClient* get() { return client_.get(); }

    /// Returns the connection to the pool (or closes it) immediately.
    void Release();

   private:
    HttpClientPool* pool_ = nullptr;
    std::string key_;
    std::unique_ptr<HttpClient> client_;
  };

  HttpClientPool() : HttpClientPool(Options()) {}
  explicit HttpClientPool(Options options) : options_(options) {}

  /// A connected-or-fresh client for host:port. Never blocks on the
  /// network — a pooled client's staleness surfaces (and is retried) in
  /// HttpClient::Get itself.
  Handle Acquire(const std::string& host, uint16_t port) REQUIRES(!mu_);

  Stats stats() const REQUIRES(!mu_);

 private:
  friend class Handle;
  void Return(const std::string& key, std::unique_ptr<HttpClient> client)
      REQUIRES(!mu_);

  Options options_;
  mutable Mutex mu_;
  std::map<std::string, std::vector<std::unique_ptr<HttpClient>>> idle_
      GUARDED_BY(mu_);
  uint64_t dials_ GUARDED_BY(mu_) = 0;
  uint64_t reuses_ GUARDED_BY(mu_) = 0;
  uint64_t returns_ GUARDED_BY(mu_) = 0;
  uint64_t discards_ GUARDED_BY(mu_) = 0;
};

}  // namespace seqdet::server

#endif  // SEQDET_SERVER_HTTP_CLIENT_H_
