#ifndef SEQDET_SERVER_HTTP_SERVER_H_
#define SEQDET_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "common/unique_fd.h"

namespace seqdet::server {

/// A parsed HTTP request (the subset a query API needs).
struct HttpRequest {
  std::string method;  // "GET" / "POST"
  std::string path;    // without the query string
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // keys lowercased, trimmed
  std::string body;
  /// Whether the connection may serve another request after this one
  /// (HTTP/1.1 default yes, HTTP/1.0 default no, "Connection:" overrides).
  bool keep_alive = true;
};

/// A response to serialize.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers appended verbatim (e.g. {"Retry-After", "1"}).
  std::vector<std::pair<std::string, std::string>> headers;

  static HttpResponse Json(std::string body) {
    return HttpResponse{200, "application/json", std::move(body), {}};
  }
  static HttpResponse Error(int status, const std::string& message);
};

/// Tuning knobs for the server (all have serving-grade defaults).
struct HttpServerOptions {
  /// Worker threads handling connections (the accept thread only
  /// dispatches). 0 = hardware concurrency.
  size_t num_threads = 4;
  /// listen(2) backlog; 0 = SOMAXCONN.
  int backlog = 0;
  /// Requests served per connection before the server closes it
  /// (bounds how long one client can monopolize a worker).
  size_t max_keepalive_requests = 100;
  /// recv(2) timeout: an idle keep-alive connection is closed after this
  /// long; a half-sent request gets 408. 0 = no timeout.
  int64_t idle_timeout_ms = 5000;
  /// Hard cap on one request (start line + headers + body).
  size_t max_request_bytes = 1u << 20;
};

/// Monotonic serving counters (gauges are instantaneous).
struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests_served = 0;   // responses from a routed handler or 404
  uint64_t bad_requests = 0;      // malformed (400) / oversized (413)
  uint64_t timeouts = 0;          // read timeouts on a half-sent request
  uint64_t active_connections = 0;  // gauge: accepted, not yet closed
  uint64_t queued_connections = 0;  // gauge: waiting for a free worker
};

/// Concurrent blocking HTTP/1.1 server over POSIX sockets — the substitute
/// for the paper's Java Spring query processor (Figure 1's second component
/// runs as a service). One accept thread dispatches each connection to a
/// fixed worker pool (common/thread_pool); workers speak persistent
/// HTTP/1.1 with keep-alive, per-connection request limits, and read
/// timeouts, so one slow client can no longer stall every other one.
///
/// Stop() drains: it stops accepting, shuts down the read side of every
/// live connection, lets in-flight handlers finish and flush their
/// responses, and only then joins the workers.
///
/// Not exposed to untrusted networks: it binds 127.0.0.1 only and parses
/// defensively (bounded request sizes, malformed requests get 400).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  explicit HttpServer(HttpServerOptions options)
      : options_(std::move(options)) {}
  ~HttpServer() REQUIRES(!conns_mu_, !stats_mu_) { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for exact path `path`. Not safe to call after
  /// Start() (routes are read lock-free by the workers).
  void Route(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral), spawns the worker pool, and
  /// starts the accept loop.
  Status Start(uint16_t port) REQUIRES(!stats_mu_);

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Stops accepting, drains in-flight connections (handlers finish and
  /// their responses are flushed), and joins all threads. Idempotent.
  /// Blocking: waits on in-flight handlers and joins the pool.
  SEQDET_BLOCKING void Stop() REQUIRES(!conns_mu_, !stats_mu_);

  bool running() const { return running_.load(); }

  const HttpServerOptions& options() const { return options_; }

  /// Snapshot of the serving counters.
  HttpServerStats stats() const REQUIRES(!stats_mu_, !conns_mu_);

  /// Snapshot of the worker pool's counters (all zero when not running).
  ThreadPoolStats pool_stats() const REQUIRES(!stats_mu_);

  /// Result of ParseRequest on a byte prefix.
  enum class ParseOutcome {
    kOk,          // one full request parsed; *consumed bytes eaten
    kIncomplete,  // need more bytes
    kBad,         // malformed; respond 400 and close
    kTooLarge,    // exceeds max_bytes; respond 413 and close
  };

  /// Incremental HTTP/1.x request parser: examines the front of `in` and
  /// either produces one full request (setting *consumed so callers can
  /// handle pipelined requests) or reports why it cannot. Exposed for
  /// tests; HandleConnection is a read-parse-dispatch loop over it.
  static ParseOutcome ParseRequest(std::string_view in, size_t max_bytes,
                                   HttpRequest* out, size_t* consumed,
                                   std::string* error);

  /// Percent-decodes a URL component ("%20" -> ' ', '+' -> ' ').
  static std::string UrlDecode(std::string_view s);

  /// Parses "a=1&b=x%20y" into a map.
  static std::map<std::string, std::string> ParseQueryString(
      std::string_view s);

 private:
  void AcceptLoop() REQUIRES(!conns_mu_, !stats_mu_);
  /// Takes ownership of `fd` (closes it on every exit path). Blocking:
  /// the whole request/response conversation happens here.
  SEQDET_BLOCKING void HandleConnection(int fd)
      REQUIRES(!conns_mu_, !stats_mu_);
  /// Serializes and sends `response`; returns false when the peer is gone.
  SEQDET_BLOCKING static bool WriteResponse(int fd,
                                            const HttpResponse& response,
                                            bool keep_alive);

  HttpServerOptions options_;
  std::map<std::string, Handler> routes_;
  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  /// Live connection fds, so Stop() can shut down their read sides and
  /// wait for the workers to finish flushing responses. Leaf lock: no
  /// other mutex is ever acquired under it — in particular, accepted fds
  /// are closed *outside* its scope (close can block on SO_LINGER-ish
  /// pathologies and is a syscall either way).
  mutable Mutex conns_mu_;
  CondVar conns_empty_cv_;
  std::unordered_set<int> conns_ GUARDED_BY(conns_mu_);

  /// Lock order: stats_mu_ -> ThreadPool::mu_ (the queue-depth gauge in
  /// stats() calls pool_->queue_depth() while holding stats_mu_); see the
  /// repo-wide map in common/sync.h. Never acquired under conns_mu_ or any
  /// other lock.
  mutable Mutex stats_mu_;
  HttpServerStats stats_ GUARDED_BY(stats_mu_);
  /// The pointer handoff (Start/Stop) is under stats_mu_ because stats()
  /// reads pool_ for the queue gauge; the pointee outlives every reader
  /// (Stop joins the accept thread before resetting it).
  std::unique_ptr<ThreadPool> pool_ GUARDED_BY(stats_mu_);
};

/// Tiny JSON writer for the handlers (strings, numbers, arrays, objects —
/// write-only; the server never parses client JSON).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  /// Splices an already-serialized JSON value verbatim (the router embeds
  /// shard /info bodies without reparsing them).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void Escape(std::string_view s);

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace seqdet::server

#endif  // SEQDET_SERVER_HTTP_SERVER_H_
