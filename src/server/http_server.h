#ifndef SEQDET_SERVER_HTTP_SERVER_H_
#define SEQDET_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"

namespace seqdet::server {

/// A parsed HTTP request (the subset a query API needs).
struct HttpRequest {
  std::string method;  // "GET" / "POST"
  std::string path;    // without the query string
  std::map<std::string, std::string> query;  // decoded query parameters
  std::string body;
};

/// A response to serialize.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse Json(std::string body) {
    return HttpResponse{200, "application/json", std::move(body)};
  }
  static HttpResponse Error(int status, const std::string& message);
};

/// Minimal blocking HTTP/1.1 server over POSIX sockets — the substitute
/// for the paper's Java Spring query processor (Figure 1's second
/// component runs as a service). One accept loop on a background thread;
/// handlers run inline per connection ("Connection: close" semantics),
/// which is plenty for a query API whose work is index lookups.
///
/// Not exposed to untrusted networks: it binds 127.0.0.1 only and parses
/// defensively (bounded header/body sizes, malformed requests get 400).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for exact path `path`.
  void Route(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(uint16_t port);

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Stops accepting and joins the loop. Idempotent.
  void Stop();

  bool running() const { return running_.load(); }

  /// Percent-decodes a URL component ("%20" -> ' ', '+' -> ' ').
  static std::string UrlDecode(std::string_view s);

  /// Parses "a=1&b=x%20y" into a map.
  static std::map<std::string, std::string> ParseQueryString(
      std::string_view s);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  std::map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
};

/// Tiny JSON writer for the handlers (strings, numbers, arrays, objects —
/// write-only; the server never parses client JSON).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void Escape(std::string_view s);

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace seqdet::server

#endif  // SEQDET_SERVER_HTTP_SERVER_H_
