#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "common/unique_fd.h"

namespace seqdet::server {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  JsonWriter json;
  json.BeginObject().Key("error").String(message).EndObject();
  return HttpResponse{status, "application/json", json.str(), {}};
}

std::string HttpServer::UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::map<std::string, std::string> HttpServer::ParseQueryString(
    std::string_view s) {
  std::map<std::string, std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t amp = s.find('&', start);
    if (amp == std::string_view::npos) amp = s.size();
    std::string_view pair = s.substr(start, amp - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out[UrlDecode(pair)] = "";
      } else {
        out[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    start = amp + 1;
  }
  return out;
}

HttpServer::ParseOutcome HttpServer::ParseRequest(std::string_view in,
                                                  size_t max_bytes,
                                                  HttpRequest* out,
                                                  size_t* consumed,
                                                  std::string* error) {
  *consumed = 0;
  size_t header_end = in.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (in.size() >= max_bytes) {
      if (error != nullptr) *error = "request headers exceed limit";
      return ParseOutcome::kTooLarge;
    }
    return ParseOutcome::kIncomplete;
  }

  // Request line: METHOD SP TARGET SP VERSION.
  size_t line_end = in.find("\r\n");
  std::string_view line = in.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1) {
    if (error != nullptr) *error = "malformed request line";
    return ParseOutcome::kBad;
  }
  std::string_view version = line.substr(sp2 + 1);
  if (!StartsWith(version, "HTTP/1.") ||
      version.find(' ') != std::string_view::npos) {
    if (error != nullptr) *error = "unsupported protocol version";
    return ParseOutcome::kBad;
  }

  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  std::string target(line.substr(sp1 + 1, sp2 - sp1 - 1));
  size_t question = target.find('?');
  if (question == std::string::npos) {
    request.path = UrlDecode(target);
  } else {
    request.path = UrlDecode(target.substr(0, question));
    request.query =
        ParseQueryString(std::string_view(target).substr(question + 1));
  }

  // Header fields; keys are lowercased so lookups are case-insensitive.
  for (std::string_view rest = in.substr(line_end + 2, header_end - line_end);
       !rest.empty();) {
    size_t eol = rest.find("\r\n");
    if (eol == std::string_view::npos) break;
    std::string_view field = rest.substr(0, eol);
    rest = rest.substr(eol + 2);
    size_t colon = field.find(':');
    if (colon == std::string_view::npos) continue;
    std::string key(Trim(field.substr(0, colon)));
    for (auto& c : key) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    request.headers[std::move(key)] = std::string(Trim(field.substr(colon + 1)));
  }

  size_t content_length = 0;
  if (auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    int64_t v;
    if (!ParseInt64(it->second, &v) || v < 0) {
      if (error != nullptr) *error = "bad Content-Length";
      return ParseOutcome::kBad;
    }
    content_length = static_cast<size_t>(v);
  }
  size_t body_start = header_end + 4;
  if (body_start + content_length > max_bytes) {
    if (error != nullptr) *error = "request body exceeds limit";
    return ParseOutcome::kTooLarge;
  }
  if (in.size() < body_start + content_length) {
    return ParseOutcome::kIncomplete;
  }
  request.body = std::string(in.substr(body_start, content_length));

  // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; "Connection:"
  // overrides either way.
  request.keep_alive = version != "HTTP/1.0";
  if (auto it = request.headers.find("connection");
      it != request.headers.end()) {
    std::string value = it->second;
    for (auto& c : value) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (value == "close") request.keep_alive = false;
    if (value == "keep-alive") request.keep_alive = true;
  }

  *out = std::move(request);
  *consumed = body_start + content_length;
  return ParseOutcome::kOk;
}

void HttpServer::Route(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

Status HttpServer::Start(uint16_t port) {
  if (running_.load()) return Status::Internal("server already running");
  listen_fd_.Reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listen_fd_.ok()) return Status::IOError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    listen_fd_.Reset();
    return Status::IOError(StringPrintf("bind(127.0.0.1:%u) failed", port));
  }
  int backlog = options_.backlog > 0 ? options_.backlog : SOMAXCONN;
  if (::listen(listen_fd_.get(), backlog) < 0) {
    listen_fd_.Reset();
    return Status::IOError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  // Resolve the 0 = hardware-concurrency default in place so options()
  // (and the /info "workers" field) reports the actual pool size.
  if (options_.num_threads == 0) {
    options_.num_threads = ThreadPool::HardwareConcurrency();
  }
  {
    MutexLock lock(stats_mu_);
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // 1. Stop accepting: shutdown() on the listening socket makes a blocked
  //    accept() return immediately (Linux semantics; the only platform the
  //    server targets). The close itself waits until after the join — the
  //    old close-before-join version could let the kernel reuse the fd
  //    number for a worker's connection while AcceptLoop was still about
  //    to call accept() on it.
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();
  // 2. Drain: shut down the *read* side of every live connection, so
  //    workers stop waiting for further requests but can still flush the
  //    response of the request they are serving.
  {
    MutexLock lock(conns_mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RD);
    while (!conns_.empty()) conns_empty_cv_.Wait(conns_mu_);
  }
  // 3. Join the (now idle) workers. The pointer handoff is under stats_mu_
  //    (stats() reads pool_ for the queue gauge) but the join itself is
  //    not, so a worker logging stats cannot deadlock against it.
  std::unique_ptr<ThreadPool> pool;
  {
    MutexLock lock(stats_mu_);
    pool = std::move(pool_);
  }
  pool.reset();
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats out;
  {
    MutexLock lock(stats_mu_);
    out = stats_;
    out.queued_connections = pool_ != nullptr ? pool_->queue_depth() : 0;
  }
  {
    MutexLock lock(conns_mu_);
    out.active_connections = conns_.size();
  }
  return out;
}

ThreadPoolStats HttpServer::pool_stats() const {
  MutexLock lock(stats_mu_);
  return pool_ != nullptr ? pool_->stats() : ThreadPoolStats{};
}

void HttpServer::AcceptLoop() {
  // Read the pool pointer once under stats_mu_ (the handoff lock). The
  // pointee is stable for the whole loop: Stop() joins this thread before
  // moving pool_ out.
  ThreadPool* pool;
  {
    MutexLock lock(stats_mu_);
    pool = pool_.get();
  }
  while (running_.load()) {
    UniqueFd conn(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!conn.ok()) {
      if (!running_.load()) return;
      continue;
    }
    bool registered = false;
    {
      MutexLock lock(conns_mu_);
      // A connection racing Stop() would miss the drain shutdown; refuse
      // it here instead of handing it to a pool that is about to join.
      if (running_.load()) {
        conns_.insert(conn.get());
        registered = true;
      }
    }
    // Refused connections close *here*, outside conns_mu_ — the old
    // version issued the close() syscall inside the lock scope, exactly
    // the blocking-under-lock shape seqdet-lint rule R1 now rejects.
    if (!registered) return;
    {
      MutexLock lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    int fd = conn.Release();  // HandleConnection owns it from here
    pool->Submit([this, fd] { HandleConnection(fd); });
  }
}

bool HttpServer::WriteResponse(int fd, const HttpResponse& response,
                               bool keep_alive) {
  std::string raw = StringPrintf(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size());
  for (const auto& [key, value] : response.headers) {
    raw += key;
    raw += ": ";
    raw += value;
    raw += "\r\n";
  }
  raw += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  raw += response.body;
  return SendAll(fd, raw);
}

void HttpServer::HandleConnection(int fd) {
  // Owns the descriptor: every exit path below closes it — the pre-pool
  // server leaked it on early returns.
  UniqueFd owned(fd);
  struct Unregister {
    HttpServer* server;
    int fd;
    ~Unregister() {
      MutexLock lock(server->conns_mu_);
      server->conns_.erase(fd);
      if (server->conns_.empty()) server->conns_empty_cv_.NotifyAll();
    }
  } unregister{this, fd};

  if (options_.idle_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.idle_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(
        (options_.idle_timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  buffer.reserve(4096);
  char chunk[4096];
  size_t served = 0;
  while (true) {
    HttpRequest request;
    size_t consumed = 0;
    std::string error;
    ParseOutcome outcome = ParseRequest(buffer, options_.max_request_bytes,
                                        &request, &consumed, &error);
    if (outcome == ParseOutcome::kIncomplete) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          !buffer.empty()) {
        // Half a request then silence: tell the client before closing.
        {
          MutexLock lock(stats_mu_);
          ++stats_.timeouts;
        }
        WriteResponse(fd, HttpResponse::Error(408, "request timed out"),
                      false);
      }
      return;  // EOF, timeout on an idle connection, or error.
    }
    if (outcome != ParseOutcome::kOk) {
      {
        MutexLock lock(stats_mu_);
        ++stats_.bad_requests;
      }
      int status = outcome == ParseOutcome::kTooLarge ? 413 : 400;
      WriteResponse(fd, HttpResponse::Error(status, error), false);
      return;
    }

    buffer.erase(0, consumed);
    ++served;

    HttpResponse response;
    auto it = routes_.find(request.path);
    if (it == routes_.end()) {
      response = HttpResponse::Error(404, "no such endpoint: " + request.path);
    } else {
      response = it->second(request);
    }
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_served;
    }

    bool keep_alive = request.keep_alive &&
                      served < options_.max_keepalive_requests &&
                      running_.load();
    if (!WriteResponse(fd, response, keep_alive) || !keep_alive) return;
  }
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::MaybeComma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = false;
}

void JsonWriter::Escape(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += StringPrintf("\\u%04x", c);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  Escape(key);
  out_.push_back(':');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  Escape(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  out_ += StringPrintf("%.6g", value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_ += json;
  need_comma_ = true;
  return *this;
}

}  // namespace seqdet::server
