#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

#include "common/strings.h"

namespace seqdet::server {

namespace {

constexpr size_t kMaxRequestBytes = 1u << 20;  // 1 MiB

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  JsonWriter json;
  json.BeginObject().Key("error").String(message).EndObject();
  return HttpResponse{status, "application/json", json.str()};
}

std::string HttpServer::UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::map<std::string, std::string> HttpServer::ParseQueryString(
    std::string_view s) {
  std::map<std::string, std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t amp = s.find('&', start);
    if (amp == std::string_view::npos) amp = s.size();
    std::string_view pair = s.substr(start, amp - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out[UrlDecode(pair)] = "";
      } else {
        out[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    start = amp + 1;
  }
  return out;
}

void HttpServer::Route(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

Status HttpServer::Start(uint16_t port) {
  if (running_.load()) return Status::Internal("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(StringPrintf("bind(127.0.0.1:%u) failed", port));
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listening socket unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string buffer;
  buffer.reserve(4096);
  char chunk[4096];
  size_t header_end = std::string::npos;
  while (buffer.size() < kMaxRequestBytes) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
  }
  if (header_end == std::string::npos) {
    HttpResponse bad = HttpResponse::Error(400, "malformed request");
    std::string raw = StringPrintf(
        "HTTP/1.1 400 Bad Request\r\nContent-Length: %zu\r\nConnection: "
        "close\r\n\r\n",
        bad.body.size());
    SendAll(fd, raw + bad.body);
    return;
  }

  // Request line: METHOD SP TARGET SP VERSION.
  HttpRequest request;
  {
    size_t line_end = buffer.find("\r\n");
    std::string_view line(buffer.data(), line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string_view::npos
                     ? std::string_view::npos
                     : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      SendAll(fd,
              "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n");
      return;
    }
    request.method = std::string(line.substr(0, sp1));
    std::string target(line.substr(sp1 + 1, sp2 - sp1 - 1));
    size_t question = target.find('?');
    if (question == std::string::npos) {
      request.path = UrlDecode(target);
    } else {
      request.path = UrlDecode(target.substr(0, question));
      request.query = ParseQueryString(
          std::string_view(target).substr(question + 1));
    }
  }

  // Content-Length body (POST).
  size_t content_length = 0;
  {
    std::string_view headers(buffer.data() + buffer.find("\r\n") + 2,
                             header_end - buffer.find("\r\n") - 2);
    for (auto& header : Split(headers, '\n')) {
      auto colon = header.find(':');
      if (colon == std::string::npos) continue;
      std::string key(Trim(header.substr(0, colon)));
      for (auto& c : key) c = static_cast<char>(std::tolower(
          static_cast<unsigned char>(c)));
      if (key == "content-length") {
        int64_t v;
        if (ParseInt64(Trim(header.substr(colon + 1)), &v) && v >= 0 &&
            static_cast<size_t>(v) < kMaxRequestBytes) {
          content_length = static_cast<size_t>(v);
        }
      }
    }
  }
  size_t body_start = header_end + 4;
  while (buffer.size() < body_start + content_length &&
         buffer.size() < kMaxRequestBytes) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  request.body = buffer.substr(body_start, content_length);

  HttpResponse response;
  auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    response = HttpResponse::Error(404, "no such endpoint: " + request.path);
  } else {
    response = it->second(request);
  }

  std::string raw = StringPrintf(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size());
  SendAll(fd, raw + response.body);
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::MaybeComma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = false;
}

void JsonWriter::Escape(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += StringPrintf("\\u%04x", c);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  Escape(key);
  out_.push_back(':');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  Escape(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  out_ += StringPrintf("%.6g", value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}

}  // namespace seqdet::server
