#include "server/query_service.h"

#include "common/strings.h"
#include "query/pattern_parser.h"

namespace seqdet::server {

namespace {

size_t LimitParam(const HttpRequest& request, size_t fallback) {
  auto it = request.query.find("limit");
  if (it == request.query.end()) return fallback;
  int64_t v;
  return ParseInt64(it->second, &v) && v >= 0 ? static_cast<size_t>(v)
                                              : fallback;
}

}  // namespace

void QueryService::RegisterRoutes(HttpServer* server) {
  server->Route("/health",
                [this](const HttpRequest& r) { return HandleHealth(r); });
  server->Route("/info",
                [this](const HttpRequest& r) { return HandleInfo(r); });
  server->Route("/detect",
                [this](const HttpRequest& r) { return HandleDetect(r); });
  server->Route("/stats",
                [this](const HttpRequest& r) { return HandleStats(r); });
  server->Route("/continue",
                [this](const HttpRequest& r) { return HandleContinue(r); });
}

HttpResponse QueryService::HandleHealth(const HttpRequest&) const {
  JsonWriter json;
  json.BeginObject().Key("status").String("ok").EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse QueryService::HandleInfo(const HttpRequest&) const {
  index::PostingCacheStats cache = index_->cache_stats();
  index::IndexReadStats reads = index_->read_stats();
  index::MaintenanceStats maint = index_->maintenance_stats();
  JsonWriter json;
  json.BeginObject()
      .Key("policy")
      .String(index::PolicyName(index_->options().policy))
      .Key("periods")
      .Int(static_cast<int64_t>(index_->num_periods()))
      .Key("activities")
      .Int(static_cast<int64_t>(index_->dictionary().size()))
      .Key("posting_format")
      .Int(static_cast<int64_t>(index_->posting_format()))
      .Key("cache")
      .BeginObject()
      .Key("capacity_bytes")
      .Int(static_cast<int64_t>(cache.capacity_bytes))
      .Key("bytes")
      .Int(static_cast<int64_t>(cache.bytes))
      .Key("entries")
      .Int(static_cast<int64_t>(cache.entries))
      .Key("hits")
      .Int(static_cast<int64_t>(cache.hits))
      .Key("misses")
      .Int(static_cast<int64_t>(cache.misses))
      .Key("evictions")
      .Int(static_cast<int64_t>(cache.evictions))
      .Key("invalidations")
      .Int(static_cast<int64_t>(cache.invalidations))
      .EndObject()
      .Key("read_stats")
      .BeginObject()
      .Key("postings_decoded")
      .Int(static_cast<int64_t>(reads.postings_decoded))
      .Key("bytes_decoded")
      .Int(static_cast<int64_t>(reads.bytes_decoded))
      .Key("blocks_decoded")
      .Int(static_cast<int64_t>(reads.blocks_decoded))
      .Key("blocks_skipped")
      .Int(static_cast<int64_t>(reads.blocks_skipped))
      .Key("bytes_skipped")
      .Int(static_cast<int64_t>(reads.bytes_skipped))
      .EndObject()
      .Key("maintenance")
      .BeginObject()
      .Key("enabled")
      .Bool(maint.enabled)
      .Key("running")
      .Bool(maint.running)
      .Key("fold_in_progress")
      .Bool(maint.fold_in_progress)
      .Key("cycles")
      .Int(static_cast<int64_t>(maint.cycles))
      .Key("folds_run")
      .Int(static_cast<int64_t>(maint.folds_run))
      .Key("keys_folded")
      .Int(static_cast<int64_t>(maint.keys_folded))
      .Key("bytes_rewritten")
      .Int(static_cast<int64_t>(maint.bytes_rewritten))
      .Key("compactions_run")
      .Int(static_cast<int64_t>(maint.compactions_run))
      .Key("queue_depth")
      .Int(static_cast<int64_t>(maint.queue_depth))
      .Key("pending_bytes")
      .Int(static_cast<int64_t>(maint.pending_bytes))
      .Key("errors")
      .Int(static_cast<int64_t>(maint.errors))
      .Key("last_error")
      .String(maint.last_error)
      .Key("last_cycle_ms")
      .Int(maint.last_cycle_ms)
      .EndObject()
      .EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse QueryService::HandleDetect(const HttpRequest& request) const {
  auto q = request.query.find("q");
  if (q == request.query.end()) {
    return HttpResponse::Error(400, "missing q parameter");
  }
  auto parsed = query::ParsePatternQuery(q->second, index_->dictionary());
  if (!parsed.ok()) {
    return HttpResponse::Error(400, parsed.status().ToString());
  }
  auto matches = qp_.Detect(parsed->pattern, parsed->constraints);
  if (!matches.ok()) {
    return HttpResponse::Error(400, matches.status().ToString());
  }
  size_t limit = LimitParam(request, 100);
  JsonWriter json;
  json.BeginObject()
      .Key("total")
      .Int(static_cast<int64_t>(matches->size()))
      .Key("matches")
      .BeginArray();
  for (size_t i = 0; i < matches->size() && i < limit; ++i) {
    const auto& match = (*matches)[i];
    json.BeginObject()
        .Key("trace")
        .Int(static_cast<int64_t>(match.trace))
        .Key("timestamps")
        .BeginArray();
    for (auto ts : match.timestamps) json.Int(ts);
    json.EndArray().EndObject();
  }
  json.EndArray().EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse QueryService::HandleStats(const HttpRequest& request) const {
  auto q = request.query.find("q");
  if (q == request.query.end()) {
    return HttpResponse::Error(400, "missing q parameter");
  }
  auto parsed = query::ParsePatternQuery(q->second, index_->dictionary());
  if (!parsed.ok()) {
    return HttpResponse::Error(400, parsed.status().ToString());
  }
  query::StatisticsOptions options;
  options.include_last_completion = request.query.count("last") > 0;
  auto stats = qp_.Statistics(parsed->pattern, options);
  if (!stats.ok()) {
    return HttpResponse::Error(400, stats.status().ToString());
  }
  const auto& dict = index_->dictionary();
  JsonWriter json;
  json.BeginObject().Key("pairs").BeginArray();
  for (const auto& row : stats->pairs) {
    json.BeginObject()
        .Key("first")
        .String(dict.Name(row.pair.first))
        .Key("second")
        .String(dict.Name(row.pair.second))
        .Key("completions")
        .Int(static_cast<int64_t>(row.total_completions))
        .Key("avg_duration")
        .Double(row.average_duration);
    if (row.last_completion.has_value()) {
      json.Key("last_completion").Int(*row.last_completion);
    }
    json.EndObject();
  }
  json.EndArray()
      .Key("completions_upper_bound")
      .Int(static_cast<int64_t>(stats->completions_upper_bound))
      .Key("estimated_duration")
      .Double(stats->estimated_duration)
      .EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse QueryService::HandleContinue(const HttpRequest& request) const {
  auto q = request.query.find("q");
  if (q == request.query.end()) {
    return HttpResponse::Error(400, "missing q parameter");
  }
  auto parsed = query::ParsePatternQuery(q->second, index_->dictionary());
  if (!parsed.ok()) {
    return HttpResponse::Error(400, parsed.status().ToString());
  }
  std::string mode = "accurate";
  if (auto it = request.query.find("mode"); it != request.query.end()) {
    mode = it->second;
  }
  Result<std::vector<query::ContinuationProposal>> proposals =
      Status::Internal("unset");
  if (mode == "accurate") {
    proposals = qp_.ContinueAccurate(parsed->pattern);
  } else if (mode == "fast") {
    proposals = qp_.ContinueFast(parsed->pattern);
  } else if (mode == "hybrid") {
    size_t topk = 5;
    if (auto it = request.query.find("topk"); it != request.query.end()) {
      int64_t v;
      if (ParseInt64(it->second, &v) && v >= 0) {
        topk = static_cast<size_t>(v);
      }
    }
    proposals = qp_.ContinueHybrid(parsed->pattern, topk);
  } else {
    return HttpResponse::Error(400, "unknown mode: " + mode);
  }
  if (!proposals.ok()) {
    return HttpResponse::Error(400, proposals.status().ToString());
  }
  const auto& dict = index_->dictionary();
  size_t limit = LimitParam(request, 20);
  JsonWriter json;
  json.BeginObject().Key("proposals").BeginArray();
  for (size_t i = 0; i < proposals->size() && i < limit; ++i) {
    const auto& p = (*proposals)[i];
    json.BeginObject()
        .Key("activity")
        .String(dict.Name(p.activity))
        .Key("completions")
        .Int(static_cast<int64_t>(p.total_completions))
        .Key("avg_duration")
        .Double(p.average_duration)
        .Key("score")
        .Double(p.score)
        .EndObject();
  }
  json.EndArray().EndObject();
  return HttpResponse::Json(json.str());
}

}  // namespace seqdet::server
