#include "server/query_service.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/histogram.h"
#include "common/strings.h"
#include "query/pattern_parser.h"

namespace seqdet::server {

namespace {

size_t LimitParam(const HttpRequest& request, size_t fallback) {
  auto it = request.query.find("limit");
  if (it == request.query.end()) return fallback;
  int64_t v;
  return ParseInt64(it->second, &v) && v >= 0 ? static_cast<size_t>(v)
                                              : fallback;
}

/// 504 for a query the deadline budget cancelled, 400 otherwise: a status
/// that is Aborted means QueryProcessor hit a cooperative deadline check,
/// every other failure is a bad request (unknown activity, bad syntax...).
HttpResponse QueryError(const Status& status) {
  if (status.IsAborted()) {
    return HttpResponse::Error(504, status.ToString());
  }
  return HttpResponse::Error(400, status.ToString());
}

}  // namespace

std::string DetectResponseJson(int64_t total,
                               const std::vector<query::PatternMatch>& matches,
                               size_t limit) {
  JsonWriter json;
  json.BeginObject()
      .Key("total")
      .Int(total)
      .Key("matches")
      .BeginArray();
  for (size_t i = 0; i < matches.size() && i < limit; ++i) {
    const auto& match = matches[i];
    json.BeginObject()
        .Key("trace")
        .Int(static_cast<int64_t>(match.trace))
        .Key("timestamps")
        .BeginArray();
    for (auto ts : match.timestamps) json.Int(ts);
    json.EndArray().EndObject();
  }
  json.EndArray().EndObject();
  return json.str();
}

std::string DetectResponseJson(const std::vector<query::PatternMatch>& matches,
                               size_t limit) {
  return DetectResponseJson(static_cast<int64_t>(matches.size()), matches,
                            limit);
}

std::string StatsResponseJson(const std::vector<StatsRowView>& rows,
                              uint64_t completions_upper_bound,
                              double estimated_duration) {
  JsonWriter json;
  json.BeginObject().Key("pairs").BeginArray();
  for (const auto& row : rows) {
    json.BeginObject()
        .Key("first")
        .String(row.first)
        .Key("second")
        .String(row.second)
        .Key("completions")
        .Int(static_cast<int64_t>(row.completions))
        .Key("avg_duration")
        .Double(row.avg_duration);
    if (row.last_completion.has_value()) {
      json.Key("last_completion").Int(*row.last_completion);
    }
    json.EndObject();
  }
  json.EndArray()
      .Key("completions_upper_bound")
      .Int(static_cast<int64_t>(completions_upper_bound))
      .Key("estimated_duration")
      .Double(estimated_duration)
      .EndObject();
  return json.str();
}

std::string ContinueResponseJson(const std::vector<ProposalView>& proposals,
                                 size_t limit) {
  JsonWriter json;
  json.BeginObject().Key("proposals").BeginArray();
  for (size_t i = 0; i < proposals.size() && i < limit; ++i) {
    const auto& p = proposals[i];
    json.BeginObject()
        .Key("activity")
        .String(p.activity)
        .Key("completions")
        .Int(static_cast<int64_t>(p.completions))
        .Key("avg_duration")
        .Double(p.avg_duration)
        .Key("score")
        .Double(p.score)
        .EndObject();
  }
  json.EndArray().EndObject();
  return json.str();
}

// ---------------------------------------------------------------------------
// RouteStats
// ---------------------------------------------------------------------------

void QueryService::RouteStats::RecordLatency(double ms) {
  MutexLock lock(mu);
  if (latency_window.size() < kLatencyWindow) {
    latency_window.push_back(ms);
  } else {
    latency_window[window_next] = ms;
    window_next = (window_next + 1) % kLatencyWindow;
  }
}

RouteStatsSnapshot QueryService::RouteStats::Snapshot() const {
  RouteStatsSnapshot out;
  out.route = route;
  out.requests = requests.load();
  out.shed = shed.load();
  out.deadline_exceeded = deadline_exceeded.load();
  out.errors = errors.load();
  out.inflight = inflight.load();
  Histogram latency;
  {
    MutexLock lock(mu);
    for (double ms : latency_window) latency.Add(ms);
  }
  out.latency_samples = latency.count();
  if (latency.count() > 0) {
    out.p50_ms = latency.Percentile(50);
    out.p99_ms = latency.Percentile(99);
    out.max_ms = latency.max();
  }
  return out;
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

QueryService::QueryService(const index::SequenceIndex* index,
                           ServingOptions options)
    : index_(index),
      query_pool_(options.query_threads > 1
                      ? std::make_unique<ThreadPool>(options.query_threads)
                      : nullptr),
      qp_(index, query_pool_.get()),
      options_(options) {}

void QueryService::RegisterRoutes(HttpServer* server) {
  server_ = server;
  server->Route("/health", [this](const HttpRequest& r) {
    return Dispatch(&health_stats_, /*gated=*/false, r,
                    [this](const HttpRequest& rq, const Deadline&) {
                      return HandleHealth(rq);
                    });
  });
  server->Route("/info", [this](const HttpRequest& r) {
    return Dispatch(&info_stats_, /*gated=*/false, r,
                    [this](const HttpRequest& rq, const Deadline&) {
                      return HandleInfo(rq);
                    });
  });
  server->Route("/detect", [this](const HttpRequest& r) {
    return Dispatch(&detect_stats_, /*gated=*/true, r,
                    [this](const HttpRequest& rq, const Deadline& deadline) {
                      return HandleDetect(rq, deadline);
                    });
  });
  server->Route("/stats", [this](const HttpRequest& r) {
    return Dispatch(&pair_stats_stats_, /*gated=*/true, r,
                    [this](const HttpRequest& rq, const Deadline&) {
                      return HandleStats(rq);
                    });
  });
  server->Route("/continue", [this](const HttpRequest& r) {
    return Dispatch(&continue_stats_, /*gated=*/true, r,
                    [this](const HttpRequest& rq, const Deadline&) {
                      return HandleContinue(rq);
                    });
  });
  if (options_.debug_routes) {
    server->Route("/debug/sleep", [this](const HttpRequest& r) {
      return Dispatch(&sleep_stats_, /*gated=*/true, r,
                      [this](const HttpRequest& rq, const Deadline& deadline) {
                        return HandleDebugSleep(rq, deadline);
                      });
    });
  }
}

Deadline QueryService::RequestDeadline(const HttpRequest& request) const {
  int64_t budget_ms = options_.default_deadline_ms;
  if (auto it = request.query.find("deadline_ms");
      it != request.query.end()) {
    int64_t v;
    if (ParseInt64(it->second, &v) && v > 0) {
      budget_ms = std::min(v, options_.max_deadline_ms);
    }
  }
  return budget_ms > 0 ? Deadline::After(budget_ms) : Deadline::Never();
}

HttpResponse QueryService::Dispatch(RouteStats* stats, bool gated,
                                    const HttpRequest& r,
                                    const DeadlineHandler& handler) {
  stats->requests.fetch_add(1);
  if (gated && options_.max_inflight > 0) {
    int64_t admitted = inflight_.fetch_add(1) + 1;
    if (admitted > static_cast<int64_t>(options_.max_inflight)) {
      inflight_.fetch_sub(1);
      stats->shed.fetch_add(1);
      HttpResponse response = HttpResponse::Error(
          503, "server at capacity, retry later");
      response.headers.emplace_back(
          "Retry-After", std::to_string(options_.retry_after_seconds));
      return response;
    }
  } else if (gated) {
    inflight_.fetch_add(1);
  }

  stats->inflight.fetch_add(1);
  Stopwatch watch;
  HttpResponse response = handler(r, RequestDeadline(r));
  stats->RecordLatency(watch.ElapsedMillis());
  stats->inflight.fetch_sub(1);
  if (gated) inflight_.fetch_sub(1);

  if (response.status == 504) {
    stats->deadline_exceeded.fetch_add(1);
  } else if (response.status >= 500) {
    stats->errors.fetch_add(1);
  }
  return response;
}

ServingStatsSnapshot QueryService::serving_stats() const {
  ServingStatsSnapshot out;
  out.max_inflight = options_.max_inflight;
  out.default_deadline_ms = options_.default_deadline_ms;
  out.inflight = inflight_.load();
  const RouteStats* all[] = {&health_stats_,    &info_stats_,
                             &detect_stats_,    &pair_stats_stats_,
                             &continue_stats_,  &sleep_stats_};
  for (const RouteStats* stats : all) {
    if (stats == &sleep_stats_ && !options_.debug_routes) continue;
    out.routes.push_back(stats->Snapshot());
    out.shed_total += out.routes.back().shed;
  }
  return out;
}

HttpResponse QueryService::HandleHealth(const HttpRequest&) const {
  JsonWriter json;
  json.BeginObject().Key("status").String("ok").EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse QueryService::HandleInfo(const HttpRequest&) const {
  index::PostingCacheStats cache = index_->cache_stats();
  index::IndexReadStats reads = index_->read_stats();
  index::MaintenanceStats maint = index_->maintenance_stats();
  ServingStatsSnapshot serving = serving_stats();
  JsonWriter json;
  json.BeginObject()
      .Key("policy")
      .String(index::PolicyName(index_->options().policy))
      .Key("periods")
      .Int(static_cast<int64_t>(index_->num_periods()))
      .Key("activities")
      .Int(static_cast<int64_t>(index_->dictionary().size()))
      .Key("posting_format")
      .Int(static_cast<int64_t>(index_->posting_format()))
      .Key("cache")
      .BeginObject()
      .Key("capacity_bytes")
      .Int(static_cast<int64_t>(cache.capacity_bytes))
      .Key("bytes")
      .Int(static_cast<int64_t>(cache.bytes))
      .Key("entries")
      .Int(static_cast<int64_t>(cache.entries))
      .Key("hits")
      .Int(static_cast<int64_t>(cache.hits))
      .Key("misses")
      .Int(static_cast<int64_t>(cache.misses))
      .Key("evictions")
      .Int(static_cast<int64_t>(cache.evictions))
      .Key("invalidations")
      .Int(static_cast<int64_t>(cache.invalidations))
      .EndObject()
      .Key("read_stats")
      .BeginObject()
      .Key("postings_decoded")
      .Int(static_cast<int64_t>(reads.postings_decoded))
      .Key("bytes_decoded")
      .Int(static_cast<int64_t>(reads.bytes_decoded))
      .Key("blocks_decoded")
      .Int(static_cast<int64_t>(reads.blocks_decoded))
      .Key("blocks_skipped")
      .Int(static_cast<int64_t>(reads.blocks_skipped))
      .Key("bytes_skipped")
      .Int(static_cast<int64_t>(reads.bytes_skipped))
      .EndObject()
      .Key("maintenance")
      .BeginObject()
      .Key("enabled")
      .Bool(maint.enabled)
      .Key("running")
      .Bool(maint.running)
      .Key("fold_in_progress")
      .Bool(maint.fold_in_progress)
      .Key("cycles")
      .Int(static_cast<int64_t>(maint.cycles))
      .Key("folds_run")
      .Int(static_cast<int64_t>(maint.folds_run))
      .Key("keys_folded")
      .Int(static_cast<int64_t>(maint.keys_folded))
      .Key("bytes_rewritten")
      .Int(static_cast<int64_t>(maint.bytes_rewritten))
      .Key("compactions_run")
      .Int(static_cast<int64_t>(maint.compactions_run))
      .Key("queue_depth")
      .Int(static_cast<int64_t>(maint.queue_depth))
      .Key("pending_bytes")
      .Int(static_cast<int64_t>(maint.pending_bytes))
      .Key("errors")
      .Int(static_cast<int64_t>(maint.errors))
      .Key("last_error")
      .String(maint.last_error)
      .Key("last_cycle_ms")
      .Int(maint.last_cycle_ms)
      .EndObject();

  json.Key("serving")
      .BeginObject()
      .Key("max_inflight")
      .Int(static_cast<int64_t>(serving.max_inflight))
      .Key("default_deadline_ms")
      .Int(serving.default_deadline_ms)
      .Key("inflight")
      .Int(serving.inflight)
      .Key("shed_total")
      .Int(static_cast<int64_t>(serving.shed_total));
  // Execution pools: the per-query fan-out pool and (when registered on a
  // live server) the HTTP worker pool, in the same counter vocabulary.
  auto pool_object = [&json](const ThreadPoolStats& pool) {
    json.BeginObject()
        .Key("threads")
        .Int(static_cast<int64_t>(pool.threads))
        .Key("tasks_executed")
        .Int(static_cast<int64_t>(pool.tasks_executed))
        .Key("inline_runs")
        .Int(static_cast<int64_t>(pool.inline_runs))
        .Key("queue_depth")
        .Int(static_cast<int64_t>(pool.queue_depth))
        .Key("peak_queue_depth")
        .Int(static_cast<int64_t>(pool.peak_queue_depth))
        .EndObject();
  };
  json.Key("pools").BeginObject().Key("query");
  pool_object(query_pool_ != nullptr ? query_pool_->stats()
                                     : ThreadPoolStats{});
  if (server_ != nullptr) {
    json.Key("http");
    pool_object(server_->pool_stats());
  }
  json.EndObject();

  if (server_ != nullptr) {
    HttpServerStats http = server_->stats();
    json.Key("http")
        .BeginObject()
        .Key("workers")
        .Int(static_cast<int64_t>(server_->options().num_threads))
        .Key("connections_accepted")
        .Int(static_cast<int64_t>(http.connections_accepted))
        .Key("requests_served")
        .Int(static_cast<int64_t>(http.requests_served))
        .Key("bad_requests")
        .Int(static_cast<int64_t>(http.bad_requests))
        .Key("timeouts")
        .Int(static_cast<int64_t>(http.timeouts))
        .Key("active_connections")
        .Int(static_cast<int64_t>(http.active_connections))
        .Key("queued_connections")
        .Int(static_cast<int64_t>(http.queued_connections))
        .EndObject();
  }
  json.Key("routes").BeginArray();
  for (const RouteStatsSnapshot& route : serving.routes) {
    json.BeginObject()
        .Key("route")
        .String(route.route)
        .Key("requests")
        .Int(static_cast<int64_t>(route.requests))
        .Key("shed")
        .Int(static_cast<int64_t>(route.shed))
        .Key("deadline_exceeded")
        .Int(static_cast<int64_t>(route.deadline_exceeded))
        .Key("errors")
        .Int(static_cast<int64_t>(route.errors))
        .Key("inflight")
        .Int(route.inflight)
        .Key("latency_samples")
        .Int(static_cast<int64_t>(route.latency_samples))
        .Key("p50_ms")
        .Double(route.p50_ms)
        .Key("p99_ms")
        .Double(route.p99_ms)
        .Key("max_ms")
        .Double(route.max_ms)
        .EndObject();
  }
  json.EndArray().EndObject().EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse QueryService::HandleDetect(const HttpRequest& request,
                                        const Deadline& deadline) const {
  auto q = request.query.find("q");
  if (q == request.query.end()) {
    return HttpResponse::Error(400, "missing q parameter");
  }
  // The full extended language (DESIGN.md §14): disjunction, Kleene+,
  // negation, time windows, compliance templates. Plain sequences compile
  // to the identical Detect join plan inside DetectExtended.
  auto parsed =
      query::ParseExtendedPatternQuery(q->second, index_->dictionary());
  if (!parsed.ok()) {
    return HttpResponse::Error(400, parsed.status().ToString());
  }
  query::DetectionConstraints constraints;
  constraints.deadline = deadline;
  auto matches = qp_.DetectExtended(*parsed, constraints);
  if (!matches.ok()) {
    return QueryError(matches.status());
  }
  return HttpResponse::Json(
      DetectResponseJson(*matches, LimitParam(request, 100)));
}

HttpResponse QueryService::HandleStats(const HttpRequest& request) const {
  auto q = request.query.find("q");
  if (q == request.query.end()) {
    return HttpResponse::Error(400, "missing q parameter");
  }
  auto parsed = query::ParsePatternQuery(q->second, index_->dictionary());
  if (!parsed.ok()) {
    return HttpResponse::Error(400, parsed.status().ToString());
  }
  query::StatisticsOptions options;
  options.include_last_completion = request.query.count("last") > 0;
  auto stats = qp_.Statistics(parsed->pattern, options);
  if (!stats.ok()) {
    return QueryError(stats.status());
  }
  const auto& dict = index_->dictionary();
  if (request.query.count("raw") > 0) {
    // Shard-internal form for the router's merge: integer sums only,
    // per-pair in pattern order. The derived doubles (avg, estimated
    // duration) and the upper bound are recomputed router-side from the
    // merged sums — min-of-sums and sum-then-divide are not expressible
    // over already-derived values.
    JsonWriter json;
    json.BeginObject().Key("rows").BeginArray();
    for (const auto& row : stats->pairs) {
      json.BeginObject()
          .Key("first")
          .String(dict.Name(row.pair.first))
          .Key("second")
          .String(dict.Name(row.pair.second))
          .Key("completions")
          .Int(static_cast<int64_t>(row.total_completions))
          .Key("sum_duration")
          .Int(row.sum_duration);
      if (row.last_completion.has_value()) {
        json.Key("last").Int(*row.last_completion);
      }
      json.EndObject();
    }
    json.EndArray().EndObject();
    return HttpResponse::Json(json.str());
  }
  std::vector<StatsRowView> rows;
  rows.reserve(stats->pairs.size());
  for (const auto& row : stats->pairs) {
    StatsRowView view;
    view.first = dict.Name(row.pair.first);
    view.second = dict.Name(row.pair.second);
    view.completions = row.total_completions;
    view.avg_duration = row.average_duration;
    view.last_completion = row.last_completion;
    rows.push_back(std::move(view));
  }
  return HttpResponse::Json(StatsResponseJson(
      rows, stats->completions_upper_bound, stats->estimated_duration));
}

HttpResponse QueryService::HandleContinue(const HttpRequest& request) const {
  auto q = request.query.find("q");
  if (q == request.query.end()) {
    return HttpResponse::Error(400, "missing q parameter");
  }
  auto parsed = query::ParsePatternQuery(q->second, index_->dictionary());
  if (!parsed.ok()) {
    return HttpResponse::Error(400, parsed.status().ToString());
  }
  std::string mode = "accurate";
  if (auto it = request.query.find("mode"); it != request.query.end()) {
    mode = it->second;
  }
  const auto& dict = index_->dictionary();
  if (request.query.count("raw") > 0) {
    // Shard-internal form for the router's merge (see HandleStats).
    if (mode == "accurate") {
      auto proposals = qp_.ContinueAccurate(parsed->pattern);
      if (!proposals.ok()) return QueryError(proposals.status());
      JsonWriter json;
      json.BeginObject().Key("proposals").BeginArray();
      for (const auto& p : *proposals) {
        json.BeginObject()
            .Key("activity")
            .String(dict.Name(p.activity))
            .Key("id")
            .Int(static_cast<int64_t>(p.activity))
            .Key("completions")
            .Int(static_cast<int64_t>(p.total_completions))
            .Key("sum_duration")
            .Int(p.sum_duration)
            .EndObject();
      }
      json.EndArray().EndObject();
      return HttpResponse::Json(json.str());
    }
    if (mode == "fast") {
      // The Fast heuristic's ingredients rather than its output: the
      // per-candidate counts here are *uncapped* — the whole-pattern cap
      // (Algorithm 4's min with the pairwise bound) is min-of-sums across
      // shards, so only the router can apply it.
      JsonWriter json;
      json.BeginObject().Key("pattern_pairs").BeginArray();
      for (size_t i = 0; i + 1 < parsed->pattern.size(); ++i) {
        auto stats = index_->GetPairStats(
            index::EventTypePair{parsed->pattern.activities[i],
                                 parsed->pattern.activities[i + 1]});
        if (!stats.ok()) return QueryError(stats.status());
        json.Int(static_cast<int64_t>(stats->total_completions));
      }
      json.EndArray().Key("candidates").BeginArray();
      auto candidates =
          index_->GetFollowerStats(parsed->pattern.activities.back());
      if (!candidates.ok()) return QueryError(candidates.status());
      for (const auto& candidate : *candidates) {
        json.BeginObject()
            .Key("activity")
            .String(dict.Name(candidate.other))
            .Key("id")
            .Int(static_cast<int64_t>(candidate.other))
            .Key("completions")
            .Int(static_cast<int64_t>(candidate.total_completions))
            .Key("sum_duration")
            .Int(candidate.sum_duration)
            .EndObject();
      }
      json.EndArray().EndObject();
      return HttpResponse::Json(json.str());
    }
    return HttpResponse::Error(
        400, "raw=1 supports mode=accurate|fast (the router assembles "
             "hybrid from both)");
  }
  Result<std::vector<query::ContinuationProposal>> proposals =
      Status::Internal("unset");
  if (mode == "accurate") {
    proposals = qp_.ContinueAccurate(parsed->pattern);
  } else if (mode == "fast") {
    proposals = qp_.ContinueFast(parsed->pattern);
  } else if (mode == "hybrid") {
    size_t topk = 5;
    if (auto it = request.query.find("topk"); it != request.query.end()) {
      int64_t v;
      if (ParseInt64(it->second, &v) && v >= 0) {
        topk = static_cast<size_t>(v);
      }
    }
    proposals = qp_.ContinueHybrid(parsed->pattern, topk);
  } else {
    return HttpResponse::Error(400, "unknown mode: " + mode);
  }
  if (!proposals.ok()) {
    return QueryError(proposals.status());
  }
  std::vector<ProposalView> views;
  views.reserve(proposals->size());
  for (const auto& p : *proposals) {
    ProposalView view;
    view.activity = dict.Name(p.activity);
    view.completions = p.total_completions;
    view.avg_duration = p.average_duration;
    view.score = p.score;
    views.push_back(std::move(view));
  }
  return HttpResponse::Json(
      ContinueResponseJson(views, LimitParam(request, 20)));
}

HttpResponse QueryService::HandleDebugSleep(const HttpRequest& request,
                                            const Deadline& deadline) const {
  int64_t ms = 100;
  if (auto it = request.query.find("ms"); it != request.query.end()) {
    int64_t v;
    if (ParseInt64(it->second, &v) && v >= 0) ms = std::min(v, int64_t{10000});
  }
  Stopwatch watch;
  while (watch.ElapsedMillis() < static_cast<double>(ms)) {
    if (deadline.Expired()) {
      return HttpResponse::Error(504, "query deadline exceeded");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  JsonWriter json;
  json.BeginObject().Key("slept_ms").Int(ms).EndObject();
  return HttpResponse::Json(json.str());
}

}  // namespace seqdet::server
