#include "server/shard_router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "query/query_processor.h"
#include "server/json.h"
#include "server/query_service.h"

namespace seqdet::server {

namespace {

// Same defaulting as the single-process handlers (query_service.cc), so a
// request without `limit` serializes identically either way.
size_t LimitParam(const HttpRequest& request, size_t fallback) {
  auto it = request.query.find("limit");
  if (it == request.query.end()) return fallback;
  int64_t v;
  return ParseInt64(it->second, &v) && v >= 0 ? static_cast<size_t>(v)
                                              : fallback;
}

std::string_view TrimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Integer aggregates of one merged /continue candidate, keyed by the
/// shard-reported activity id (identical across shards — shard-split
/// pre-interns the full dictionary into every partition).
struct CandidateAgg {
  std::string name;
  uint64_t completions = 0;
  int64_t sum_duration = 0;
};

/// Folds one raw proposal/candidate object into `agg`.
Status AccumulateCandidate(const JsonValue& entry,
                           std::map<int64_t, CandidateAgg>* agg) {
  SEQDET_ASSIGN_OR_RETURN(int64_t id, entry.GetInt("id"));
  SEQDET_ASSIGN_OR_RETURN(std::string name, entry.GetString("activity"));
  SEQDET_ASSIGN_OR_RETURN(int64_t completions, entry.GetInt("completions"));
  SEQDET_ASSIGN_OR_RETURN(int64_t sum_duration, entry.GetInt("sum_duration"));
  CandidateAgg& a = (*agg)[id];
  a.name = std::move(name);
  a.completions += static_cast<uint64_t>(completions);
  a.sum_duration += sum_duration;
  return Status::OK();
}

/// Materializes merged aggregates as ContinuationProposals, recomputing
/// the average exactly as every single-process path does (int64 sum /
/// uint64 count, both widened to double once).
std::vector<query::ContinuationProposal> ProposalsFromAggregates(
    const std::map<int64_t, CandidateAgg>& agg, uint64_t completion_cap) {
  std::vector<query::ContinuationProposal> proposals;
  proposals.reserve(agg.size());
  for (const auto& [id, a] : agg) {
    query::ContinuationProposal p;
    p.activity = static_cast<eventlog::ActivityId>(id);
    p.total_completions = std::min(completion_cap, a.completions);
    p.average_duration =
        a.completions == 0
            ? 0.0
            : static_cast<double>(a.sum_duration) /
                  static_cast<double>(a.completions);
    p.sum_duration = a.sum_duration;
    proposals.push_back(p);
  }
  return proposals;
}

std::vector<ProposalView> ViewsFor(
    const std::vector<query::ContinuationProposal>& proposals,
    const std::map<int64_t, CandidateAgg>& agg) {
  std::vector<ProposalView> views;
  views.reserve(proposals.size());
  for (const auto& p : proposals) {
    ProposalView view;
    view.activity = agg.at(static_cast<int64_t>(p.activity)).name;
    view.completions = p.total_completions;
    view.avg_duration = p.average_duration;
    view.score = p.score;
    views.push_back(std::move(view));
  }
  return views;
}

/// Merged raw `mode=accurate` fan-in: union candidates by id, sum the
/// integer aggregates (a shard without a candidate contributes zero).
Result<std::map<int64_t, CandidateAgg>> MergeAccurateRaw(
    const std::vector<const HttpClient::Response*>& responses) {
  std::map<int64_t, CandidateAgg> agg;
  for (const auto* response : responses) {
    SEQDET_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(response->body));
    SEQDET_ASSIGN_OR_RETURN(const auto* proposals, doc.GetArray("proposals"));
    for (const JsonValue& entry : *proposals) {
      SEQDET_RETURN_IF_ERROR(AccumulateCandidate(entry, &agg));
    }
  }
  return agg;
}

/// Merged raw `mode=fast` fan-in: Algorithm 4 over merged sums — the
/// pattern bound is min over *summed* pair counts (min-of-sums, which no
/// shard can compute locally), candidate counts sum uncapped and the cap
/// applies once, at the router.
struct FastMerge {
  std::map<int64_t, CandidateAgg> agg;
  uint64_t bound = std::numeric_limits<uint64_t>::max();
};

Result<FastMerge> MergeFastRaw(
    const std::vector<const HttpClient::Response*>& responses) {
  FastMerge merged;
  std::vector<uint64_t> pair_sums;
  bool first = true;
  for (const auto* response : responses) {
    SEQDET_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(response->body));
    SEQDET_ASSIGN_OR_RETURN(const auto* pairs, doc.GetArray("pattern_pairs"));
    if (first) {
      pair_sums.assign(pairs->size(), 0);
      first = false;
    } else if (pairs->size() != pair_sums.size()) {
      return Status::Internal("shard pattern_pairs length mismatch");
    }
    for (size_t i = 0; i < pairs->size(); ++i) {
      if (!(*pairs)[i].is_int()) {
        return Status::Internal("non-integer pattern_pairs entry");
      }
      pair_sums[i] += static_cast<uint64_t>((*pairs)[i].int_value());
    }
    SEQDET_ASSIGN_OR_RETURN(const auto* candidates,
                            doc.GetArray("candidates"));
    for (const JsonValue& entry : *candidates) {
      SEQDET_RETURN_IF_ERROR(AccumulateCandidate(entry, &merged.agg));
    }
  }
  for (uint64_t sum : pair_sums) merged.bound = std::min(merged.bound, sum);
  return merged;
}

}  // namespace

// ---------------------------------------------------------------------------
// Shard list parsing
// ---------------------------------------------------------------------------

Result<std::vector<ShardEndpoint>> ParseShardList(std::string_view csv) {
  std::vector<ShardEndpoint> shards;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string_view::npos) comma = csv.size();
    std::string_view token = TrimSpace(csv.substr(start, comma - start));
    start = comma + 1;
    if (token.empty()) continue;
    ShardEndpoint ep;
    std::string_view port_part = token;
    if (size_t colon = token.rfind(':'); colon != std::string_view::npos) {
      std::string_view host = TrimSpace(token.substr(0, colon));
      if (host.empty()) {
        return Status::InvalidArgument("empty host in shard '" +
                                       std::string(token) + "'");
      }
      ep.host = std::string(host);
      port_part = token.substr(colon + 1);
    }
    int64_t port = 0;
    if (!ParseInt64(port_part, &port) || port < 1 || port > 65535) {
      return Status::InvalidArgument("bad shard port in '" +
                                     std::string(token) + "'");
    }
    ep.port = static_cast<uint16_t>(port);
    shards.push_back(std::move(ep));
  }
  if (shards.empty()) {
    return Status::InvalidArgument("empty shard list");
  }
  return shards;
}

// ---------------------------------------------------------------------------
// ScatterState
// ---------------------------------------------------------------------------

/// One fan-out in flight. The handler thread owns the wait loop; attempt
/// tasks on the scatter pool resolve legs under `mu`. Held by shared_ptr
/// from both sides, so an attempt that outlives its request (hedge lost
/// the race, deadline gave up on the shard) lands on live memory and is
/// ignored by the `resolved` check.
struct ShardRouter::ScatterState {
  struct Leg {
    bool resolved = false;
    bool hedge_launched = false;
    bool probe = false;
    size_t outstanding = 0;
    bool have_error = false;
    Status first_error = Status::OK();
    Result<HttpClient::Response> outcome{Status::Internal("pending")};
  };

  explicit ScatterState(size_t num_legs) : legs(num_legs) {}

  /// Fan-out lock. Order (common/sync.h map): ScatterState::mu is held
  /// across the launch loop, which acquires ShardState::mu (Admit) and
  /// ThreadPool::mu_ (Submit) under it — both are cheap bookkeeping
  /// acquisitions, never I/O. The only blocking call under it is the
  /// cv.WaitFor below, which releases mu while waiting.
  Mutex mu;
  CondVar cv;
  Clock::time_point started{};
  std::vector<Leg> legs;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

ShardRouter::ShardRouter(RouterOptions options) : options_(std::move(options)) {
  shards_.reserve(options_.shards.size());
  for (const auto& endpoint : options_.shards) {
    shards_.push_back(std::make_shared<ShardState>(endpoint));
  }
  HttpClientPool::Options pool_options;
  pool_options.max_idle_per_host = options_.max_idle_connections_per_shard;
  pool_options.client.connect_timeout_ms = options_.connect_timeout_ms;
  pool_ = std::make_shared<HttpClientPool>(pool_options);
  size_t threads = options_.scatter_threads != 0
                       ? options_.scatter_threads
                       : 2 * std::max<size_t>(1, shards_.size());
  scatter_pool_ = std::make_unique<ThreadPool>(threads);
}

// The ThreadPool destructor drains queued attempts and joins, so every
// task's captured `this` outlives the task (scatter_pool_ is destroyed
// before any member an attempt touches).
ShardRouter::~ShardRouter() = default;

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

ShardRouter::Admission ShardRouter::Admit(ShardState* shard) const {
  MutexLock lock(shard->mu);
  if (!shard->open) return Admission::kAllow;
  if (!shard->probe_inflight && Clock::now() >= shard->open_until) {
    shard->probe_inflight = true;
    return Admission::kProbe;
  }
  return Admission::kRejected;
}

void ShardRouter::RecordOutcome(ShardState* shard, bool ok,
                                bool was_probe) const {
  MutexLock lock(shard->mu);
  if (was_probe) shard->probe_inflight = false;
  if (ok) {
    shard->consecutive_failures = 0;
    shard->open = false;
    return;
  }
  ++shard->consecutive_failures;
  if (shard->open) {
    // A failed probe (or a stale attempt admitted before the trip):
    // re-arm the cooldown from now.
    shard->open_until =
        Clock::now() + std::chrono::milliseconds(options_.breaker_cooldown_ms);
    return;
  }
  if (options_.breaker_failure_threshold > 0 &&
      shard->consecutive_failures >= options_.breaker_failure_threshold) {
    shard->open = true;
    shard->open_until =
        Clock::now() + std::chrono::milliseconds(options_.breaker_cooldown_ms);
    shard->breaker_opens.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Scatter
// ---------------------------------------------------------------------------

void ShardRouter::LaunchAttempt(const std::shared_ptr<ScatterState>& state,
                                size_t leg, size_t attempt, bool probe,
                                const std::string& target,
                                const Deadline& deadline) {
  std::shared_ptr<ShardState> shard = shards_[leg];
  shard->requests.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<HttpClientPool> pool = pool_;
  scatter_pool_->Submit([this, state, leg, attempt, probe, target, deadline,
                         shard, pool] {
    Result<HttpClient::Response> result = Status::Internal("unset");
    double remaining = deadline.RemainingMillis();
    bool attempted = remaining > 0;
    if (!attempted) {
      // Expired before we could even dial: not the shard's fault, so it
      // is no breaker input — but a probe must release its slot.
      result = Status::Aborted("deadline expired before contacting " +
                               shard->endpoint.ToString());
      if (probe) {
        MutexLock lock(shard->mu);
        shard->probe_inflight = false;
      }
    } else {
      // The transport may block for at most the remaining budget.
      int64_t io_ms = std::isinf(remaining)
                          ? 0
                          : std::max<int64_t>(
                                1, static_cast<int64_t>(std::ceil(remaining)));
      if (attempt == 0) {
        HttpClientPool::Handle handle =
            pool->Acquire(shard->endpoint.host, shard->endpoint.port);
        handle->set_io_timeout_ms(io_ms);
        result = handle->Get(target);
      } else {
        // Hedges deliberately skip the pool: the bet is that the primary's
        // connection (or the worker thread serving it) is stuck, so the
        // retry must not inherit either.
        HttpClient::Options fresh_options;
        fresh_options.connect_timeout_ms = options_.connect_timeout_ms;
        fresh_options.io_timeout_ms = io_ms;
        HttpClient fresh(shard->endpoint.host, shard->endpoint.port,
                         fresh_options);
        result = fresh.Get(target);
      }
      RecordOutcome(shard.get(), result.ok(), probe);
      if (!result.ok()) {
        shard->failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
    MutexLock lock(state->mu);
    ScatterState::Leg& l = state->legs[leg];
    if (l.outstanding > 0) --l.outstanding;
    if (!l.resolved) {
      if (result.ok()) {
        l.resolved = true;
        l.outcome = std::move(result);
        if (attempt > 0) {
          shard->hedge_wins.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        if (!l.have_error) {
          l.have_error = true;
          l.first_error = result.status();
        }
        // A failure only resolves the leg when nothing else is racing for
        // it (the hedge may still come back with an answer).
        if (l.outstanding == 0) {
          l.resolved = true;
          l.outcome = l.first_error;
        }
      }
    }
    state->cv.NotifyAll();
  });
}

std::vector<Result<HttpClient::Response>> ShardRouter::Scatter(
    const std::string& target, const Deadline& deadline) {
  scatters_.fetch_add(1, std::memory_order_relaxed);
  const size_t n = shards_.size();
  auto state = std::make_shared<ScatterState>(n);
  state->started = Clock::now();

  // The per-hop deadline the workers see: the remaining budget minus the
  // router's merge margin, so the slowest shard leaves time to merge.
  std::string hop_target = target;
  if (deadline.has_deadline()) {
    int64_t hop_ms = std::max<int64_t>(
        1, static_cast<int64_t>(
               std::floor(deadline.RemainingMillis() -
                          static_cast<double>(options_.merge_margin_ms))));
    hop_target += hop_target.find('?') == std::string::npos ? '?' : '&';
    hop_target += "deadline_ms=" + std::to_string(hop_ms);
  }

  MutexLock lock(state->mu);
  for (size_t i = 0; i < n; ++i) {
    Admission admission = Admit(shards_[i].get());
    ScatterState::Leg& leg = state->legs[i];
    if (admission == Admission::kRejected) {
      shards_[i]->short_circuits.fetch_add(1, std::memory_order_relaxed);
      leg.resolved = true;
      leg.outcome = Status::IOError("circuit breaker open for " +
                                    shards_[i]->endpoint.ToString());
      continue;
    }
    leg.probe = admission == Admission::kProbe;
    leg.outstanding = 1;
    LaunchAttempt(state, i, /*attempt=*/0, leg.probe, hop_target, deadline);
  }

  const bool hedging = options_.hedge_after_ms > 0;
  const Clock::time_point hedge_at =
      state->started + std::chrono::milliseconds(options_.hedge_after_ms);
  while (true) {
    bool all_resolved = true;
    for (const auto& leg : state->legs) all_resolved &= leg.resolved;
    if (all_resolved) break;

    if (deadline.Expired()) {
      // Give up on the stragglers; their attempts stay in flight on the
      // scatter pool and resolve into this (shared) state harmlessly.
      for (size_t i = 0; i < n; ++i) {
        ScatterState::Leg& leg = state->legs[i];
        if (!leg.resolved) {
          leg.resolved = true;
          leg.outcome = Status::Aborted("deadline expired awaiting " +
                                        shards_[i]->endpoint.ToString());
        }
      }
      break;
    }

    Clock::time_point now = Clock::now();
    if (hedging && now >= hedge_at) {
      for (size_t i = 0; i < n; ++i) {
        ScatterState::Leg& leg = state->legs[i];
        // Probes never hedge: the breaker contract is one request through
        // a half-open breaker.
        if (!leg.resolved && !leg.hedge_launched && !leg.probe) {
          leg.hedge_launched = true;
          leg.outstanding += 1;
          shards_[i]->hedges.fetch_add(1, std::memory_order_relaxed);
          LaunchAttempt(state, i, /*attempt=*/1, /*probe=*/false, hop_target,
                        deadline);
        }
      }
    }

    double wait_ms = 3600e3;
    if (hedging && now < hedge_at) {
      wait_ms = std::min(
          wait_ms,
          std::chrono::duration<double, std::milli>(hedge_at - now).count());
    }
    if (deadline.has_deadline()) {
      wait_ms = std::min(wait_ms, std::max(deadline.RemainingMillis(), 0.0));
    }
    state->cv.WaitFor(state->mu,
                      std::chrono::duration<double, std::milli>(wait_ms + 0.5));
  }

  std::vector<Result<HttpClient::Response>> out;
  out.reserve(n);
  for (auto& leg : state->legs) out.push_back(std::move(leg.outcome));
  return out;
}

// ---------------------------------------------------------------------------
// Fan-in policy
// ---------------------------------------------------------------------------

Deadline ShardRouter::RequestDeadline(const HttpRequest& request) const {
  int64_t budget_ms = options_.default_deadline_ms;
  if (auto it = request.query.find("deadline_ms");
      it != request.query.end()) {
    int64_t v;
    if (ParseInt64(it->second, &v) && v > 0) budget_ms = v;
  }
  if (budget_ms <= 0) return Deadline::Never();
  return Deadline::After(std::min(budget_ms, options_.max_deadline_ms));
}

ShardRouter::FanIn ShardRouter::Triage(
    const std::vector<Result<HttpClient::Response>>& legs) {
  FanIn fan;
  const HttpClient::Response* relay = nullptr;
  std::vector<std::string> failed_shards;
  bool all_timeouts = true;
  std::string detail;
  for (size_t i = 0; i < legs.size(); ++i) {
    if (legs[i].ok()) {
      if (legs[i]->status == 200) {
        fan.ok.push_back(&*legs[i]);
      } else if (relay == nullptr) {
        relay = &*legs[i];
      }
    } else {
      failed_shards.push_back(shards_[i]->endpoint.ToString());
      if (!legs[i].status().IsAborted()) all_timeouts = false;
      if (detail.empty()) detail = legs[i].status().ToString();
    }
  }
  if (relay != nullptr) {
    // A shard *answered* with a rejection (bad pattern, per-hop deadline,
    // shed). The single process would reject identically — relay the
    // first one verbatim rather than inventing a router-flavored error.
    passthrough_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.status = relay->status;
    response.body = relay->body;
    if (auto it = relay->headers.find("content-type");
        it != relay->headers.end()) {
      response.content_type = it->second;
    }
    fan.early = std::move(response);
    return fan;
  }
  if (failed_shards.empty()) return fan;
  if (options_.allow_partial && !fan.ok.empty()) {
    fan.degraded = true;
    return fan;
  }
  partial_503_.fetch_add(1, std::memory_order_relaxed);
  const int status = all_timeouts ? 504 : 503;
  JsonWriter json;
  json.BeginObject()
      .Key("error")
      .String(status == 504 ? "deadline exceeded in shard fan-out"
                            : "shard fan-out failed")
      .Key("failed_shards")
      .BeginArray();
  for (const auto& endpoint : failed_shards) json.String(endpoint);
  json.EndArray().Key("detail").String(detail).EndObject();
  HttpResponse response = HttpResponse::Json(json.str());
  response.status = status;
  fan.early = std::move(response);
  return fan;
}

HttpResponse ShardRouter::MergedResponse(std::string body, bool degraded,
                                         size_t answered) {
  HttpResponse response = HttpResponse::Json(std::move(body));
  if (degraded) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
    response.headers.emplace_back(
        "X-Seqdet-Degraded", std::to_string(answered) + "/" +
                                 std::to_string(shards_.size()) + " shards");
  } else {
    merged_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

HttpResponse ShardRouter::ScatterAndMerge(
    const HttpRequest& request, const std::string& target,
    const std::function<Result<std::string>(
        const std::vector<const HttpClient::Response*>&)>& merge) {
  Deadline deadline = RequestDeadline(request);
  std::vector<Result<HttpClient::Response>> legs = Scatter(target, deadline);
  FanIn fan = Triage(legs);
  if (fan.early.has_value()) return *std::move(fan.early);
  Result<std::string> merged = merge(fan.ok);
  if (!merged.ok()) {
    // A 200 body the merge could not digest is a protocol bug between
    // router and workers (version skew), not a client error.
    return HttpResponse::Error(
        502, "shard merge failed: " + merged.status().ToString());
  }
  return MergedResponse(*std::move(merged), fan.degraded, fan.ok.size());
}

// ---------------------------------------------------------------------------
// Routes
// ---------------------------------------------------------------------------

void ShardRouter::RegisterRoutes(HttpServer* server) {
  server->Route("/health",
                [this](const HttpRequest& r) { return HandleHealth(r); });
  server->Route("/info",
                [this](const HttpRequest& r) { return HandleInfo(r); });
  server->Route("/detect",
                [this](const HttpRequest& r) { return HandleDetect(r); });
  server->Route("/stats",
                [this](const HttpRequest& r) { return HandleStats(r); });
  server->Route("/continue",
                [this](const HttpRequest& r) { return HandleContinue(r); });
}

HttpResponse ShardRouter::HandleHealth(const HttpRequest&) {
  JsonWriter json;
  json.BeginObject().Key("status").String("ok").EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse ShardRouter::HandleInfo(const HttpRequest& request) {
  Deadline deadline = RequestDeadline(request);
  std::vector<Result<HttpClient::Response>> legs = Scatter("/info", deadline);
  RouterStatsSnapshot stats_now = stats();
  JsonWriter json;
  json.BeginObject().Key("router").BeginObject();
  json.Key("shards").Int(static_cast<int64_t>(shards_.size()));
  json.Key("default_deadline_ms").Int(options_.default_deadline_ms);
  json.Key("hedge_after_ms").Int(options_.hedge_after_ms);
  json.Key("allow_partial").Bool(options_.allow_partial);
  json.Key("scatters").Int(static_cast<int64_t>(stats_now.scatters));
  json.Key("merged_ok").Int(static_cast<int64_t>(stats_now.merged_ok));
  json.Key("degraded").Int(static_cast<int64_t>(stats_now.degraded));
  json.Key("partial_failures").Int(static_cast<int64_t>(stats_now.partial_503));
  json.Key("passthrough").Int(static_cast<int64_t>(stats_now.passthrough));
  json.Key("pool")
      .BeginObject()
      .Key("dials")
      .Int(static_cast<int64_t>(stats_now.pool.dials))
      .Key("reuses")
      .Int(static_cast<int64_t>(stats_now.pool.reuses))
      .Key("discards")
      .Int(static_cast<int64_t>(stats_now.pool.discards))
      .Key("idle")
      .Int(static_cast<int64_t>(stats_now.pool.idle))
      .EndObject();
  json.Key("shard_stats").BeginArray();
  for (const auto& shard : stats_now.shards) {
    json.BeginObject()
        .Key("endpoint")
        .String(shard.endpoint)
        .Key("breaker")
        .String(shard.breaker)
        .Key("requests")
        .Int(static_cast<int64_t>(shard.requests))
        .Key("failures")
        .Int(static_cast<int64_t>(shard.failures))
        .Key("hedges")
        .Int(static_cast<int64_t>(shard.hedges))
        .Key("hedge_wins")
        .Int(static_cast<int64_t>(shard.hedge_wins))
        .Key("breaker_opens")
        .Int(static_cast<int64_t>(shard.breaker_opens))
        .Key("short_circuits")
        .Int(static_cast<int64_t>(shard.short_circuits))
        .EndObject();
  }
  json.EndArray().EndObject();
  json.Key("shards").BeginArray();
  for (size_t i = 0; i < legs.size(); ++i) {
    json.BeginObject().Key("endpoint").String(shards_[i]->endpoint.ToString());
    bool embedded = false;
    if (legs[i].ok() && legs[i]->status == 200) {
      // Embed verbatim — but only after a parse proves the splice cannot
      // corrupt the enclosing document.
      if (JsonValue::Parse(legs[i]->body).ok()) {
        json.Key("ok").Bool(true).Key("info").Raw(legs[i]->body);
        embedded = true;
      }
    }
    if (!embedded) {
      std::string error =
          legs[i].ok() ? "shard responded " + std::to_string(legs[i]->status)
                       : legs[i].status().ToString();
      json.Key("ok").Bool(false).Key("error").String(error);
    }
    json.EndObject();
  }
  json.EndArray().EndObject();
  return HttpResponse::Json(json.str());
}

HttpResponse ShardRouter::HandleDetect(const HttpRequest& request) {
  auto q = request.query.find("q");
  if (q == request.query.end()) {
    return HttpResponse::Error(400, "missing q parameter");
  }
  const size_t limit = LimitParam(request, 100);
  std::string target = "/detect?q=" + HttpClient::UrlEncode(q->second) +
                       "&limit=" + std::to_string(limit);
  return ScatterAndMerge(
      request, target,
      [limit](const std::vector<const HttpClient::Response*>& responses)
          -> Result<std::string> {
        int64_t total = 0;
        std::vector<query::PatternMatch> matches;
        for (const auto* response : responses) {
          SEQDET_ASSIGN_OR_RETURN(JsonValue doc,
                                  JsonValue::Parse(response->body));
          SEQDET_ASSIGN_OR_RETURN(int64_t shard_total, doc.GetInt("total"));
          total += shard_total;
          SEQDET_ASSIGN_OR_RETURN(const auto* rows, doc.GetArray("matches"));
          for (const JsonValue& row : *rows) {
            query::PatternMatch match;
            SEQDET_ASSIGN_OR_RETURN(int64_t trace, row.GetInt("trace"));
            match.trace = static_cast<eventlog::TraceId>(trace);
            SEQDET_ASSIGN_OR_RETURN(const auto* timestamps,
                                    row.GetArray("timestamps"));
            for (const JsonValue& ts : *timestamps) {
              if (!ts.is_int()) {
                return Status::Internal("non-integer timestamp in match");
              }
              match.timestamps.push_back(
                  static_cast<eventlog::Timestamp>(ts.int_value()));
            }
            matches.push_back(std::move(match));
          }
        }
        // Traces are disjoint across shards and each shard's matches
        // arrive trace-nondecreasing, so a stable sort by trace is
        // exactly the k-way merge — and reproduces single-process order
        // (its matches are grouped by trace in the same per-trace order
        // the shard produces).
        std::stable_sort(matches.begin(), matches.end(),
                         [](const query::PatternMatch& a,
                            const query::PatternMatch& b) {
                           return a.trace < b.trace;
                         });
        return DetectResponseJson(total, matches, limit);
      });
}

HttpResponse ShardRouter::HandleStats(const HttpRequest& request) {
  auto q = request.query.find("q");
  if (q == request.query.end()) {
    return HttpResponse::Error(400, "missing q parameter");
  }
  const bool include_last = request.query.count("last") > 0;
  std::string target = "/stats?q=" + HttpClient::UrlEncode(q->second) +
                       "&raw=1" + (include_last ? "&last=1" : "");
  return ScatterAndMerge(
      request, target,
      [](const std::vector<const HttpClient::Response*>& responses)
          -> Result<std::string> {
        struct RowAgg {
          std::string first, second;
          uint64_t completions = 0;
          int64_t sum_duration = 0;
          std::optional<eventlog::Timestamp> last;
        };
        std::vector<RowAgg> rows;
        bool first_shard = true;
        for (const auto* response : responses) {
          SEQDET_ASSIGN_OR_RETURN(JsonValue doc,
                                  JsonValue::Parse(response->body));
          SEQDET_ASSIGN_OR_RETURN(const auto* shard_rows,
                                  doc.GetArray("rows"));
          if (first_shard) {
            rows.resize(shard_rows->size());
            first_shard = false;
          } else if (shard_rows->size() != rows.size()) {
            return Status::Internal("shard stats row count mismatch");
          }
          for (size_t i = 0; i < shard_rows->size(); ++i) {
            const JsonValue& row = (*shard_rows)[i];
            RowAgg& agg = rows[i];
            if (agg.first.empty()) {
              SEQDET_ASSIGN_OR_RETURN(agg.first, row.GetString("first"));
              SEQDET_ASSIGN_OR_RETURN(agg.second, row.GetString("second"));
            }
            SEQDET_ASSIGN_OR_RETURN(int64_t completions,
                                    row.GetInt("completions"));
            agg.completions += static_cast<uint64_t>(completions);
            SEQDET_ASSIGN_OR_RETURN(int64_t sum_duration,
                                    row.GetInt("sum_duration"));
            agg.sum_duration += sum_duration;
            if (const JsonValue* last = row.Find("last");
                last != nullptr && last->is_int()) {
              auto ts = static_cast<eventlog::Timestamp>(last->int_value());
              if (!agg.last.has_value() || ts > *agg.last) agg.last = ts;
            }
          }
        }
        // Derived values recomputed from merged integers, in row order,
        // exactly as QueryProcessor::Statistics computes them over the
        // unsharded index.
        uint64_t upper_bound = std::numeric_limits<uint64_t>::max();
        double estimated = 0;
        std::vector<StatsRowView> views;
        views.reserve(rows.size());
        for (const RowAgg& agg : rows) {
          upper_bound = std::min(upper_bound, agg.completions);
          double avg = agg.completions == 0
                           ? 0.0
                           : static_cast<double>(agg.sum_duration) /
                                 static_cast<double>(agg.completions);
          estimated += avg;
          StatsRowView view;
          view.first = agg.first;
          view.second = agg.second;
          view.completions = agg.completions;
          view.avg_duration = avg;
          view.last_completion = agg.last;
          views.push_back(std::move(view));
        }
        return StatsResponseJson(views, upper_bound, estimated);
      });
}

HttpResponse ShardRouter::HandleContinue(const HttpRequest& request) {
  auto q = request.query.find("q");
  if (q == request.query.end()) {
    return HttpResponse::Error(400, "missing q parameter");
  }
  std::string mode = "accurate";
  if (auto it = request.query.find("mode"); it != request.query.end()) {
    mode = it->second;
  }
  const size_t limit = LimitParam(request, 20);
  const std::string encoded_q = HttpClient::UrlEncode(q->second);

  if (mode == "accurate") {
    return ScatterAndMerge(
        request, "/continue?q=" + encoded_q + "&mode=accurate&raw=1",
        [limit](const std::vector<const HttpClient::Response*>& responses)
            -> Result<std::string> {
          SEQDET_ASSIGN_OR_RETURN(auto agg, MergeAccurateRaw(responses));
          auto proposals = ProposalsFromAggregates(
              agg, std::numeric_limits<uint64_t>::max());
          query::QueryProcessor::RankProposals(&proposals);
          return ContinueResponseJson(ViewsFor(proposals, agg), limit);
        });
  }
  if (mode == "fast") {
    return ScatterAndMerge(
        request, "/continue?q=" + encoded_q + "&mode=fast&raw=1",
        [limit](const std::vector<const HttpClient::Response*>& responses)
            -> Result<std::string> {
          SEQDET_ASSIGN_OR_RETURN(auto merged, MergeFastRaw(responses));
          auto proposals = ProposalsFromAggregates(merged.agg, merged.bound);
          query::QueryProcessor::RankProposals(&proposals);
          return ContinueResponseJson(ViewsFor(proposals, merged.agg), limit);
        });
  }
  if (mode != "hybrid") {
    return HttpResponse::Error(400, "unknown mode: " + mode);
  }

  // Hybrid is assembled router-side from the two raw primitives, the same
  // two steps as QueryProcessor::ContinueHybrid: a merged Fast pass ranks
  // every candidate, then an Accurate pass verifies the top-k. (The
  // shards verify all candidates, not just k — the raw protocol has no
  // candidate filter; DESIGN.md §15 notes the tradeoff.)
  size_t topk = 5;
  if (auto it = request.query.find("topk"); it != request.query.end()) {
    int64_t v;
    if (ParseInt64(it->second, &v) && v >= 0) topk = static_cast<size_t>(v);
  }
  Deadline deadline = RequestDeadline(request);
  std::vector<Result<HttpClient::Response>> fast_legs =
      Scatter("/continue?q=" + encoded_q + "&mode=fast&raw=1", deadline);
  FanIn fast_fan = Triage(fast_legs);
  if (fast_fan.early.has_value()) return *std::move(fast_fan.early);
  Result<FastMerge> fast = MergeFastRaw(fast_fan.ok);
  if (!fast.ok()) {
    return HttpResponse::Error(
        502, "shard merge failed: " + fast.status().ToString());
  }
  auto fast_proposals = ProposalsFromAggregates(fast->agg, fast->bound);
  query::QueryProcessor::RankProposals(&fast_proposals);
  if (topk == 0) {
    return MergedResponse(
        ContinueResponseJson(ViewsFor(fast_proposals, fast->agg), limit),
        fast_fan.degraded, fast_fan.ok.size());
  }
  const size_t verify = std::min(topk, fast_proposals.size());
  std::unordered_set<int64_t> top_ids;
  for (size_t i = 0; i < verify; ++i) {
    top_ids.insert(static_cast<int64_t>(fast_proposals[i].activity));
  }

  std::vector<Result<HttpClient::Response>> accurate_legs =
      Scatter("/continue?q=" + encoded_q + "&mode=accurate&raw=1", deadline);
  FanIn accurate_fan = Triage(accurate_legs);
  if (accurate_fan.early.has_value()) return *std::move(accurate_fan.early);
  Result<std::map<int64_t, CandidateAgg>> accurate =
      MergeAccurateRaw(accurate_fan.ok);
  if (!accurate.ok()) {
    return HttpResponse::Error(
        502, "shard merge failed: " + accurate.status().ToString());
  }
  std::map<int64_t, CandidateAgg> verified;
  for (const auto& [id, agg] : *accurate) {
    if (top_ids.count(id) > 0) verified.emplace(id, agg);
  }
  auto proposals = ProposalsFromAggregates(
      verified, std::numeric_limits<uint64_t>::max());
  query::QueryProcessor::RankProposals(&proposals);
  return MergedResponse(
      ContinueResponseJson(ViewsFor(proposals, verified), limit),
      fast_fan.degraded || accurate_fan.degraded,
      std::min(fast_fan.ok.size(), accurate_fan.ok.size()));
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

RouterStatsSnapshot ShardRouter::stats() const {
  RouterStatsSnapshot snapshot;
  snapshot.scatters = scatters_.load(std::memory_order_relaxed);
  snapshot.merged_ok = merged_ok_.load(std::memory_order_relaxed);
  snapshot.degraded = degraded_.load(std::memory_order_relaxed);
  snapshot.partial_503 = partial_503_.load(std::memory_order_relaxed);
  snapshot.passthrough = passthrough_.load(std::memory_order_relaxed);
  snapshot.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStatsSnapshot s;
    s.endpoint = shard->endpoint.ToString();
    {
      MutexLock lock(shard->mu);
      s.breaker = !shard->open ? "closed"
                  : shard->probe_inflight || Clock::now() >= shard->open_until
                      ? "half_open"
                      : "open";
    }
    s.requests = shard->requests.load(std::memory_order_relaxed);
    s.failures = shard->failures.load(std::memory_order_relaxed);
    s.hedges = shard->hedges.load(std::memory_order_relaxed);
    s.hedge_wins = shard->hedge_wins.load(std::memory_order_relaxed);
    s.breaker_opens = shard->breaker_opens.load(std::memory_order_relaxed);
    s.short_circuits = shard->short_circuits.load(std::memory_order_relaxed);
    snapshot.shards.push_back(std::move(s));
  }
  snapshot.pool = pool_->stats();
  return snapshot;
}

}  // namespace seqdet::server
