#include "server/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

#include "common/strings.h"

namespace seqdet::server {

std::string HttpClient::UrlEncode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool unreserved = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                      c == '-' || c == '_' || c == '.' || c == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out += StringPrintf("%%%02X", static_cast<unsigned char>(c));
    }
  }
  return out;
}

void HttpClient::Close() {
  fd_.Reset();
  buffer_.clear();
}

void HttpClient::set_io_timeout_ms(int64_t ms) {
  options_.io_timeout_ms = ms;
  if (fd_.ok()) (void)ApplyIoTimeout();
}

Status HttpClient::ApplyIoTimeout() {
  if (options_.io_timeout_ms <= 0) return Status::OK();
  timeval tv{};
  tv.tv_sec = options_.io_timeout_ms / 1000;
  tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0 ||
      ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::IOError("setsockopt(SO_RCVTIMEO) failed");
  }
  return Status::OK();
}

Status HttpClient::Connect() {
  Close();
  in_addr ip{};
  const std::string& host = host_ == "localhost" ? "127.0.0.1" : host_;
  if (::inet_pton(AF_INET, host.c_str(), &ip) != 1) {
    return Status::InvalidArgument(
        "http client hosts must be numeric IPv4 or localhost: " + host_);
  }
  fd_.Reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.ok()) return Status::IOError("socket() failed");
  int one = 1;
  ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = ip;
  addr.sin_port = htons(port_);

  auto fail = [this, &host](const char* what) {
    Status status = Status::IOError(
        StringPrintf("%s(%s:%u) failed", what, host.c_str(), port_));
    Close();
    return status;
  };
  if (options_.connect_timeout_ms <= 0) {
    if (::connect(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      return fail("connect");
    }
  } else {
    // Non-blocking connect + poll: a dead or partitioned worker costs
    // connect_timeout_ms, not the kernel's multi-minute SYN retry budget.
    int flags = ::fcntl(fd_.get(), F_GETFL, 0);
    ::fcntl(fd_.get(), F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    if (rc < 0 && errno != EINPROGRESS) return fail("connect");
    if (rc < 0) {
      pollfd pfd{fd_.get(), POLLOUT, 0};
      int polled = ::poll(&pfd, 1,
                          static_cast<int>(options_.connect_timeout_ms));
      if (polled == 0) {
        Close();
        return Status::Aborted(StringPrintf(
            "connect(%s:%u) timed out", host.c_str(), port_));
      }
      if (polled < 0) return fail("poll");
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
          err != 0) {
        return fail("connect");
      }
    }
    ::fcntl(fd_.get(), F_SETFL, flags);
  }
  return ApplyIoTimeout();
}

Status HttpClient::SendRequest(const std::string& target) {
  std::string raw =
      "GET " + target + " HTTP/1.1\r\nHost: " + host_ + "\r\n\r\n";
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd_.get(), raw.data() + sent, raw.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return Status::IOError("send() failed");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpClient::Response> HttpClient::ReadResponse(bool* timed_out) {
  *timed_out = false;
  auto recv_some = [this, timed_out](char* buf,
                                     size_t len) -> Result<size_t> {
    ssize_t n = ::recv(fd_.get(), buf, len, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      *timed_out = true;
      return Status::Aborted(StringPrintf("read from %s:%u timed out",
                                          host_.c_str(), port_));
    }
    return Status::IOError("connection closed mid-response");
  };

  char chunk[4096];
  size_t header_end;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    SEQDET_ASSIGN_OR_RETURN(size_t n, recv_some(chunk, sizeof(chunk)));
    buffer_.append(chunk, n);
  }

  Response response;
  size_t line_end = buffer_.find("\r\n");
  {
    // Status line: HTTP/1.1 SP CODE SP REASON.
    std::string_view line(buffer_.data(), line_end);
    size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos) {
      return Status::IOError("malformed status line");
    }
    int64_t code;
    if (!ParseInt64(Trim(line.substr(sp1 + 1, 4)), &code)) {
      return Status::IOError("malformed status code");
    }
    response.status = static_cast<int>(code);
  }
  for (std::string_view rest =
           std::string_view(buffer_).substr(line_end + 2,
                                            header_end - line_end);
       !rest.empty();) {
    size_t eol = rest.find("\r\n");
    if (eol == std::string_view::npos) break;
    std::string_view field = rest.substr(0, eol);
    rest = rest.substr(eol + 2);
    size_t colon = field.find(':');
    if (colon == std::string_view::npos) continue;
    std::string key(Trim(field.substr(0, colon)));
    for (auto& c : key) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    response.headers[std::move(key)] =
        std::string(Trim(field.substr(colon + 1)));
  }

  size_t content_length = 0;
  if (auto it = response.headers.find("content-length");
      it != response.headers.end()) {
    int64_t v;
    if (!ParseInt64(it->second, &v) || v < 0) {
      return Status::IOError("bad Content-Length in response");
    }
    content_length = static_cast<size_t>(v);
  }
  size_t body_start = header_end + 4;
  while (buffer_.size() < body_start + content_length) {
    SEQDET_ASSIGN_OR_RETURN(size_t n, recv_some(chunk, sizeof(chunk)));
    buffer_.append(chunk, n);
  }
  response.body = buffer_.substr(body_start, content_length);
  buffer_.erase(0, body_start + content_length);

  if (auto it = response.headers.find("connection");
      it != response.headers.end() && it->second == "close") {
    Close();
  }
  return response;
}

Result<HttpClient::Response> HttpClient::Get(const std::string& target) {
  // One transparent retry: a keep-alive connection the server closed
  // (request limit, drain, idle timeout) fails on send or on the response
  // read; a fresh connection distinguishes that from a dead server. A
  // *timeout* is different — the server may still be working on the
  // request — so it is returned as-is on any connection, fresh or reused,
  // and the caller (the router's hedging layer) decides whether a second
  // attempt is worth its cost.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool fresh = !fd_.ok();
    if (fresh) SEQDET_RETURN_IF_ERROR(Connect());
    Status sent = SendRequest(target);
    if (sent.ok()) {
      bool timed_out = false;
      auto response = ReadResponse(&timed_out);
      if (response.ok()) {
        if (!fresh) ++reused_requests_;
        return response;
      }
      if (timed_out || fresh) {
        Close();
        return response.status();
      }
    } else if (fresh) {
      return sent;
    }
    Close();
  }
  return Status::IOError("request failed after reconnect");
}

// ---------------------------------------------------------------------------
// HttpClientPool
// ---------------------------------------------------------------------------

void HttpClientPool::Handle::Release() {
  if (pool_ == nullptr || client_ == nullptr) {
    pool_ = nullptr;
    client_.reset();
    return;
  }
  pool_->Return(key_, std::move(client_));
  pool_ = nullptr;
}

HttpClientPool::Handle HttpClientPool::Acquire(const std::string& host,
                                               uint16_t port) {
  std::string key = host + ":" + std::to_string(port);
  {
    MutexLock lock(mu_);
    auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<HttpClient> client = std::move(it->second.back());
      it->second.pop_back();
      ++reuses_;
      return Handle(this, std::move(key), std::move(client));
    }
    ++dials_;
  }
  return Handle(this, std::move(key),
                std::make_unique<HttpClient>(host, port, options_.client));
}

void HttpClientPool::Return(const std::string& key,
                            std::unique_ptr<HttpClient> client) {
  MutexLock lock(mu_);
  // A client that errored already closed its socket — dropping it here is
  // what keeps one bad response from burning the next request's latency
  // on a doomed reuse. Excess returns close too (bounded idle fds).
  if (client->connected() &&
      idle_[key].size() < options_.max_idle_per_host) {
    idle_[key].push_back(std::move(client));
    ++returns_;
  } else {
    ++discards_;
  }
}

HttpClientPool::Stats HttpClientPool::stats() const {
  MutexLock lock(mu_);
  Stats out;
  out.dials = dials_;
  out.reuses = reuses_;
  out.returns = returns_;
  out.discards = discards_;
  for (const auto& [key, clients] : idle_) out.idle += clients.size();
  return out;
}

}  // namespace seqdet::server
