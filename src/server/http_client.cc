#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

#include "common/strings.h"

namespace seqdet::server {

std::string HttpClient::UrlEncode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool unreserved = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                      c == '-' || c == '_' || c == '.' || c == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out += StringPrintf("%%%02X", static_cast<unsigned char>(c));
    }
  }
  return out;
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status HttpClient::Connect() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IOError("socket() failed");
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    return Status::IOError(StringPrintf("connect(127.0.0.1:%u) failed",
                                        port_));
  }
  return Status::OK();
}

Status HttpClient::SendRequest(const std::string& target) {
  std::string raw =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n =
        ::send(fd_, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return Status::IOError("send() failed");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpClient::Response> HttpClient::ReadResponse() {
  char chunk[4096];
  size_t header_end;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return Status::IOError("connection closed mid-response");
    buffer_.append(chunk, static_cast<size_t>(n));
  }

  Response response;
  size_t line_end = buffer_.find("\r\n");
  {
    // Status line: HTTP/1.1 SP CODE SP REASON.
    std::string_view line(buffer_.data(), line_end);
    size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos) {
      return Status::IOError("malformed status line");
    }
    int64_t code;
    if (!ParseInt64(Trim(line.substr(sp1 + 1, 4)), &code)) {
      return Status::IOError("malformed status code");
    }
    response.status = static_cast<int>(code);
  }
  for (std::string_view rest =
           std::string_view(buffer_).substr(line_end + 2,
                                            header_end - line_end);
       !rest.empty();) {
    size_t eol = rest.find("\r\n");
    if (eol == std::string_view::npos) break;
    std::string_view field = rest.substr(0, eol);
    rest = rest.substr(eol + 2);
    size_t colon = field.find(':');
    if (colon == std::string_view::npos) continue;
    std::string key(Trim(field.substr(0, colon)));
    for (auto& c : key) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    response.headers[std::move(key)] =
        std::string(Trim(field.substr(colon + 1)));
  }

  size_t content_length = 0;
  if (auto it = response.headers.find("content-length");
      it != response.headers.end()) {
    int64_t v;
    if (!ParseInt64(it->second, &v) || v < 0) {
      return Status::IOError("bad Content-Length in response");
    }
    content_length = static_cast<size_t>(v);
  }
  size_t body_start = header_end + 4;
  while (buffer_.size() < body_start + content_length) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return Status::IOError("connection closed mid-body");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  response.body = buffer_.substr(body_start, content_length);
  buffer_.erase(0, body_start + content_length);

  if (auto it = response.headers.find("connection");
      it != response.headers.end() && it->second == "close") {
    Close();
  }
  return response;
}

Result<HttpClient::Response> HttpClient::Get(const std::string& target) {
  // One transparent retry: a keep-alive connection the server closed
  // (request limit, drain, idle timeout) fails on send or on the response
  // read; a fresh connection distinguishes that from a dead server.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool fresh = fd_ < 0;
    if (fresh) SEQDET_RETURN_IF_ERROR(Connect());
    Status sent = SendRequest(target);
    if (sent.ok()) {
      auto response = ReadResponse();
      if (response.ok()) return response;
      if (fresh) return response.status();
    } else if (fresh) {
      return sent;
    }
    Close();
  }
  return Status::IOError("request failed after reconnect");
}

}  // namespace seqdet::server
