#include "server/json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/strings.h"

namespace seqdet::server {

namespace {
constexpr size_t kMaxDepth = 64;
}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    SEQDET_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StringPrintf("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(StringPrintf("expected '%c'", c));
    }
    return Status::OK();
  }

  Status ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("bad literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return ConsumeLiteral("true");
      case 'f':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return ConsumeLiteral("false");
      case 'n':
        out->type_ = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    out->type_ = JsonValue::Type::kObject;
    SEQDET_RETURN_IF_ERROR(Expect('{'));
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      SEQDET_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      SEQDET_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      SEQDET_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object_[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      SEQDET_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    out->type_ = JsonValue::Type::kArray;
    SEQDET_RETURN_IF_ERROR(Expect('['));
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      SEQDET_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      SEQDET_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseString(std::string* out) {
    SEQDET_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("short \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // BMP code points as UTF-8 (surrogate pairs are not needed by
          // any serializer in this codebase, so they parse as-is).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string lexeme(text_.substr(start, pos_ - start));
    if (lexeme.empty() || lexeme == "-") return Error("bad number");
    if (integral) {
      int64_t v;
      if (ParseInt64(lexeme, &v)) {
        out->type_ = JsonValue::Type::kInt;
        out->int_ = v;
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(lexeme.c_str(), &end);
    if (end != lexeme.c_str() + lexeme.size() || errno == ERANGE) {
      return Error("bad number");
    }
    out->type_ = JsonValue::Type::kDouble;
    out->double_ = d;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Result<int64_t> JsonValue::GetInt(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_int()) {
    return Status::InvalidArgument("json: missing integer field '" + key +
                                   "'");
  }
  return v->int_value();
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("json: missing string field '" + key +
                                   "'");
  }
  return v->string_value();
}

Result<const std::vector<JsonValue>*> JsonValue::GetArray(
    const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument("json: missing array field '" + key +
                                   "'");
  }
  return &v->array();
}

}  // namespace seqdet::server
