#ifndef SEQDET_SERVER_JSON_H_
#define SEQDET_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace seqdet::server {

/// A parsed JSON document — the router's view of a shard response. The
/// writer side (JsonWriter in http_server.h) existed first; this is its
/// inverse, added with the scatter-gather router (DESIGN.md §15) whose
/// merge step must read worker responses back.
///
/// Integers and doubles are distinct: a numeric lexeme without '.', 'e'
/// or 'E' that fits int64 parses as kInt. The router's byte-identity
/// guarantee rests on this — every associative aggregate (counts,
/// durations, timestamps) crosses the wire as an integer, is merged as an
/// integer, and only the final serialization recomputes derived doubles,
/// with the same code the single-process handler uses. Doubles are never
/// parsed-and-reserialized on the merge path.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// Parses one JSON document (trailing whitespace allowed, trailing
  /// garbage is an error). Depth is capped defensively: shard responses
  /// nest a handful of levels, not hundreds.
  static Result<JsonValue> Parse(std::string_view text);

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  /// kInt or kDouble, widened.
  double double_value() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience accessors for the merge code: Find + type check in one
  /// step, with an explicit error naming the key.
  Result<int64_t> GetInt(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<const std::vector<JsonValue>*> GetArray(const std::string& key)
      const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace seqdet::server

#endif  // SEQDET_SERVER_JSON_H_
