#ifndef SEQDET_SERVER_SHARD_ROUTER_H_
#define SEQDET_SERVER_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "server/http_client.h"
#include "server/http_server.h"

namespace seqdet::server {

/// One worker process of a sharded deployment (a `seqdet serve` over one
/// trace-hash partition, see index/trace_shard.h and `seqdet shard-split`).
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parses "host:port,port,host:port,..." (a bare port means 127.0.0.1).
Result<std::vector<ShardEndpoint>> ParseShardList(std::string_view csv);

/// Failure-handling and deadline knobs of the scatter-gather front end
/// (DESIGN.md §15 documents the policy in prose).
struct RouterOptions {
  std::vector<ShardEndpoint> shards;

  /// Deadline budget for requests without their own `deadline_ms`
  /// (clamped to max_deadline_ms). Unlike the single-process default this
  /// is non-zero: a router exists to bound tail latency, and every
  /// internal wait (connect, read, hedge, breaker) is budgeted out of it.
  int64_t default_deadline_ms = 2000;
  int64_t max_deadline_ms = 600000;
  /// Slice of the budget reserved for the router's own merge + serialize
  /// after the slowest shard answers; the per-hop deadline forwarded to
  /// workers is (remaining - merge_margin_ms), floored at 1ms.
  int64_t merge_margin_ms = 50;

  /// Hedged retry: when a shard has not answered this long after the
  /// scatter, a second attempt races it on a fresh connection to the same
  /// worker (single-replica deployment — the hedge bets the *connection*
  /// or a stuck worker thread is the problem, not the data). First
  /// response wins; 0 disables hedging.
  int64_t hedge_after_ms = 250;
  /// Ceiling on connection establishment per attempt (also clamped to the
  /// remaining budget). Keeps a black-holed worker from eating the whole
  /// deadline in SYN retries.
  int64_t connect_timeout_ms = 250;

  /// Circuit breaker, per shard: this many *consecutive* transport
  /// failures open it; while open, requests fail the shard instantly
  /// (no connect attempt). After breaker_cooldown_ms one probe request is
  /// let through — success closes the breaker, failure re-arms the
  /// cooldown.
  size_t breaker_failure_threshold = 3;
  int64_t breaker_cooldown_ms = 1000;

  /// Partial-result policy. false (default): any shard failure fails the
  /// query with 503 naming the shards (merged answers stay exact or
  /// absent). true: if at least one shard answered, merge what arrived
  /// and return 200 with an X-Seqdet-Degraded header — for deployments
  /// that prefer availability over completeness.
  bool allow_partial = false;

  /// Max idle keep-alive connections pooled per shard.
  size_t max_idle_connections_per_shard = 4;
  /// Scatter executor width; 0 = 2 * shards (every shard's primary and
  /// hedge of one request can run concurrently).
  size_t scatter_threads = 0;
};

struct ShardStatsSnapshot {
  std::string endpoint;
  std::string breaker;  // "closed" | "open" | "half_open"
  uint64_t requests = 0;        // attempts dispatched (hedges included)
  uint64_t failures = 0;        // attempts that failed at the transport
  uint64_t hedges = 0;          // hedge attempts launched
  uint64_t hedge_wins = 0;      // requests resolved by the hedge
  uint64_t breaker_opens = 0;   // closed -> open transitions
  uint64_t short_circuits = 0;  // legs rejected by an open breaker
};

struct RouterStatsSnapshot {
  uint64_t scatters = 0;       // fan-outs issued
  uint64_t merged_ok = 0;      // 200s assembled from full fan-in
  uint64_t degraded = 0;       // partial 200s (allow_partial)
  uint64_t partial_503 = 0;    // failed fan-ins surfaced as 503/504
  uint64_t passthrough = 0;    // shard 4xx/504 relayed verbatim
  std::vector<ShardStatsSnapshot> shards;
  HttpClientPool::Stats pool;
};

/// The scatter-gather front end of a trace-sharded deployment: one
/// process speaking the exact /detect, /stats and /continue dialect of
/// QueryService, fanning every query out to N workers over HttpClient and
/// merging their answers.
///
/// Merge contract (DESIGN.md §15): with all shards healthy, every merged
/// response is byte-identical to the same query against one
/// `seqdet serve` over the unsharded index. This works because traces are
/// disjoint across shards and every cross-shard aggregate is merged in
/// its associative integer form: /detect match blocks concatenate by
/// ascending trace id, counts and duration sums add, and derived doubles
/// (averages, scores, bounds) are recomputed from the merged integers by
/// the same code the single process runs (query_service serializers,
/// QueryProcessor::RankProposals). router_differential_test enforces the
/// guarantee over seeded pattern corpora at 1/2/4/8 shards.
///
/// Failure policy: per-shard circuit breakers, hedged retries for
/// stragglers, per-hop deadlines carved from the request budget; a
/// request never outlives its deadline by more than the merge margin —
/// SIGKILLing a worker mid-scatter costs one timeout, not a hang
/// (router_fault_test).
class ShardRouter {
 public:
  explicit ShardRouter(RouterOptions options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Registers /health /info /detect /stats /continue on `server`.
  void RegisterRoutes(HttpServer* server);

  RouterStatsSnapshot stats() const;

  const RouterOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Per-shard breaker + counters, shared with in-flight attempt tasks so
  /// a late (orphaned) attempt can record its outcome safely even while
  /// the router shuts down.
  struct ShardState {
    explicit ShardState(ShardEndpoint ep) : endpoint(std::move(ep)) {}

    const ShardEndpoint endpoint;

    /// Breaker state lock. Order (common/sync.h map): acquired under the
    /// fan-out's ScatterState::mu (Admit runs inside the launch loop);
    /// nothing is acquired under it and no I/O happens inside it — the
    /// breaker decides, the attempt task does the blocking work after.
    Mutex mu;
    size_t consecutive_failures GUARDED_BY(mu) = 0;
    bool open GUARDED_BY(mu) = false;
    bool probe_inflight GUARDED_BY(mu) = false;
    Clock::time_point open_until GUARDED_BY(mu){};

    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> hedges{0};
    std::atomic<uint64_t> hedge_wins{0};
    std::atomic<uint64_t> breaker_opens{0};
    std::atomic<uint64_t> short_circuits{0};
  };

  enum class Admission { kAllow, kProbe, kRejected };

  /// State of one fan-out, shared between the handler thread (which
  /// waits) and its attempt tasks on the scatter pool (which resolve).
  struct ScatterState;

  Admission Admit(ShardState* shard) const;
  void RecordOutcome(ShardState* shard, bool ok, bool was_probe) const;

  /// Launches one attempt against shard `leg` on the scatter pool. Called
  /// with state->mu held (Scatter's launch loop) — legal because it only
  /// queues the task (ScatterState::mu -> ThreadPool::mu_ in the
  /// common/sync.h lock-order map); the blocking transport work runs on
  /// the pool task with no router lock held.
  void LaunchAttempt(const std::shared_ptr<ScatterState>& state, size_t leg,
                     size_t attempt, bool probe, const std::string& target,
                     const Deadline& deadline);

  /// Scatters GET `target` (per-hop deadline_ms appended per shard) to
  /// every shard; resolves when all legs resolve or the deadline expires.
  /// Element i is shard i's response or its transport error. Blocking:
  /// the handler thread waits out the fan-in (bounded by the deadline).
  SEQDET_BLOCKING std::vector<Result<HttpClient::Response>> Scatter(
      const std::string& target, const Deadline& deadline);

  /// The request's budget: `deadline_ms` (clamped) or the router default.
  Deadline RequestDeadline(const HttpRequest& request) const;

  /// The failure-policy decision over one fan-in.
  struct FanIn {
    /// The 200 responses the merge may consume.
    std::vector<const HttpClient::Response*> ok;
    /// Set when the fan-in decided the response without a merge: a shard
    /// rejection relayed verbatim (passthrough), or a 503/504 for a
    /// failed fan-out.
    std::optional<HttpResponse> early;
    /// allow_partial kicked in: merge `ok` but mark the response degraded.
    bool degraded = false;
  };
  FanIn Triage(const std::vector<Result<HttpClient::Response>>& legs);

  /// Wraps a merged body: 200, plus the X-Seqdet-Degraded header and the
  /// degraded/merged_ok accounting.
  HttpResponse MergedResponse(std::string body, bool degraded,
                              size_t answered);

  /// Shared fan-out + failure triage for the single-scatter routes:
  /// `merge` sees only 200 responses and returns the merged body.
  HttpResponse ScatterAndMerge(
      const HttpRequest& request, const std::string& target,
      const std::function<Result<std::string>(
          const std::vector<const HttpClient::Response*>&)>& merge);

  HttpResponse HandleHealth(const HttpRequest& request);
  HttpResponse HandleInfo(const HttpRequest& request);
  HttpResponse HandleDetect(const HttpRequest& request);
  HttpResponse HandleStats(const HttpRequest& request);
  HttpResponse HandleContinue(const HttpRequest& request);

  RouterOptions options_;
  std::vector<std::shared_ptr<ShardState>> shards_;
  std::shared_ptr<HttpClientPool> pool_;
  std::unique_ptr<ThreadPool> scatter_pool_;

  std::atomic<uint64_t> scatters_{0};
  std::atomic<uint64_t> merged_ok_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> partial_503_{0};
  std::atomic<uint64_t> passthrough_{0};
};

}  // namespace seqdet::server

#endif  // SEQDET_SERVER_SHARD_ROUTER_H_
