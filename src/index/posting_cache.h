#ifndef SEQDET_INDEX_POSTING_CACHE_H_
#define SEQDET_INDEX_POSTING_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "index/pair.h"

namespace seqdet::index {

/// Aggregate counters of a PostingCache (summed over its shards).
struct PostingCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // entries dropped to honor the byte budget
  uint64_t invalidations = 0;  // entries dropped because their version aged
  size_t entries = 0;          // live entries
  size_t bytes = 0;            // live charged bytes
  size_t capacity_bytes = 0;   // configured budget (0 = disabled)
};

/// A sharded, versioned LRU cache of decoded+sorted posting lists — the
/// repo's analogue of the Cassandra row cache the paper leans on for
/// repeated pair reads (§3.1, §6).
///
/// Two entry granularities share the cache:
///  * whole-list entries keyed by (period, EventTypePair) — decoded,
///    sorted full posting lists (Get/Put);
///  * block entries keyed by (period, EventTypePair, block ordinal) —
///    one decoded v2 posting block each (GetBlock/PutBlock), filled by the
///    trace-selective read path so hot blocks stay decoded while cold
///    blocks stay compressed in the store.
/// Values are immutable `shared_ptr<const vector<PairOccurrence>>`
/// snapshots, so any number of concurrent queries share one decoded copy
/// without copying or locking beyond the brief shard-mutex critical
/// section of the lookup itself.
///
/// Consistency is by version validation, never by key enumeration: every
/// entry is tagged with the storage table's Kv::Version() read *before* the
/// posting bytes were read (see kv.h for why that order is what makes a
/// matching tag prove freshness). A lookup presents the current version; a
/// tag mismatch invalidates the entry lazily. Writers (Update, compaction,
/// new periods) therefore never touch the cache — their version bump is the
/// invalidation.
///
/// Byte-budgeted: `capacity_bytes` is split evenly across the shards and
/// least-recently-used entries are evicted per shard. A capacity of 0
/// disables the cache entirely (every Get misses, Put is a no-op).
class PostingCache {
 public:
  using Snapshot = std::shared_ptr<const std::vector<PairOccurrence>>;

  /// The pseudo-period under which the cross-period merged list is cached
  /// (tagged with the sum of all period-table versions).
  static constexpr uint32_t kMergedPeriod = 0xffffffffu;

  /// The pseudo-block ordinal of whole-list entries.
  static constexpr uint32_t kWholeList = 0xffffffffu;

  explicit PostingCache(size_t capacity_bytes, size_t num_shards = 16);

  PostingCache(const PostingCache&) = delete;
  PostingCache& operator=(const PostingCache&) = delete;

  bool enabled() const { return capacity_bytes_ > 0; }
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// Returns the cached snapshot for (period, pair) if present and still
  /// tagged with `version`; null on miss. A version mismatch drops the
  /// stale entry and counts as invalidation + miss.
  Snapshot Get(uint32_t period, const EventTypePair& pair, uint64_t version);

  /// Inserts (or replaces) the snapshot for (period, pair) tagged with
  /// `version`, evicting LRU entries to stay within the shard budget.
  /// Snapshots larger than a whole shard's budget are not cached.
  void Put(uint32_t period, const EventTypePair& pair, uint64_t version,
           Snapshot postings);

  /// Block-granularity variants: the snapshot holds the decoded postings
  /// of one v2 block, keyed by its ordinal within the stored value. The
  /// version tag covers the block layout too — any table mutation
  /// (append, fold, compaction) bumps the version, so a stale ordinal can
  /// never alias a reorganized value.
  Snapshot GetBlock(uint32_t period, const EventTypePair& pair,
                    uint32_t block, uint64_t version);
  void PutBlock(uint32_t period, const EventTypePair& pair, uint32_t block,
                uint64_t version, Snapshot postings);

  /// Drops every entry (counters are kept).
  void Clear();

  PostingCacheStats stats() const;

  /// Bytes charged for a snapshot (payload + bookkeeping overhead).
  static size_t ChargedBytes(const Snapshot& postings);

 private:
  struct Key {
    uint32_t period = 0;
    EventTypePair pair;
    uint32_t block = kWholeList;

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = (static_cast<uint64_t>(k.pair.first) << 32) | k.pair.second;
      h ^= (static_cast<uint64_t>(k.period) + 0x9e3779b97f4a7c15ULL) +
           (h << 6) + (h >> 2);
      h ^= (static_cast<uint64_t>(k.block) + 0x9e3779b97f4a7c15ULL) +
           (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  struct Entry {
    uint64_t version = 0;
    size_t bytes = 0;
    Snapshot postings;
    std::list<Key>::iterator lru_it;  // position in Shard::lru
  };

  struct Shard {
    /// Leaf lock (common/sync.h map): critical sections are pure map/LRU
    /// bookkeeping — no other mutex, no I/O, no allocation-heavy decode.
    /// Which shard's mu a method takes depends on the key hash, so the
    /// per-method negative annotations other classes carry cannot name it;
    /// seqdet-lint's nested-acquisition rule covers it instead.
    mutable Mutex mu;
    std::list<Key> lru GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<Key, Entry, KeyHash> map GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
    // Counters live under mu; Get/Put take it anyway.
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
    uint64_t invalidations GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash{}(key) % shards_.size()];
  }

  // Removes `it` from `shard`.
  void EraseLocked(Shard& shard,
                   std::unordered_map<Key, Entry, KeyHash>::iterator it)
      REQUIRES(shard.mu);

  size_t capacity_bytes_;
  size_t shard_capacity_bytes_;
  std::vector<Shard> shards_;
};

}  // namespace seqdet::index

#endif  // SEQDET_INDEX_POSTING_CACHE_H_
