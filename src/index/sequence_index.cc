#include "index/sequence_index.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/coding.h"
#include "common/strings.h"
#include "common/sync.h"

namespace seqdet::index {

using eventlog::Event;
using eventlog::EventLog;
using eventlog::Timestamp;
using eventlog::Trace;
using eventlog::TraceId;

namespace {
constexpr std::string_view kPeriodCountKey = "period_count";
constexpr std::string_view kActivitiesKey = "activities";
constexpr std::string_view kShardCountKey = "shard_count";
constexpr std::string_view kPolicyKey = "policy";
constexpr std::string_view kPostingFormatKey = "posting_format";
// Present (any value) while a v1 -> v2 posting upgrade is in flight. Written
// durably before the first value rewrite and cleared after the format flip,
// so a crash mid-upgrade is detected and rolled forward on reopen instead
// of serving mixed-format values with a v1 decoder.
constexpr std::string_view kPostingUpgradeKey = "posting_upgrade";
// Highest segment file format ever written by this index. Roll-forward
// only: once a fold has emitted an SDSEG2 segment the index keeps writing
// v2 even when reopened with a v1-configured Database, so segment files
// never oscillate between formats across restarts. v1 segments remain
// readable either way.
constexpr std::string_view kSegmentFormatKey = "segment_format";

// Saturating subtract: concurrent fold passes (service + a manual
// FoldPostings) may both observe and consume overlapping pending load;
// clamping at zero keeps the counters meaningful instead of wrapping.
void ConsumePending(std::atomic<uint64_t>& counter, uint64_t amount) {
  uint64_t current = counter.load(std::memory_order_relaxed);
  while (!counter.compare_exchange_weak(
      current, current >= amount ? current - amount : 0,
      std::memory_order_relaxed)) {
  }
}
}  // namespace

SequenceIndex::SequenceIndex(storage::Database* db,
                             const IndexOptions& options)
    : db_(db), options_(options), cache_(options.cache_bytes) {
  size_t threads = options_.num_threads == 0
                       ? ThreadPool::HardwareConcurrency()
                       : options_.num_threads;
  pool_ = std::make_unique<ThreadPool>(threads);
}

Result<std::unique_ptr<SequenceIndex>> SequenceIndex::Open(
    storage::Database* db, const IndexOptions& options) {
  auto index =
      std::unique_ptr<SequenceIndex>(new SequenceIndex(db, options));
  SEQDET_RETURN_IF_ERROR(index->OpenTables());
  if (options.maintenance.auto_fold) {
    // The pending counters only see appends made through this process, so
    // seed them from the on-disk fragmentation: a service opening an
    // already-fragmented index (e.g. built without --auto-fold) should fold
    // it instead of waiting for fresh appends.
    auto frag = index->PostingFragmentationStats();
    if (frag.ok() && frag->fragmented_keys > 0) {
      index->pending_fold_bytes_.fetch_add(frag->fragment_bytes,
                                           std::memory_order_relaxed);
      index->pending_fold_ops_.fetch_add(frag->fragmented_keys,
                                         std::memory_order_relaxed);
    }
    index->maintenance_ = std::make_unique<MaintenanceService>(
        index.get(), options.maintenance);
    index->maintenance_->Start();
  }
  return index;
}

SequenceIndex::~SequenceIndex() {
  if (maintenance_ != nullptr) maintenance_->Stop();
}

Status SequenceIndex::OpenTables() {
  SEQDET_ASSIGN_OR_RETURN(storage::Table * meta,
                          db_->GetOrCreateTable("meta"));
  meta_ = meta;

  // The shard count of the physical tables is persisted so reopening with
  // different options cannot mis-route keys. Its absence also identifies a
  // freshly created index (the key is written on first open).
  bool fresh_index = false;
  uint64_t shards = 0;
  {
    std::string value;
    Status s = meta_->Get(kShardCountKey, &value);
    if (s.ok()) {
      std::string_view cursor(value);
      if (!GetVarint64(&cursor, &shards) || shards == 0) {
        return Status::Corruption("bad meta shard_count");
      }
    } else if (s.IsNotFound()) {
      fresh_index = true;
      shards = options_.storage_shards != 0
                   ? options_.storage_shards
                   : std::min<size_t>(16, 2 * pool_->num_threads());
      std::string encoded;
      PutVarint64(&encoded, shards);
      SEQDET_RETURN_IF_ERROR(meta_->Put(kShardCountKey, encoded));
    } else {
      return s;
    }
  }
  shards_ = static_cast<size_t>(shards);

  // Posting-list value format. Persisted because stored bytes are only
  // decodable with the format that wrote them; an index predating the
  // field (no key, but not fresh) is v1 flat. FoldPostings() upgrades.
  {
    std::string value;
    Status s = meta_->Get(kPostingFormatKey, &value);
    if (s.ok()) {
      std::string_view cursor(value);
      uint64_t format = 0;
      if (!GetVarint64(&cursor, &format) ||
          (format != kPostingFormatFlat && format != kPostingFormatBlocked)) {
        return Status::Corruption("bad meta posting_format");
      }
      posting_format_ = static_cast<uint32_t>(format);
    } else if (s.IsNotFound()) {
      if (fresh_index) {
        posting_format_ = options_.posting_format != 0
                              ? options_.posting_format
                              : kPostingFormatBlocked;
        if (posting_format_ != kPostingFormatFlat &&
            posting_format_ != kPostingFormatBlocked) {
          return Status::InvalidArgument("bad IndexOptions::posting_format");
        }
      } else {
        posting_format_ = kPostingFormatFlat;
      }
      SEQDET_RETURN_IF_ERROR(PersistPostingFormat());
    } else {
      return s;
    }
  }

  // Segment file format marker. The effective format is the max of the
  // stored marker and the configured format: a database that ever wrote
  // SDSEG2 keeps writing it (roll-forward, mirroring posting_upgrade), and
  // an old index opened by a new binary upgrades durably on first open.
  {
    uint64_t configured = db_->segment_format();
    uint64_t stored = 0;
    std::string value;
    Status s = meta_->Get(kSegmentFormatKey, &value);
    if (s.ok()) {
      std::string_view cursor(value);
      if (!GetVarint64(&cursor, &stored) || stored < 1 || stored > 2) {
        return Status::Corruption("bad meta segment_format");
      }
    } else if (!s.IsNotFound()) {
      return s;
    }
    uint64_t effective = std::max<uint64_t>(configured, stored);
    if (effective < 1 || effective > 2) {
      return Status::InvalidArgument("bad segment format_version");
    }
    if (effective != stored) {
      std::string encoded;
      PutVarint64(&encoded, effective);
      SEQDET_RETURN_IF_ERROR(meta_->Put(kSegmentFormatKey, encoded));
    }
    // Apply to the already-open meta table and to every table opened below.
    db_->SetSegmentFormat(static_cast<uint32_t>(effective));
  }

  // The detection policy is baked into the stored pair semantics; reopening
  // an SC index with STNM options (or vice versa) would silently return
  // wrong results, so it is persisted and checked.
  {
    std::string value;
    Status s = meta_->Get(kPolicyKey, &value);
    if (s.ok()) {
      Policy stored;
      if (!ParsePolicyName(value, &stored)) {
        return Status::Corruption("bad meta policy: " + value);
      }
      if (stored != options_.policy) {
        return Status::InvalidArgument(
            StringPrintf("index was built with policy %s but opened with %s",
                         PolicyName(stored), PolicyName(options_.policy)));
      }
    } else if (s.IsNotFound()) {
      SEQDET_RETURN_IF_ERROR(
          meta_->Put(kPolicyKey, PolicyName(options_.policy)));
    } else {
      return s;
    }
  }

  auto open = [this](const std::string& name) -> Result<storage::Kv*> {
    auto sharded = db_->GetOrCreateShardedTable(name, shards_);
    if (!sharded.ok()) return sharded.status();
    return static_cast<storage::Kv*>(*sharded);
  };

  SEQDET_ASSIGN_OR_RETURN(storage::Kv * seq, open("seq"));
  seq_ = std::make_unique<SeqTable>(seq);
  SEQDET_ASSIGN_OR_RETURN(storage::Kv * count, open("count"));
  count_ = std::make_unique<CountTable>(count);
  SEQDET_ASSIGN_OR_RETURN(storage::Kv * rcount, open("rcount"));
  reverse_count_ = std::make_unique<CountTable>(rcount);
  SEQDET_ASSIGN_OR_RETURN(storage::Kv * lastchecked, open("lastchecked"));
  last_checked_ = std::make_unique<LastCheckedTable>(lastchecked);

  // Recover the period count (>= 1).
  uint64_t periods = 1;
  std::string value;
  Status s = meta_->Get(kPeriodCountKey, &value);
  if (s.ok()) {
    std::string_view cursor(value);
    if (!GetVarint64(&cursor, &periods) || periods == 0) {
      return Status::Corruption("bad meta period_count");
    }
  } else if (!s.IsNotFound()) {
    return s;
  }
  for (uint64_t p = 0; p < periods; ++p) {
    SEQDET_ASSIGN_OR_RETURN(
        storage::Kv * t,
        open(StringPrintf("index_p%llu",
                          static_cast<unsigned long long>(p))));
    index_tables_.push_back(
        std::make_unique<PairIndexTable>(t, posting_format_));
  }
  SEQDET_RETURN_IF_ERROR(LoadDictionary());
  SEQDET_RETURN_IF_ERROR(PersistPeriodCount());

  // Roll forward an interrupted v1 -> v2 posting upgrade before serving
  // any reads: with the marker set, values may be mixed v1/v2 and neither
  // decoder alone is safe. UpgradePostingFormat is idempotent (values
  // already rewritten re-encode from their v2 decoding).
  {
    std::string value;
    Status s = meta_->Get(kPostingUpgradeKey, &value);
    if (s.ok()) {
      SEQDET_RETURN_IF_ERROR(UpgradePostingFormat(nullptr, {}));
    } else if (!s.IsNotFound()) {
      return s;
    }
  }
  return Status::OK();
}

Status SequenceIndex::PersistPostingFormat() {
  std::string value;
  PutVarint64(&value, posting_format_);
  return meta_->Put(kPostingFormatKey, value);
}

Status SequenceIndex::LoadDictionary() {
  std::string value;
  Status s = meta_->Get(kActivitiesKey, &value);
  if (s.IsNotFound()) return Status::OK();
  SEQDET_RETURN_IF_ERROR(s);
  std::string_view cursor(value);
  while (!cursor.empty()) {
    std::string_view name;
    if (!GetLengthPrefixed(&cursor, &name)) {
      return Status::Corruption("bad meta activities list");
    }
    dictionary_.Intern(name);
  }
  return Status::OK();
}

Status SequenceIndex::PersistDictionary() {
  std::string value;
  for (const std::string& name : dictionary_.names()) {
    PutLengthPrefixed(&value, name);
  }
  return meta_->Put(kActivitiesKey, value);
}

Status SequenceIndex::PersistPeriodCount() {
  std::string value;
  PutVarint64(&value, index_tables_.size());
  return meta_->Put(kPeriodCountKey, value);
}

Status SequenceIndex::StartNewPeriod() {
  SEQDET_ASSIGN_OR_RETURN(
      storage::ShardedTable * t,
      db_->GetOrCreateShardedTable(
          StringPrintf("index_p%llu",
                       static_cast<unsigned long long>(index_tables_.size())),
          shards_));
  index_tables_.push_back(
      std::make_unique<PairIndexTable>(t, posting_format_));
  return PersistPeriodCount();
}

Result<UpdateStats> SequenceIndex::Update(const EventLog& new_events) {
  // Algorithm 1. Each trace is independent ("each trace is processed
  // separately in parallel using Spark", §4), so the batch is partitioned
  // into contiguous chunks across the pool; every worker stages into its
  // own WriteBatches and commits them to the (thread-safe) tables.
  // Remap the batch's activity ids (which are local to its own dictionary)
  // into the index's persistent dictionary by name — what keeps ids stable
  // across batches and restarts.
  std::vector<eventlog::ActivityId> remap;
  remap.reserve(new_events.dictionary().size());
  bool identity = true;
  for (const std::string& name : new_events.dictionary().names()) {
    eventlog::ActivityId id = dictionary_.Intern(name);
    if (id != remap.size()) identity = false;
    remap.push_back(id);
  }
  SEQDET_RETURN_IF_ERROR(PersistDictionary());

  const auto& traces = new_events.traces();
  const size_t num_chunks =
      std::min<size_t>(std::max<size_t>(1, pool_->num_threads()),
                       std::max<size_t>(1, traces.size()));
  const size_t per_chunk = (traces.size() + num_chunks - 1) / num_chunks;

  PairIndexTable* active_index = index_tables_.back().get();

  std::atomic<size_t> pairs_extracted{0};
  std::atomic<size_t> pairs_indexed{0};
  std::atomic<size_t> events_appended{0};
  Mutex error_mu;
  Status first_error;

  auto process_chunk = [&](size_t begin, size_t end) {
    storage::WriteBatch seq_batch, index_batch, lastchecked_batch;
    std::vector<PairRow> rows;
    // Count/ReverseCount deltas aggregate across the whole chunk (one delta
    // per pair per chunk, not per trace) — Count reads decode every stored
    // delta, so keeping the delta count low is what keeps the Statistics
    // and Fast-continuation queries O(#followers).
    std::unordered_map<EventTypePair, PairCountStats, EventTypePairHash>
        count_deltas;

    auto fail = [&](const Status& s) {
      MutexLock lock(error_mu);
      if (first_error.ok()) first_error = s;
    };

    for (size_t t = begin; t < end; ++t) {
      const Trace& incoming = traces[t];
      if (incoming.empty()) continue;

      // Line 2: rebuild the full trace sequence as in the Seq table.
      std::vector<Event> stored;
      if (options_.maintain_seq) {
        auto stored_result = seq_->Get(incoming.id);
        if (!stored_result.ok()) {
          fail(stored_result.status());
          return;
        }
        stored = std::move(stored_result).value();
        if (!std::is_sorted(stored.begin(), stored.end())) {
          std::sort(stored.begin(), stored.end());
        }
      }

      std::vector<Event> incoming_events;
      incoming_events.reserve(incoming.events.size());
      for (const Event& e : incoming.events) {
        incoming_events.push_back(identity ? e
                                           : Event{remap[e.activity], e.ts});
      }
      std::stable_sort(incoming_events.begin(), incoming_events.end());

      // Fresh events = incoming minus stored (multiset difference), so a
      // replayed batch is fully idempotent: it neither re-indexes pairs
      // (LastChecked) nor duplicates the Seq table.
      std::vector<Event> fresh_events;
      fresh_events.reserve(incoming_events.size());
      {
        size_t si = 0;
        for (const Event& e : incoming_events) {
          while (si < stored.size() && stored[si] < e) ++si;
          if (si < stored.size() && stored[si] == e) {
            ++si;  // already stored; consume one occurrence
          } else {
            fresh_events.push_back(e);
          }
        }
      }

      Trace full;
      full.id = incoming.id;
      full.events.resize(stored.size() + fresh_events.size());
      std::merge(stored.begin(), stored.end(), fresh_events.begin(),
                 fresh_events.end(), full.events.begin());
      const size_t stored_count = stored.size();

      // create_pairs: any of the Section 4 flavors.
      rows.clear();
      ExtractPairs(full, options_.policy, options_.method, &rows);
      pairs_extracted.fetch_add(rows.size(), std::memory_order_relaxed);

      // Group by pair so LastChecked is consulted once per (pair, trace).
      // Sorting the flat row vector is considerably cheaper than building a
      // per-trace map — the grouping is on the hot path of every build.
      std::sort(rows.begin(), rows.end(),
                [](const PairRow& a, const PairRow& b) {
                  if (a.pair != b.pair) return a.pair < b.pair;
                  return a.occurrence < b.occurrence;
                });

      std::vector<PairOccurrence> occurrences;
      for (size_t row_begin = 0; row_begin < rows.size();) {
        size_t row_end = row_begin + 1;
        while (row_end < rows.size() &&
               rows[row_end].pair == rows[row_begin].pair) {
          ++row_end;
        }
        const EventTypePair pair = rows[row_begin].pair;
        occurrences.clear();
        for (size_t r = row_begin; r < row_end; ++r) {
          occurrences.push_back(rows[r].occurrence);
        }
        row_begin = row_end;
        Timestamp last_completion = std::numeric_limits<Timestamp>::min();
        if (options_.maintain_last_checked && stored_count > 0) {
          auto lt = last_checked_->Get(pair, full.id);
          if (!lt.ok()) {
            fail(lt.status());
            return;
          }
          if (lt.value().has_value()) last_completion = *lt.value();
        }

        // Lines 9-10 of Algorithm 1, with the guard on the *completion*
        // timestamp rather than the paper's first-event timestamp: under SC
        // consecutive completions of a self-pair share an event
        // (ts_first == previous ts_second), so `ev_a.ts > lt` would drop a
        // genuinely new completion. `ts_second > lt` is exact for both
        // policies (STNM completions never overlap, SC completions have
        // strictly increasing end timestamps).
        std::vector<PairOccurrence> fresh;
        Timestamp newest = last_completion;
        for (const PairOccurrence& occurrence : occurrences) {
          if (occurrence.ts_second > last_completion) {
            fresh.push_back(occurrence);
            newest = std::max(newest, occurrence.ts_second);
          }
        }
        if (fresh.empty()) continue;
        pairs_indexed.fetch_add(fresh.size(), std::memory_order_relaxed);

        active_index->StageAppend(pair, fresh, &index_batch);
        if (options_.maintain_last_checked) {
          last_checked_->StagePut(pair, full.id, newest, &lastchecked_batch);
        }
        if (options_.maintain_counts) {
          PairCountStats& delta = count_deltas[pair];
          delta.total_completions += fresh.size();
          for (const PairOccurrence& occurrence : fresh) {
            delta.sum_duration += occurrence.ts_second - occurrence.ts_first;
          }
        }
      }

      events_appended.fetch_add(fresh_events.size(),
                                std::memory_order_relaxed);
      if (options_.maintain_seq) {
        seq_->StageAppend(full.id, fresh_events, &seq_batch);
      }
    }

    // Line 14: append the staged postings.
    auto commit = [&](storage::Kv* table, const storage::WriteBatch& b) {
      if (b.empty()) return;
      Status s = table->Apply(b);
      if (!s.ok()) fail(s);
    };
    // Feed the maintenance thresholds: posting bytes/records staged by this
    // chunk count as pending fold load until a fold pass consumes them.
    if (!index_batch.empty()) {
      uint64_t staged_bytes = 0;
      for (const storage::Record& r : index_batch.records()) {
        staged_bytes += r.value.size();
      }
      pending_fold_bytes_.fetch_add(staged_bytes, std::memory_order_relaxed);
      pending_fold_ops_.fetch_add(index_batch.records().size(),
                                  std::memory_order_relaxed);
    }
    commit(active_index->table(), index_batch);
    if (options_.maintain_seq) commit(seq_->table(), seq_batch);
    if (options_.maintain_counts) {
      storage::WriteBatch count_batch, rcount_batch;
      for (const auto& [pair, stats] : count_deltas) {
        PairCountStats delta = stats;
        delta.other = pair.second;
        count_->StageDelta(pair.first, delta, &count_batch);
        delta.other = pair.first;
        reverse_count_->StageDelta(pair.second, delta, &rcount_batch);
      }
      commit(count_->table(), count_batch);
      commit(reverse_count_->table(), rcount_batch);
    }
    if (options_.maintain_last_checked) {
      commit(last_checked_->table(), lastchecked_batch);
    }
  };

  if (num_chunks <= 1) {
    process_chunk(0, traces.size());
  } else {
    std::vector<std::future<void>> futures;
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t begin = c * per_chunk;
      size_t end = std::min(traces.size(), begin + per_chunk);
      if (begin >= end) break;
      futures.push_back(
          pool_->Submit([&process_chunk, begin, end] {
            process_chunk(begin, end);
          }));
    }
    for (auto& f : futures) f.get();
  }
  if (!first_error.ok()) return first_error;

  UpdateStats stats;
  stats.traces_processed = traces.size();
  stats.events_appended = events_appended.load();
  stats.pairs_extracted = pairs_extracted.load();
  stats.pairs_indexed = pairs_indexed.load();
  return stats;
}

Status SequenceIndex::PruneTrace(TraceId trace) {
  if (!options_.maintain_seq) {
    return Status::Unsupported("pruning requires the Seq table");
  }
  SEQDET_ASSIGN_OR_RETURN(auto events, seq_->Get(trace));
  storage::WriteBatch seq_batch, lastchecked_batch;
  seq_->StageDelete(trace, &seq_batch);

  if (options_.maintain_last_checked) {
    std::unordered_set<eventlog::ActivityId> distinct;
    for (const Event& e : events) distinct.insert(e.activity);
    for (eventlog::ActivityId a : distinct) {
      for (eventlog::ActivityId b : distinct) {
        last_checked_->StageDelete(EventTypePair{a, b}, trace,
                                   &lastchecked_batch);
      }
    }
    SEQDET_RETURN_IF_ERROR(
        last_checked_->table()->Apply(lastchecked_batch));
  }
  return seq_->table()->Apply(seq_batch);
}

Result<std::vector<PairOccurrence>> SequenceIndex::ReadPeriodPostings(
    size_t period, const EventTypePair& pair) const {
  std::string value;
  Status s = index_tables_[period]->table()->Get(
      PairIndexTable::EncodeKey(pair), &value);
  if (s.IsNotFound()) return std::vector<PairOccurrence>{};
  SEQDET_RETURN_IF_ERROR(s);
  std::vector<PairOccurrence> postings;
  if (!index_tables_[period]->DecodeValue(value, &postings)) {
    return Status::Corruption("bad Index posting list");
  }
  read_counters_.bytes_decoded.fetch_add(value.size(),
                                         std::memory_order_relaxed);
  read_counters_.postings_decoded.fetch_add(postings.size(),
                                            std::memory_order_relaxed);
  if (!std::is_sorted(postings.begin(), postings.end())) {
    std::sort(postings.begin(), postings.end());
  }
  return postings;
}

Result<PostingCache::Snapshot> SequenceIndex::GetPairPostingsShared(
    const EventTypePair& pair) const {
  // Versions are read BEFORE the posting bytes (see Kv::Version() for the
  // tagging protocol); each period list is cached under its own period key,
  // the cross-period merge under kMergedPeriod tagged with the version sum.
  const size_t periods = index_tables_.size();
  uint64_t merged_version = 0;
  std::vector<uint64_t> period_versions(periods, 0);
  for (size_t p = 0; p < periods; ++p) {
    period_versions[p] = index_tables_[p]->table()->Version();
    merged_version += period_versions[p];
  }
  if (periods > 1) {
    if (auto hit = cache_.Get(PostingCache::kMergedPeriod, pair,
                              merged_version)) {
      return hit;
    }
  }

  std::vector<PostingCache::Snapshot> per_period;
  per_period.reserve(periods);
  for (size_t p = 0; p < periods; ++p) {
    auto snapshot =
        cache_.Get(static_cast<uint32_t>(p), pair, period_versions[p]);
    if (snapshot == nullptr) {
      SEQDET_ASSIGN_OR_RETURN(auto postings, ReadPeriodPostings(p, pair));
      snapshot = std::make_shared<const std::vector<PairOccurrence>>(
          std::move(postings));
      cache_.Put(static_cast<uint32_t>(p), pair, period_versions[p],
                 snapshot);
    }
    per_period.push_back(std::move(snapshot));
  }
  if (periods == 1) return per_period[0];

  // Per-period lists are already sorted, so merge instead of re-sorting the
  // concatenation: append each period and inplace_merge at the boundary.
  auto merged = std::make_shared<std::vector<PairOccurrence>>();
  size_t total = 0;
  for (const auto& snapshot : per_period) total += snapshot->size();
  merged->reserve(total);
  for (const auto& snapshot : per_period) {
    const size_t boundary = merged->size();
    merged->insert(merged->end(), snapshot->begin(), snapshot->end());
    if (boundary > 0) {
      std::inplace_merge(merged->begin(),
                         merged->begin() + static_cast<ptrdiff_t>(boundary),
                         merged->end());
    }
  }
  PostingCache::Snapshot result = std::move(merged);
  cache_.Put(PostingCache::kMergedPeriod, pair, merged_version, result);
  return result;
}

Result<std::vector<PairOccurrence>> SequenceIndex::GetPairPostings(
    const EventTypePair& pair) const {
  SEQDET_ASSIGN_OR_RETURN(auto snapshot, GetPairPostingsShared(pair));
  return *snapshot;
}

Result<PairPostingSummary> SequenceIndex::GetPairSummary(
    const EventTypePair& pair) const {
  PairPostingSummary summary;
  std::vector<TraceInterval> intervals;
  const std::string key = PairIndexTable::EncodeKey(pair);
  for (size_t p = 0; p < index_tables_.size(); ++p) {
    std::string value;
    Status s = index_tables_[p]->table()->Get(key, &value);
    if (s.IsNotFound()) continue;
    SEQDET_RETURN_IF_ERROR(s);
    if (index_tables_[p]->format_version() == kPostingFormatBlocked) {
      std::vector<PostingBlockRef> refs;
      if (!ParsePostingBlockRefs(value, &refs)) {
        return Status::Corruption("bad Index posting list");
      }
      for (const PostingBlockRef& ref : refs) {
        intervals.push_back(
            TraceInterval{ref.header.min_trace, ref.header.max_trace});
        summary.postings += ref.header.count;
      }
    } else {
      // Flat values carry no skip metadata: count is a byte estimate and
      // the trace range is unbounded.
      summary.exact = false;
      intervals.push_back(
          TraceInterval{0, std::numeric_limits<uint64_t>::max()});
      summary.postings += value.size() / 12 + 1;
    }
  }
  summary.traces = TraceIntervalSet::FromIntervals(std::move(intervals));
  return summary;
}

Result<PostingCache::Snapshot> SequenceIndex::GetPairPostingsFiltered(
    const EventTypePair& pair, const TraceIntervalSet& candidates) const {
  const std::string key = PairIndexTable::EncodeKey(pair);
  auto merged = std::make_shared<std::vector<PairOccurrence>>();
  for (size_t p = 0; p < index_tables_.size(); ++p) {
    // Version before bytes — same tagging protocol as the shared path.
    const uint64_t version = index_tables_[p]->table()->Version();
    if (auto whole = cache_.Get(static_cast<uint32_t>(p), pair, version)) {
      // An already decoded full list is cheaper than any selective decode;
      // the extra postings are a harmless superset.
      merged->insert(merged->end(), whole->begin(), whole->end());
      continue;
    }
    std::string value;
    Status s = index_tables_[p]->table()->Get(key, &value);
    if (s.IsNotFound()) continue;
    SEQDET_RETURN_IF_ERROR(s);
    if (index_tables_[p]->format_version() != kPostingFormatBlocked) {
      std::vector<PairOccurrence> postings;
      if (!PairIndexTable::DecodePostings(value, &postings)) {
        return Status::Corruption("bad Index posting list");
      }
      read_counters_.bytes_decoded.fetch_add(value.size(),
                                             std::memory_order_relaxed);
      read_counters_.postings_decoded.fetch_add(postings.size(),
                                                std::memory_order_relaxed);
      for (const PairOccurrence& posting : postings) {
        if (candidates.Contains(posting.trace)) merged->push_back(posting);
      }
      continue;
    }
    std::vector<PostingBlockRef> refs;
    if (!ParsePostingBlockRefs(value, &refs)) {
      return Status::Corruption("bad Index posting list");
    }
    for (size_t b = 0; b < refs.size(); ++b) {
      const PostingBlockRef& ref = refs[b];
      if (!candidates.Overlaps(ref.header.min_trace, ref.header.max_trace)) {
        read_counters_.blocks_skipped.fetch_add(1, std::memory_order_relaxed);
        read_counters_.bytes_skipped.fetch_add(ref.header.byte_len,
                                               std::memory_order_relaxed);
        continue;
      }
      auto block = cache_.GetBlock(static_cast<uint32_t>(p), pair,
                                   static_cast<uint32_t>(b), version);
      if (block == nullptr) {
        auto decoded = std::make_shared<std::vector<PairOccurrence>>();
        decoded->reserve(ref.header.count);
        if (!DecodePostingBlockPayload(
                std::string_view(value).substr(
                    ref.payload_offset,
                    static_cast<size_t>(ref.header.byte_len)),
                ref.header, decoded.get())) {
          return Status::Corruption("bad Index posting block");
        }
        read_counters_.blocks_decoded.fetch_add(1, std::memory_order_relaxed);
        read_counters_.bytes_decoded.fetch_add(ref.header.byte_len,
                                               std::memory_order_relaxed);
        read_counters_.postings_decoded.fetch_add(ref.header.count,
                                                  std::memory_order_relaxed);
        block = decoded;
        cache_.PutBlock(static_cast<uint32_t>(p), pair,
                        static_cast<uint32_t>(b), version, block);
      }
      merged->insert(merged->end(), block->begin(), block->end());
    }
  }
  // Folded blocks are globally sorted but append fragments (and period
  // boundaries) interleave traces; normalize like every other read path.
  if (!std::is_sorted(merged->begin(), merged->end())) {
    std::sort(merged->begin(), merged->end());
  }
  return PostingCache::Snapshot(std::move(merged));
}

Result<std::vector<PostingCache::Snapshot>>
SequenceIndex::GetPairPostingsBatch(
    const std::vector<PairPostingsRequest>& requests, ThreadPool* pool) const {
  std::vector<PostingCache::Snapshot> results(requests.size());
  std::vector<Status> statuses(requests.size());
  auto fetch_one = [&](size_t i) {
    const PairPostingsRequest& request = requests[i];
    auto fetched = request.filter != nullptr
                       ? GetPairPostingsFiltered(request.pair, *request.filter)
                       : GetPairPostingsShared(request.pair);
    if (fetched.ok()) {
      results[i] = std::move(fetched).value();
    } else {
      statuses[i] = fetched.status();
    }
  };
  if (pool != nullptr && requests.size() > 1) {
    pool->ParallelFor(requests.size(), fetch_one);
  } else {
    for (size_t i = 0; i < requests.size(); ++i) fetch_one(i);
  }
  for (const Status& s : statuses) {
    SEQDET_RETURN_IF_ERROR(s);
  }
  return results;
}

IndexReadStats SequenceIndex::read_stats() const {
  IndexReadStats stats;
  stats.postings_decoded =
      read_counters_.postings_decoded.load(std::memory_order_relaxed);
  stats.bytes_decoded =
      read_counters_.bytes_decoded.load(std::memory_order_relaxed);
  stats.blocks_decoded =
      read_counters_.blocks_decoded.load(std::memory_order_relaxed);
  stats.blocks_skipped =
      read_counters_.blocks_skipped.load(std::memory_order_relaxed);
  stats.bytes_skipped =
      read_counters_.bytes_skipped.load(std::memory_order_relaxed);
  return stats;
}

Result<std::vector<PairCountStats>> SequenceIndex::GetFollowerStats(
    eventlog::ActivityId activity) const {
  if (!options_.maintain_counts) {
    return Status::Unsupported("Count table disabled");
  }
  return count_->Get(activity);
}

Result<std::vector<PairCountStats>> SequenceIndex::GetPredecessorStats(
    eventlog::ActivityId activity) const {
  if (!options_.maintain_counts) {
    return Status::Unsupported("ReverseCount table disabled");
  }
  return reverse_count_->Get(activity);
}

Result<PairCountStats> SequenceIndex::GetPairStats(
    const EventTypePair& pair) const {
  if (!options_.maintain_counts) {
    return Status::Unsupported("Count table disabled");
  }
  return count_->GetPair(pair.first, pair.second);
}

Result<std::optional<Timestamp>> SequenceIndex::GetLastCompletion(
    const EventTypePair& pair, TraceId trace) const {
  if (!options_.maintain_last_checked) {
    return Status::Unsupported("LastChecked table disabled");
  }
  return last_checked_->Get(pair, trace);
}

Result<std::optional<Timestamp>> SequenceIndex::GetPairLastCompletion(
    const EventTypePair& pair) const {
  if (!options_.maintain_last_checked) {
    return Status::Unsupported("LastChecked table disabled");
  }
  std::string prefix = PairIndexTable::EncodeKey(pair);
  std::optional<Timestamp> newest;
  Status scan = last_checked_->table()->Scan(
      prefix, storage::PrefixScanEnd(prefix),
      [&newest](std::string_view, std::string_view value) {
        std::string_view cursor(value);
        int64_t ts;
        if (GetVarint64SignedZigZag(&cursor, &ts)) {
          if (!newest.has_value() || ts > *newest) newest = ts;
        }
        return true;
      });
  SEQDET_RETURN_IF_ERROR(scan);
  return newest;
}

Result<std::vector<Event>> SequenceIndex::GetTraceSequence(
    TraceId trace) const {
  if (!options_.maintain_seq) {
    return Status::Unsupported("Seq table disabled");
  }
  return seq_->Get(trace);
}

Result<std::vector<TraceId>> SequenceIndex::ListTraces() const {
  if (!options_.maintain_seq) {
    return Status::Unsupported("Seq table disabled");
  }
  std::vector<TraceId> traces;
  SEQDET_RETURN_IF_ERROR(seq_->table()->Scan(
      "", "", [&traces](std::string_view key, std::string_view) {
        std::string_view key_cursor(key);
        uint64_t trace = 0;
        if (GetKeyU64(&key_cursor, &trace)) {
          traces.push_back(trace);
        }
        return true;
      }));
  return traces;
}

Result<ConsistencyReport> SequenceIndex::CheckConsistency() const {
  ConsistencyReport report;
  constexpr size_t kMaxViolations = 100;
  auto violate = [&report](std::string message) {
    if (report.violations.size() < kMaxViolations) {
      report.violations.push_back(std::move(message));
    }
  };
  const bool overlap_allowed =
      options_.policy == Policy::kSkipTillAnyMatch;

  // Pass 1: walk every period's posting lists, verifying per-posting and
  // per-trace ordering invariants and accumulating per-pair totals.
  struct PairTotals {
    uint64_t completions = 0;
    int64_t sum_duration = 0;
  };
  std::unordered_map<EventTypePair, PairTotals, EventTypePairHash> totals;
  std::unordered_map<EventTypePair,
                     std::unordered_map<TraceId, Timestamp>,
                     EventTypePairHash>
      newest_completion;

  for (size_t period = 0; period < index_tables_.size(); ++period) {
    Status scan = index_tables_[period]->table()->Scan(
        "", "", [&](std::string_view key, std::string_view value) {
          std::string_view key_cursor(key);
          uint32_t first, second;
          if (!GetKeyU32(&key_cursor, &first) ||
              !GetKeyU32(&key_cursor, &second) || !key_cursor.empty()) {
            violate(StringPrintf("period %zu: malformed index key", period));
            return true;
          }
          EventTypePair pair{first, second};
          std::vector<PairOccurrence> postings;
          if (!index_tables_[period]->DecodeValue(value, &postings)) {
            violate(StringPrintf("pair (%u,%u): undecodable posting list",
                                 first, second));
            return true;
          }
          ++report.pairs_checked;
          report.postings_checked += postings.size();

          std::sort(postings.begin(), postings.end());
          PairTotals& pair_totals = totals[pair];
          auto& newest = newest_completion[pair];
          const PairOccurrence* previous = nullptr;
          for (const PairOccurrence& p : postings) {
            if (p.ts_first >= p.ts_second) {
              violate(StringPrintf(
                  "pair (%u,%u) trace %llu: posting with ts_first >= "
                  "ts_second",
                  first, second,
                  static_cast<unsigned long long>(p.trace)));
            }
            if (!overlap_allowed && previous != nullptr &&
                previous->trace == p.trace &&
                p.ts_first <= previous->ts_second) {
              violate(StringPrintf(
                  "pair (%u,%u) trace %llu: overlapping postings under %s",
                  first, second, static_cast<unsigned long long>(p.trace),
                  PolicyName(options_.policy)));
            }
            previous = &p;
            ++pair_totals.completions;
            pair_totals.sum_duration += p.ts_second - p.ts_first;
            auto [entry, inserted] = newest.try_emplace(p.trace, p.ts_second);
            if (!inserted) {
              entry->second = std::max(entry->second, p.ts_second);
            }
          }
          return true;
        });
    SEQDET_RETURN_IF_ERROR(scan);
  }

  // Pass 2: Count / ReverseCount agree with the posting lists.
  if (options_.maintain_counts) {
    for (const auto& [pair, expected] : totals) {
      SEQDET_ASSIGN_OR_RETURN(PairCountStats forward,
                              count_->GetPair(pair.first, pair.second));
      if (forward.total_completions != expected.completions ||
          forward.sum_duration != expected.sum_duration) {
        violate(StringPrintf(
            "pair (%u,%u): Count says %llu completions / %lld duration, "
            "postings say %llu / %lld",
            pair.first, pair.second,
            static_cast<unsigned long long>(forward.total_completions),
            static_cast<long long>(forward.sum_duration),
            static_cast<unsigned long long>(expected.completions),
            static_cast<long long>(expected.sum_duration)));
      }
      SEQDET_ASSIGN_OR_RETURN(PairCountStats reverse,
                              reverse_count_->GetPair(pair.second,
                                                      pair.first));
      if (reverse.total_completions != expected.completions) {
        violate(StringPrintf(
            "pair (%u,%u): ReverseCount completions %llu != postings %llu",
            pair.first, pair.second,
            static_cast<unsigned long long>(reverse.total_completions),
            static_cast<unsigned long long>(expected.completions)));
      }
    }
  }

  // Pass 3: LastChecked matches the newest posting end, unless the trace
  // was pruned (no Seq entry).
  if (options_.maintain_last_checked && options_.maintain_seq) {
    std::unordered_map<TraceId, bool> pruned;
    auto is_pruned = [&](TraceId trace) -> Result<bool> {
      auto it = pruned.find(trace);
      if (it != pruned.end()) return it->second;
      SEQDET_ASSIGN_OR_RETURN(auto events, seq_->Get(trace));
      bool gone = events.empty();
      pruned.emplace(trace, gone);
      return gone;
    };
    for (const auto& [pair, by_trace] : newest_completion) {
      for (const auto& [trace, newest] : by_trace) {
        SEQDET_ASSIGN_OR_RETURN(bool gone, is_pruned(trace));
        if (gone) continue;
        SEQDET_ASSIGN_OR_RETURN(auto lt, last_checked_->Get(pair, trace));
        if (!lt.has_value() || *lt != newest) {
          violate(StringPrintf(
              "pair (%u,%u) trace %llu: LastChecked %s != newest posting "
              "end %lld",
              pair.first, pair.second,
              static_cast<unsigned long long>(trace),
              lt.has_value()
                  ? std::to_string(static_cast<long long>(*lt)).c_str()
                  : "absent",
              static_cast<long long>(newest)));
        }
      }
    }
  }

  // Pass 4: stored sequences are sorted.
  if (options_.maintain_seq) {
    Status scan = seq_->table()->Scan(
        "", "", [&](std::string_view key, std::string_view value) {
          std::string_view key_cursor(key);
          uint64_t trace = 0;
          GetKeyU64(&key_cursor, &trace);
          std::vector<Event> events;
          if (!SeqTable::DecodeEvents(value, &events)) {
            violate(StringPrintf("trace %llu: undecodable Seq value",
                                 static_cast<unsigned long long>(trace)));
            return true;
          }
          ++report.traces_checked;
          if (!std::is_sorted(events.begin(), events.end())) {
            // Out-of-order appends are tolerated by Update (it re-sorts),
            // but flag them: they indicate batches arrived out of time
            // order.
            violate(StringPrintf(
                "trace %llu: Seq events stored out of timestamp order",
                static_cast<unsigned long long>(trace)));
          }
          return true;
        });
    SEQDET_RETURN_IF_ERROR(scan);
  }
  return report;
}

Status SequenceIndex::CompactStatistics(FoldStats* stats,
                                        const FoldPace& pace) {
  if (!options_.maintain_counts) {
    return Status::Unsupported("Count table disabled");
  }
  SEQDET_RETURN_IF_ERROR(count_->FoldAll(stats, pace));
  SEQDET_RETURN_IF_ERROR(reverse_count_->FoldAll(stats, pace));
  SEQDET_RETURN_IF_ERROR(count_->table()->Compact());
  return reverse_count_->table()->Compact();
}

Status SequenceIndex::FoldPostings(FoldStats* stats, const FoldPace& pace) {
  if (posting_format_ != kPostingFormatBlocked) {
    return UpgradePostingFormat(stats, pace);
  }
  return FoldPostingsIncremental(stats, pace);
}

Status SequenceIndex::FoldPostingsIncremental(FoldStats* stats,
                                              const FoldPace& pace) {
  // Snapshot the pending load first: anything staged before this point is
  // covered by the pass (per-key rewrites re-read under the write lock);
  // appends racing in later stay pending for the next cycle.
  const PendingFoldLoad observed = pending_fold_load();
  for (const auto& table : index_tables_) {
    SEQDET_RETURN_IF_ERROR(
        table->FoldAll(options_.posting_block_bytes, stats, pace));
  }
  for (const auto& table : index_tables_) {
    SEQDET_RETURN_IF_ERROR(table->table()->Compact());
  }
  ConsumePending(pending_fold_bytes_, observed.bytes);
  ConsumePending(pending_fold_ops_, observed.ops);
  return Status::OK();
}

Status SequenceIndex::UpgradePostingFormat(FoldStats* stats,
                                           const FoldPace& pace) {
  // Durable marker first (Flush makes it segment-backed, not just WAL'd):
  // from here until the marker clears, a crash leaves mixed v1/v2 values
  // and reopen must finish the rewrite before serving reads.
  SEQDET_RETURN_IF_ERROR(meta_->Put(kPostingUpgradeKey, "1"));
  SEQDET_RETURN_IF_ERROR(meta_->Flush());
  const PendingFoldLoad observed = pending_fold_load();
  for (const auto& table : index_tables_) {
    SEQDET_RETURN_IF_ERROR(
        table->UpgradeToBlocked(options_.posting_block_bytes, stats, pace));
  }
  for (const auto& table : index_tables_) {
    SEQDET_RETURN_IF_ERROR(table->table()->Compact());
  }
  posting_format_ = kPostingFormatBlocked;
  for (const auto& table : index_tables_) {
    table->set_format_version(kPostingFormatBlocked);
  }
  SEQDET_RETURN_IF_ERROR(PersistPostingFormat());
  SEQDET_RETURN_IF_ERROR(meta_->Delete(kPostingUpgradeKey));
  SEQDET_RETURN_IF_ERROR(meta_->Flush());
  ConsumePending(pending_fold_bytes_, observed.bytes);
  ConsumePending(pending_fold_ops_, observed.ops);
  return Status::OK();
}

PendingFoldLoad SequenceIndex::pending_fold_load() const {
  PendingFoldLoad load;
  load.bytes = pending_fold_bytes_.load(std::memory_order_relaxed);
  load.ops = pending_fold_ops_.load(std::memory_order_relaxed);
  return load;
}

Result<PostingFragmentation> SequenceIndex::PostingFragmentationStats()
    const {
  PostingFragmentation total;
  for (const auto& table : index_tables_) {
    SEQDET_ASSIGN_OR_RETURN(
        PostingFragmentation f,
        table->Fragmentation(options_.posting_block_bytes));
    total.keys += f.keys;
    total.blocks += f.blocks;
    total.fragmented_keys += f.fragmented_keys;
    total.value_bytes += f.value_bytes;
    total.fragment_bytes += f.fragment_bytes;
  }
  return total;
}

MaintenanceStats SequenceIndex::maintenance_stats() const {
  if (maintenance_ == nullptr) {
    MaintenanceStats stats;
    const PendingFoldLoad pending = pending_fold_load();
    stats.queue_depth = pending.ops;
    stats.pending_bytes = pending.bytes;
    return stats;
  }
  return maintenance_->stats();
}

Status SequenceIndex::Flush() {
  SEQDET_RETURN_IF_ERROR(seq_->table()->Flush());
  for (const auto& t : index_tables_) {
    SEQDET_RETURN_IF_ERROR(t->table()->Flush());
  }
  SEQDET_RETURN_IF_ERROR(count_->table()->Flush());
  SEQDET_RETURN_IF_ERROR(reverse_count_->table()->Flush());
  SEQDET_RETURN_IF_ERROR(last_checked_->table()->Flush());
  return meta_->Flush();
}

}  // namespace seqdet::index
