#include "index/posting_blocks.h"

#include <algorithm>

#include "common/coding.h"

namespace seqdet::index {

namespace {

// Encodes postings[begin, end) as one block appended to *out. The slice
// must be sorted by (trace, ts_first, ts_second).
void EncodeOneBlock(const std::vector<PairOccurrence>& postings, size_t begin,
                    size_t end, std::string* out) {
  int64_t min_ts = postings[begin].ts_first;
  int64_t max_ts = postings[begin].ts_second;
  std::string payload;
  uint64_t previous_trace = postings[begin].trace;
  for (size_t i = begin; i < end; ++i) {
    const PairOccurrence& p = postings[i];
    min_ts = std::min(min_ts, p.ts_first);
    max_ts = std::max(max_ts, p.ts_second);
    PutVarint64(&payload, p.trace - previous_trace);
    previous_trace = p.trace;
    PutVarint64SignedZigZag(&payload, p.ts_first);
    PutVarint64(&payload,
                static_cast<uint64_t>(p.ts_second - p.ts_first));
  }
  PutVarint64(out, postings[begin].trace);
  PutVarint64(out, postings[end - 1].trace);
  PutVarint64SignedZigZag(out, min_ts);
  PutVarint64SignedZigZag(out, max_ts);
  PutVarint64(out, end - begin);
  PutVarint64(out, payload.size());
  out->append(payload);
}

}  // namespace

void EncodePostingBlocks(const std::vector<PairOccurrence>& postings,
                         size_t target_block_bytes, std::string* out) {
  if (postings.empty()) return;
  // A posting costs at most 3 * 10 varint bytes; size blocks by a cheap
  // per-posting estimate instead of measuring mid-encode.
  constexpr size_t kEstimatedPostingBytes = 12;
  size_t per_block = std::max<size_t>(
      1, std::max<size_t>(target_block_bytes, kEstimatedPostingBytes) /
             kEstimatedPostingBytes);
  for (size_t begin = 0; begin < postings.size(); begin += per_block) {
    size_t end = std::min(postings.size(), begin + per_block);
    EncodeOneBlock(postings, begin, end, out);
  }
}

bool ParsePostingBlockRefs(std::string_view value,
                           std::vector<PostingBlockRef>* out) {
  out->clear();
  const char* base = value.data();
  while (!value.empty()) {
    PostingBlockRef ref;
    PostingBlockHeader& h = ref.header;
    if (!GetVarint64(&value, &h.min_trace) ||
        !GetVarint64(&value, &h.max_trace) ||
        !GetVarint64SignedZigZag(&value, &h.min_ts) ||
        !GetVarint64SignedZigZag(&value, &h.max_ts) ||
        !GetVarint64(&value, &h.count) || !GetVarint64(&value, &h.byte_len) ||
        h.count == 0 || h.min_trace > h.max_trace ||
        h.byte_len > value.size() ||
        // A posting is at least 3 varint bytes; a count that exceeds this
        // bound is corruption, and rejecting it here keeps downstream
        // count-sized allocations safe.
        h.count > h.byte_len / 3) {
      out->clear();
      return false;
    }
    ref.payload_offset = static_cast<size_t>(value.data() - base);
    value.remove_prefix(static_cast<size_t>(h.byte_len));
    out->push_back(ref);
  }
  return true;
}

bool DecodePostingBlockPayload(std::string_view payload,
                               const PostingBlockHeader& header,
                               std::vector<PairOccurrence>* out) {
  // A posting is three consecutive varints (trace_delta, zigzag ts_first,
  // duration); batch-decoding whole chunks through the tight
  // DecodeVarint64Array loop beats three cursor calls per posting on the
  // hot Detect path.
  constexpr size_t kChunkPostings = 256;
  uint64_t scratch[kChunkPostings * 3];
  uint64_t trace = header.min_trace;
  const size_t base = out->size();
  out->resize(base + header.count);
  PairOccurrence* dst = out->data() + base;
  uint64_t remaining = header.count;
  while (remaining > 0) {
    size_t n =
        static_cast<size_t>(std::min<uint64_t>(kChunkPostings, remaining));
    if (!GetVarint64Batch(&payload, n * 3, scratch)) {
      out->resize(base);
      return false;
    }
    for (size_t i = 0; i < n; ++i) {
      trace += scratch[3 * i];
      int64_t ts_first = ZigZagDecode64(scratch[3 * i + 1]);
      dst->trace = trace;
      dst->ts_first = ts_first;
      dst->ts_second = ts_first + static_cast<int64_t>(scratch[3 * i + 2]);
      ++dst;
    }
    remaining -= n;
  }
  if (!payload.empty()) {
    out->resize(base);
    return false;
  }
  return true;
}

bool DecodeBlockedPostings(std::string_view value,
                           std::vector<PairOccurrence>* out) {
  std::vector<PostingBlockRef> refs;
  if (!ParsePostingBlockRefs(value, &refs)) {
    out->clear();
    return false;
  }
  uint64_t total = 0;
  for (const PostingBlockRef& ref : refs) total += ref.header.count;
  // Grow once: per-block resizes would re-copy the accumulated prefix on
  // every reallocation.
  out->reserve(out->size() + total);
  for (const PostingBlockRef& ref : refs) {
    if (!DecodePostingBlockPayload(
            value.substr(ref.payload_offset,
                         static_cast<size_t>(ref.header.byte_len)),
            ref.header, out)) {
      out->clear();
      return false;
    }
  }
  return true;
}

TraceIntervalSet TraceIntervalSet::FromIntervals(
    std::vector<TraceInterval> intervals) {
  TraceIntervalSet set;
  std::sort(intervals.begin(), intervals.end(),
            [](const TraceInterval& a, const TraceInterval& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  for (const TraceInterval& interval : intervals) {
    if (interval.lo > interval.hi) continue;
    if (!set.intervals_.empty()) {
      TraceInterval& last = set.intervals_.back();
      // Merge overlapping or adjacent ranges (hi + 1 may not overflow:
      // guard before adding).
      if (interval.lo <= last.hi ||
          (last.hi != std::numeric_limits<uint64_t>::max() &&
           interval.lo == last.hi + 1)) {
        last.hi = std::max(last.hi, interval.hi);
        continue;
      }
    }
    set.intervals_.push_back(interval);
  }
  return set;
}

uint64_t TraceIntervalSet::Span() const {
  uint64_t total = 0;
  for (const TraceInterval& interval : intervals_) {
    uint64_t len = interval.hi - interval.lo;  // inclusive: count is len + 1
    if (len == std::numeric_limits<uint64_t>::max() ||
        total + len + 1 < total) {
      return std::numeric_limits<uint64_t>::max();
    }
    total += len + 1;
  }
  return total;
}

bool TraceIntervalSet::Overlaps(uint64_t lo, uint64_t hi) const {
  // First interval whose hi >= lo; overlaps iff it also starts <= hi.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const TraceInterval& interval, uint64_t key) {
        return interval.hi < key;
      });
  return it != intervals_.end() && it->lo <= hi;
}

TraceIntervalSet TraceIntervalSet::Intersect(const TraceIntervalSet& a,
                                             const TraceIntervalSet& b) {
  TraceIntervalSet out;
  size_t i = 0, j = 0;
  while (i < a.intervals_.size() && j < b.intervals_.size()) {
    const TraceInterval& x = a.intervals_[i];
    const TraceInterval& y = b.intervals_[j];
    uint64_t lo = std::max(x.lo, y.lo);
    uint64_t hi = std::min(x.hi, y.hi);
    if (lo <= hi) out.intervals_.push_back(TraceInterval{lo, hi});
    if (x.hi < y.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

}  // namespace seqdet::index
