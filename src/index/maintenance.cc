#include "index/maintenance.h"

#include <chrono>
#include <thread>

#include "index/sequence_index.h"

namespace seqdet::index {

using std::chrono::duration_cast;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

MaintenanceService::MaintenanceService(SequenceIndex* index,
                                       const MaintenanceOptions& options)
    : index_(index), options_(options) {}

MaintenanceService::~MaintenanceService() { Stop(); }

void MaintenanceService::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  running_ = true;
  loop_exited_ = false;
  kicked_ = false;
  stop_requested_.store(false, std::memory_order_release);
  loop_ = pool_.Submit([this] { RunLoop(); });
}

void MaintenanceService::Stop() {
  // Claim the join under mu_: with concurrent Stop() calls (the dtor
  // racing an explicit Stop(), say) exactly one caller takes the future
  // and joins the loop; the rest wait for it. The previous version let
  // every caller reach loop_.get() — running_ only went false after the
  // join, so a second concurrent Stop() passed the running_ check and
  // called get() on the already-consumed future, throwing
  // std::future_error. Surfaced by the negative-capability audit of this
  // file; regression-tested by
  // MaintenanceServiceTest.ConcurrentStopJoinsExactlyOnce.
  std::future<void> loop;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_.store(true, std::memory_order_release);
    loop = std::move(loop_);
  }
  cv_.NotifyAll();
  if (loop.valid()) {
    loop.get();  // outside mu_ — the loop body re-acquires it
    MutexLock lock(mu_);
    running_ = false;
    idle_cv_.NotifyAll();
  } else {
    // Another Stop() holds the future; wait until its join completes.
    MutexLock lock(mu_);
    while (running_) idle_cv_.Wait(mu_);
  }
}

void MaintenanceService::Kick() {
  {
    MutexLock lock(mu_);
    kicked_ = true;
  }
  cv_.NotifyAll();
}

bool MaintenanceService::ShouldFold() const {
  const PendingFoldLoad pending = index_->pending_fold_load();
  return pending.bytes >= options_.min_pending_bytes ||
         pending.ops >= options_.min_pending_ops;
}

bool MaintenanceService::IdleLocked() const {
  if (!running_ || loop_exited_) return true;
  return !cycle_active_ && !ShouldFold();
}

bool MaintenanceService::WaitIdle(int64_t timeout_ms) {
  Kick();
  const auto deadline = steady_clock::now() + milliseconds(timeout_ms);
  MutexLock lock(mu_);
  while (!IdleLocked()) {
    if (!idle_cv_.WaitUntil(mu_, deadline)) break;  // timed out
  }
  return IdleLocked() && running_ && !loop_exited_;
}

void MaintenanceService::RunLoop() {
  MutexLock lock(mu_);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const auto deadline =
        steady_clock::now() + milliseconds(options_.check_interval_ms);
    while (!kicked_ && !stop_requested_.load(std::memory_order_acquire)) {
      if (!cv_.WaitUntil(mu_, deadline)) break;  // interval elapsed
    }
    kicked_ = false;
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (!ShouldFold()) {
      idle_cv_.NotifyAll();
      continue;
    }
    cycle_active_ = true;
    lock.Unlock();
    Status s = RunCycle();
    lock.Lock();
    cycle_active_ = false;
    if (!s.ok() && !s.IsAborted()) {
      // Aborted is the pace callback's clean-shutdown signal, not a fault.
      errors_.fetch_add(1, std::memory_order_relaxed);
      last_error_ = s.ToString();
    }
    idle_cv_.NotifyAll();
  }
  loop_exited_ = true;
  idle_cv_.NotifyAll();
}

Status MaintenanceService::RunCycle() {
  const auto cycle_start = steady_clock::now();
  cycles_.fetch_add(1, std::memory_order_relaxed);
  fold_in_progress_.store(true, std::memory_order_release);

  FoldStats fold_stats;
  const uint64_t rate = options_.rate_limit_bytes_per_sec;
  auto pace = [&](const FoldStats& fs) -> Status {
    if (stop_requested_.load(std::memory_order_acquire)) {
      return Status::Aborted("maintenance service stopping");
    }
    if (rate > 0 && fs.bytes_read > 0) {
      // Sleep until wall time catches up with bytes_read / rate, in small
      // interruptible slices so Stop() stays prompt.
      const auto budget = milliseconds(fs.bytes_read * 1000 / rate);
      while (steady_clock::now() - cycle_start < budget) {
        if (stop_requested_.load(std::memory_order_acquire)) {
          return Status::Aborted("maintenance service stopping");
        }
        std::this_thread::sleep_for(milliseconds(5));
      }
    }
    return Status::OK();
  };

  Status s = index_->FoldPostingsIncremental(&fold_stats, pace);
  keys_folded_.fetch_add(fold_stats.keys_folded, std::memory_order_relaxed);
  bytes_rewritten_.fetch_add(fold_stats.bytes_written,
                             std::memory_order_relaxed);
  if (s.ok()) {
    folds_run_.fetch_add(1, std::memory_order_relaxed);
    if (options_.compact_statistics &&
        index_->options().maintain_counts) {
      FoldStats count_stats;
      Status cs = index_->CompactStatistics(&count_stats, pace);
      keys_folded_.fetch_add(count_stats.keys_folded,
                             std::memory_order_relaxed);
      bytes_rewritten_.fetch_add(count_stats.bytes_written,
                                 std::memory_order_relaxed);
      if (cs.ok()) {
        compactions_run_.fetch_add(1, std::memory_order_relaxed);
      } else {
        s = cs;
      }
    }
  }

  fold_in_progress_.store(false, std::memory_order_release);
  last_cycle_ms_.store(
      duration_cast<milliseconds>(steady_clock::now() - cycle_start).count(),
      std::memory_order_relaxed);
  return s;
}

MaintenanceStats MaintenanceService::stats() const {
  MaintenanceStats out;
  out.enabled = true;
  out.fold_in_progress = fold_in_progress_.load(std::memory_order_acquire);
  out.cycles = cycles_.load(std::memory_order_relaxed);
  out.folds_run = folds_run_.load(std::memory_order_relaxed);
  out.keys_folded = keys_folded_.load(std::memory_order_relaxed);
  out.bytes_rewritten = bytes_rewritten_.load(std::memory_order_relaxed);
  out.compactions_run = compactions_run_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.last_cycle_ms = last_cycle_ms_.load(std::memory_order_relaxed);
  const PendingFoldLoad pending = index_->pending_fold_load();
  out.queue_depth = pending.ops;
  out.pending_bytes = pending.bytes;
  {
    MutexLock lock(mu_);
    out.running = running_ && !loop_exited_;
    out.last_error = last_error_;
  }
  return out;
}

}  // namespace seqdet::index
