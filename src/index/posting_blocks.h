#ifndef SEQDET_INDEX_POSTING_BLOCKS_H_
#define SEQDET_INDEX_POSTING_BLOCKS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "index/pair.h"

namespace seqdet::index {

/// v2 posting-list value format: a concatenation of self-describing blocks.
///
///   value  := block*
///   block  := header payload
///   header := varint  min_trace
///             varint  max_trace        (>= min_trace)
///             zigzag64 min_ts          (min ts_first in the block)
///             zigzag64 max_ts          (max ts_second in the block)
///             varint  count            (postings in the payload, > 0)
///             varint  byte_len         (payload bytes)
///   payload := count * (varint trace_delta, zigzag64 ts_first,
///                       varint duration)
///
/// Within a block postings are sorted by (trace, ts_first, ts_second);
/// trace_delta is the difference to the previous posting's trace (to
/// min_trace for the first posting) and duration = ts_second - ts_first
/// (non-negative by the index invariant). The header alone supports two
/// skip decisions without touching the payload: trace-range pruning
/// ([min_trace, max_trace] vs a candidate set) and time-range pruning
/// ([min_ts, max_ts] vs a query window).
///
/// Append fragments written by Update() are themselves one (or more)
/// blocks, so a stored value is *always* a valid block sequence; only the
/// global sort across blocks is re-established by FoldPostings(), which
/// rewrites a fragment pile into globally sorted blocks of
/// ~target_block_bytes payload each.

/// Default payload target of one folded block. ~170 postings at the
/// typical 12-24 encoded bytes per posting: small enough that trace-range
/// skips are selective, large enough that header overhead stays < 1%.
inline constexpr size_t kDefaultPostingBlockBytes = 4096;

/// Parsed block header.
struct PostingBlockHeader {
  uint64_t min_trace = 0;
  uint64_t max_trace = 0;
  int64_t min_ts = 0;
  int64_t max_ts = 0;
  uint64_t count = 0;
  uint64_t byte_len = 0;
};

/// One block located inside a stored value: header plus payload position.
struct PostingBlockRef {
  PostingBlockHeader header;
  size_t payload_offset = 0;  // byte offset of the payload in the value
};

/// Encodes `postings` (must be sorted by (trace, ts_first, ts_second)) as
/// a sequence of blocks with ~target_block_bytes payload each, appended to
/// `*out`. Empty input appends nothing.
void EncodePostingBlocks(const std::vector<PairOccurrence>& postings,
                         size_t target_block_bytes, std::string* out);

/// Parses the headers of every block of `value` without decoding any
/// payload. False (and `out` cleared) on malformed data.
bool ParsePostingBlockRefs(std::string_view value,
                           std::vector<PostingBlockRef>* out);

/// Decodes the payload of one block, appending `header.count` postings to
/// `*out`. False on malformed data (previously appended postings of other
/// blocks are the caller's to discard).
bool DecodePostingBlockPayload(std::string_view payload,
                               const PostingBlockHeader& header,
                               std::vector<PairOccurrence>* out);

/// Decodes a whole blocked value. False (and `out` cleared) on corruption.
bool DecodeBlockedPostings(std::string_view value,
                           std::vector<PairOccurrence>* out);

// ---------------------------------------------------------------------------
// Trace interval sets — the candidate representation of the block-skip
// read path. Coarse by design: a set of disjoint [lo, hi] trace-id ranges
// built from block headers; intersecting the per-pair sets yields a
// superset of the traces that can hold a full pattern match.
// ---------------------------------------------------------------------------

struct TraceInterval {
  uint64_t lo = 0;
  uint64_t hi = 0;  // inclusive

  friend bool operator==(const TraceInterval&, const TraceInterval&) = default;
};

class TraceIntervalSet {
 public:
  TraceIntervalSet() = default;

  /// The set covering every trace id.
  static TraceIntervalSet All() {
    TraceIntervalSet set;
    set.intervals_.push_back(
        TraceInterval{0, std::numeric_limits<uint64_t>::max()});
    return set;
  }

  /// Builds the normalized (sorted, disjoint) set from arbitrary
  /// intervals; overlapping and adjacent ranges are merged.
  static TraceIntervalSet FromIntervals(std::vector<TraceInterval> intervals);

  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  const std::vector<TraceInterval>& intervals() const { return intervals_; }

  /// True when the set is the full id space (no pruning possible).
  bool IsAll() const {
    return intervals_.size() == 1 && intervals_[0].lo == 0 &&
           intervals_[0].hi == std::numeric_limits<uint64_t>::max();
  }

  /// Number of trace ids the set covers, saturating at uint64 max. The
  /// selectivity signal pruning decisions compare against a posting list's
  /// own span.
  uint64_t Span() const;

  /// True when [lo, hi] intersects any interval of the set.
  bool Overlaps(uint64_t lo, uint64_t hi) const;

  /// True when `trace` lies in the set.
  bool Contains(uint64_t trace) const { return Overlaps(trace, trace); }

  /// Set intersection (two-pointer sweep over the sorted interval lists).
  static TraceIntervalSet Intersect(const TraceIntervalSet& a,
                                    const TraceIntervalSet& b);

 private:
  std::vector<TraceInterval> intervals_;  // sorted by lo, disjoint
};

}  // namespace seqdet::index

#endif  // SEQDET_INDEX_POSTING_BLOCKS_H_
