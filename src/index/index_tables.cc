#include "index/index_tables.h"

#include <algorithm>
#include <unordered_map>

#include "common/coding.h"

namespace seqdet::index {

using eventlog::ActivityId;
using eventlog::Event;
using eventlog::Timestamp;
using eventlog::TraceId;

// ---------------------------------------------------------------------------
// SeqTable
// ---------------------------------------------------------------------------

std::string SeqTable::EncodeKey(TraceId trace) {
  std::string key;
  PutKeyU64(&key, trace);
  return key;
}

void SeqTable::EncodeEvents(const std::vector<Event>& events,
                            std::string* out) {
  for (const Event& e : events) {
    PutVarint32(out, e.activity);
    PutVarint64SignedZigZag(out, e.ts);
  }
}

bool SeqTable::DecodeEvents(std::string_view data, std::vector<Event>* out) {
  while (!data.empty()) {
    uint32_t activity;
    int64_t ts;
    if (!GetVarint32(&data, &activity) ||
        !GetVarint64SignedZigZag(&data, &ts)) {
      out->clear();  // never leave a partially decoded sequence behind
      return false;
    }
    out->push_back(Event{activity, ts});
  }
  return true;
}

void SeqTable::StageAppend(TraceId trace, const std::vector<Event>& events,
                           storage::WriteBatch* batch) const {
  if (events.empty()) return;
  std::string value;
  EncodeEvents(events, &value);
  batch->Append(EncodeKey(trace), value);
}

Result<std::vector<Event>> SeqTable::Get(TraceId trace) const {
  std::string value;
  Status s = table_->Get(EncodeKey(trace), &value);
  if (s.IsNotFound()) return std::vector<Event>{};
  SEQDET_RETURN_IF_ERROR(s);
  std::vector<Event> events;
  if (!DecodeEvents(value, &events)) {
    return Status::Corruption("bad Seq value");
  }
  return events;
}

void SeqTable::StageDelete(TraceId trace, storage::WriteBatch* batch) const {
  batch->Delete(EncodeKey(trace));
}

// ---------------------------------------------------------------------------
// PairIndexTable
// ---------------------------------------------------------------------------

std::string PairIndexTable::EncodeKey(const EventTypePair& pair) {
  std::string key;
  PutKeyU32(&key, pair.first);
  PutKeyU32(&key, pair.second);
  return key;
}

void PairIndexTable::EncodePosting(const PairOccurrence& occurrence,
                                   std::string* out) {
  PutVarint64(out, occurrence.trace);
  PutVarint64SignedZigZag(out, occurrence.ts_first);
  // Durations are non-negative, so delta-encode the second timestamp.
  PutVarint64(out,
              static_cast<uint64_t>(occurrence.ts_second -
                                    occurrence.ts_first));
}

bool PairIndexTable::DecodePostings(std::string_view data,
                                    std::vector<PairOccurrence>* out) {
  while (!data.empty()) {
    uint64_t trace, duration;
    int64_t ts_first;
    if (!GetVarint64(&data, &trace) ||
        !GetVarint64SignedZigZag(&data, &ts_first) ||
        !GetVarint64(&data, &duration)) {
      out->clear();  // never leave a partially decoded list behind
      return false;
    }
    out->push_back(PairOccurrence{trace, ts_first,
                                  ts_first + static_cast<int64_t>(duration)});
  }
  return true;
}

void PairIndexTable::EncodeValue(const std::vector<PairOccurrence>& postings,
                                 std::string* out) const {
  if (format_version_ == kPostingFormatFlat) {
    for (const PairOccurrence& occurrence : postings) {
      EncodePosting(occurrence, out);
    }
    return;
  }
  if (std::is_sorted(postings.begin(), postings.end())) {
    EncodePostingBlocks(postings, kDefaultPostingBlockBytes, out);
  } else {
    std::vector<PairOccurrence> sorted = postings;
    std::sort(sorted.begin(), sorted.end());
    EncodePostingBlocks(sorted, kDefaultPostingBlockBytes, out);
  }
}

bool PairIndexTable::DecodeValue(std::string_view data,
                                 std::vector<PairOccurrence>* out) const {
  return format_version_ == kPostingFormatFlat
             ? DecodePostings(data, out)
             : DecodeBlockedPostings(data, out);
}

void PairIndexTable::StageAppend(const EventTypePair& pair,
                                 const std::vector<PairOccurrence>& postings,
                                 storage::WriteBatch* batch) const {
  if (postings.empty()) return;
  std::string value;
  EncodeValue(postings, &value);
  batch->Append(EncodeKey(pair), value);
}

Result<std::vector<PairOccurrence>> PairIndexTable::Get(
    const EventTypePair& pair) const {
  std::string value;
  Status s = table_->Get(EncodeKey(pair), &value);
  if (s.IsNotFound()) return std::vector<PairOccurrence>{};
  SEQDET_RETURN_IF_ERROR(s);
  std::vector<PairOccurrence> postings;
  if (!DecodeValue(value, &postings)) {
    return Status::Corruption("bad Index posting list");
  }
  // Appends from successive update batches interleave traces; queries group
  // by trace, so normalize here. Folded (or single-batch) values are
  // already sorted — don't pay the sort for them.
  if (!std::is_sorted(postings.begin(), postings.end())) {
    std::sort(postings.begin(), postings.end());
  }
  return postings;
}

Status PairIndexTable::FoldAll(size_t target_block_bytes) {
  storage::WriteBatch batch;
  Status decode_error;
  SEQDET_RETURN_IF_ERROR(table_->Scan(
      "", "", [&](std::string_view key, std::string_view value) {
        std::vector<PairOccurrence> postings;
        if (!DecodeValue(value, &postings)) {
          decode_error = Status::Corruption("bad Index posting list");
          return false;
        }
        if (!std::is_sorted(postings.begin(), postings.end())) {
          std::sort(postings.begin(), postings.end());
        }
        std::string folded;
        EncodePostingBlocks(postings, target_block_bytes, &folded);
        batch.Put(key, folded);
        return true;
      }));
  SEQDET_RETURN_IF_ERROR(decode_error);
  SEQDET_RETURN_IF_ERROR(table_->Apply(batch));
  format_version_ = kPostingFormatBlocked;
  return table_->Compact();
}

// ---------------------------------------------------------------------------
// CountTable
// ---------------------------------------------------------------------------

std::string CountTable::EncodeKey(ActivityId activity) {
  std::string key;
  PutKeyU32(&key, activity);
  return key;
}

void CountTable::StageDelta(ActivityId key_activity,
                            const PairCountStats& delta,
                            storage::WriteBatch* batch) const {
  std::string value;
  PutVarint32(&value, delta.other);
  PutVarint64SignedZigZag(&value, delta.sum_duration);
  PutVarint64(&value, delta.total_completions);
  batch->Append(EncodeKey(key_activity), value);
}

Status CountTable::DecodeDeltas(std::string_view value,
                                std::vector<PairCountStats>* out) {
  std::unordered_map<ActivityId, PairCountStats> totals;
  while (!value.empty()) {
    uint32_t other;
    int64_t sum_duration;
    uint64_t completions;
    if (!GetVarint32(&value, &other) ||
        !GetVarint64SignedZigZag(&value, &sum_duration) ||
        !GetVarint64(&value, &completions)) {
      out->clear();  // never leave partially aggregated stats behind
      return Status::Corruption("bad Count delta list");
    }
    PairCountStats& stats = totals[other];
    stats.other = other;
    stats.sum_duration += sum_duration;
    stats.total_completions += completions;
  }
  out->reserve(totals.size());
  for (auto& [other, stats] : totals) out->push_back(stats);
  std::sort(out->begin(), out->end(),
            [](const PairCountStats& a, const PairCountStats& b) {
              if (a.total_completions != b.total_completions) {
                return a.total_completions > b.total_completions;
              }
              return a.other < b.other;
            });
  return Status::OK();
}

Result<std::vector<PairCountStats>> CountTable::Get(
    ActivityId activity) const {
  std::string value;
  Status s = table_->Get(EncodeKey(activity), &value);
  if (s.IsNotFound()) return std::vector<PairCountStats>{};
  SEQDET_RETURN_IF_ERROR(s);
  std::vector<PairCountStats> out;
  SEQDET_RETURN_IF_ERROR(DecodeDeltas(value, &out));
  return out;
}

Status CountTable::FoldAll() {
  storage::WriteBatch batch;
  Status decode_error;
  SEQDET_RETURN_IF_ERROR(table_->Scan(
      "", "", [&](std::string_view key, std::string_view value) {
        std::vector<PairCountStats> folded;
        Status s = DecodeDeltas(value, &folded);
        if (!s.ok()) {
          decode_error = s;
          return false;
        }
        std::string encoded;
        for (const PairCountStats& stats : folded) {
          PutVarint32(&encoded, stats.other);
          PutVarint64SignedZigZag(&encoded, stats.sum_duration);
          PutVarint64(&encoded, stats.total_completions);
        }
        batch.Put(key, encoded);
        return true;
      }));
  SEQDET_RETURN_IF_ERROR(decode_error);
  SEQDET_RETURN_IF_ERROR(table_->Apply(batch));
  return table_->Compact();
}

Result<PairCountStats> CountTable::GetPair(ActivityId key_activity,
                                           ActivityId other) const {
  SEQDET_ASSIGN_OR_RETURN(auto all, Get(key_activity));
  for (const PairCountStats& stats : all) {
    if (stats.other == other) return stats;
  }
  return PairCountStats{other, 0, 0};
}

// ---------------------------------------------------------------------------
// LastCheckedTable
// ---------------------------------------------------------------------------

std::string LastCheckedTable::EncodeKey(const EventTypePair& pair,
                                        TraceId trace) {
  std::string key;
  PutKeyU32(&key, pair.first);
  PutKeyU32(&key, pair.second);
  PutKeyU64(&key, trace);
  return key;
}

void LastCheckedTable::StagePut(const EventTypePair& pair, TraceId trace,
                                Timestamp last_completion,
                                storage::WriteBatch* batch) const {
  std::string value;
  PutVarint64SignedZigZag(&value, last_completion);
  batch->Put(EncodeKey(pair, trace), value);
}

Result<std::optional<Timestamp>> LastCheckedTable::Get(
    const EventTypePair& pair, TraceId trace) const {
  std::string value;
  Status s = table_->Get(EncodeKey(pair, trace), &value);
  if (s.IsNotFound()) return std::optional<Timestamp>{};
  SEQDET_RETURN_IF_ERROR(s);
  std::string_view cursor(value);
  int64_t ts;
  if (!GetVarint64SignedZigZag(&cursor, &ts)) {
    return Status::Corruption("bad LastChecked value");
  }
  return std::optional<Timestamp>{ts};
}

void LastCheckedTable::StageDelete(const EventTypePair& pair, TraceId trace,
                                   storage::WriteBatch* batch) const {
  batch->Delete(EncodeKey(pair, trace));
}

}  // namespace seqdet::index
