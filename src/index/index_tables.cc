#include "index/index_tables.h"

#include <algorithm>
#include <unordered_map>

#include "common/coding.h"

namespace seqdet::index {

using eventlog::ActivityId;
using eventlog::Event;
using eventlog::Timestamp;
using eventlog::TraceId;

// ---------------------------------------------------------------------------
// SeqTable
// ---------------------------------------------------------------------------

std::string SeqTable::EncodeKey(TraceId trace) {
  std::string key;
  PutKeyU64(&key, trace);
  return key;
}

void SeqTable::EncodeEvents(const std::vector<Event>& events,
                            std::string* out) {
  for (const Event& e : events) {
    PutVarint32(out, e.activity);
    PutVarint64SignedZigZag(out, e.ts);
  }
}

bool SeqTable::DecodeEvents(std::string_view data, std::vector<Event>* out) {
  while (!data.empty()) {
    uint32_t activity;
    int64_t ts;
    if (!GetVarint32(&data, &activity) ||
        !GetVarint64SignedZigZag(&data, &ts)) {
      out->clear();  // never leave a partially decoded sequence behind
      return false;
    }
    out->push_back(Event{activity, ts});
  }
  return true;
}

void SeqTable::StageAppend(TraceId trace, const std::vector<Event>& events,
                           storage::WriteBatch* batch) const {
  if (events.empty()) return;
  std::string value;
  EncodeEvents(events, &value);
  batch->Append(EncodeKey(trace), value);
}

Result<std::vector<Event>> SeqTable::Get(TraceId trace) const {
  std::string value;
  Status s = table_->Get(EncodeKey(trace), &value);
  if (s.IsNotFound()) return std::vector<Event>{};
  SEQDET_RETURN_IF_ERROR(s);
  std::vector<Event> events;
  if (!DecodeEvents(value, &events)) {
    return Status::Corruption("bad Seq value");
  }
  return events;
}

void SeqTable::StageDelete(TraceId trace, storage::WriteBatch* batch) const {
  batch->Delete(EncodeKey(trace));
}

// ---------------------------------------------------------------------------
// PairIndexTable
// ---------------------------------------------------------------------------

std::string PairIndexTable::EncodeKey(const EventTypePair& pair) {
  std::string key;
  PutKeyU32(&key, pair.first);
  PutKeyU32(&key, pair.second);
  return key;
}

void PairIndexTable::EncodePosting(const PairOccurrence& occurrence,
                                   std::string* out) {
  PutVarint64(out, occurrence.trace);
  PutVarint64SignedZigZag(out, occurrence.ts_first);
  // Durations are non-negative, so delta-encode the second timestamp.
  PutVarint64(out,
              static_cast<uint64_t>(occurrence.ts_second -
                                    occurrence.ts_first));
}

bool PairIndexTable::DecodePostings(std::string_view data,
                                    std::vector<PairOccurrence>* out) {
  while (!data.empty()) {
    uint64_t trace, duration;
    int64_t ts_first;
    if (!GetVarint64(&data, &trace) ||
        !GetVarint64SignedZigZag(&data, &ts_first) ||
        !GetVarint64(&data, &duration)) {
      out->clear();  // never leave a partially decoded list behind
      return false;
    }
    out->push_back(PairOccurrence{trace, ts_first,
                                  ts_first + static_cast<int64_t>(duration)});
  }
  return true;
}

void PairIndexTable::EncodeValue(const std::vector<PairOccurrence>& postings,
                                 std::string* out) const {
  if (format_version_ == kPostingFormatFlat) {
    for (const PairOccurrence& occurrence : postings) {
      EncodePosting(occurrence, out);
    }
    return;
  }
  if (std::is_sorted(postings.begin(), postings.end())) {
    EncodePostingBlocks(postings, kDefaultPostingBlockBytes, out);
  } else {
    std::vector<PairOccurrence> sorted = postings;
    std::sort(sorted.begin(), sorted.end());
    EncodePostingBlocks(sorted, kDefaultPostingBlockBytes, out);
  }
}

bool PairIndexTable::DecodeValue(std::string_view data,
                                 std::vector<PairOccurrence>* out) const {
  return format_version_ == kPostingFormatFlat
             ? DecodePostings(data, out)
             : DecodeBlockedPostings(data, out);
}

void PairIndexTable::StageAppend(const EventTypePair& pair,
                                 const std::vector<PairOccurrence>& postings,
                                 storage::WriteBatch* batch) const {
  if (postings.empty()) return;
  std::string value;
  EncodeValue(postings, &value);
  batch->Append(EncodeKey(pair), value);
}

Result<std::vector<PairOccurrence>> PairIndexTable::Get(
    const EventTypePair& pair) const {
  std::string value;
  Status s = table_->Get(EncodeKey(pair), &value);
  if (s.IsNotFound()) return std::vector<PairOccurrence>{};
  SEQDET_RETURN_IF_ERROR(s);
  std::vector<PairOccurrence> postings;
  if (!DecodeValue(value, &postings)) {
    return Status::Corruption("bad Index posting list");
  }
  // Appends from successive update batches interleave traces; queries group
  // by trace, so normalize here. Folded (or single-batch) values are
  // already sorted — don't pay the sort for them.
  if (!std::is_sorted(postings.begin(), postings.end())) {
    std::sort(postings.begin(), postings.end());
  }
  return postings;
}

namespace {

// Non-final folded blocks carry exactly the encoder's per-block posting
// count; mirror EncodePostingBlocks' sizing here so the needs-fold test is
// stable (a freshly folded value never re-triggers).
size_t PostingsPerFoldedBlock(size_t target_block_bytes) {
  constexpr size_t kEstimatedPostingBytes = 12;
  return std::max<size_t>(
      1, std::max<size_t>(target_block_bytes, kEstimatedPostingBytes) /
             kEstimatedPostingBytes);
}

// True when the block sequence is not what a fold would produce: blocks
// whose trace ranges overlap a predecessor (append fragments interleave
// traces) or non-final blocks below the fold's per-block posting count.
bool BlocksNeedFold(const std::vector<PostingBlockRef>& refs,
                    size_t target_block_bytes) {
  if (refs.size() <= 1) return false;
  const size_t per_block = PostingsPerFoldedBlock(target_block_bytes);
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i > 0 && refs[i].header.min_trace < refs[i - 1].header.max_trace) {
      return true;
    }
    if (i + 1 < refs.size() && refs[i].header.count < per_block) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool PairIndexTable::NeedsFold(std::string_view value,
                               size_t target_block_bytes) const {
  if (format_version_ == kPostingFormatBlocked) {
    std::vector<PostingBlockRef> refs;
    // Undecodable values are "fold-worthy" so the pass surfaces the
    // corruption instead of silently skipping it.
    if (!ParsePostingBlockRefs(value, &refs)) return true;
    return BlocksNeedFold(refs, target_block_bytes);
  }
  std::vector<PairOccurrence> postings;
  if (!DecodePostings(value, &postings)) return true;
  return !std::is_sorted(postings.begin(), postings.end());
}

Result<PostingFragmentation> PairIndexTable::Fragmentation(
    size_t target_block_bytes) const {
  PostingFragmentation out;
  SEQDET_RETURN_IF_ERROR(table_->Scan(
      "", "", [&](std::string_view, std::string_view value) {
        ++out.keys;
        out.value_bytes += value.size();
        if (format_version_ == kPostingFormatBlocked) {
          std::vector<PostingBlockRef> refs;
          if (ParsePostingBlockRefs(value, &refs)) {
            out.blocks += refs.size();
            if (BlocksNeedFold(refs, target_block_bytes)) {
              ++out.fragmented_keys;
              out.fragment_bytes += value.size();
            }
            return true;
          }
        }
        if (NeedsFold(value, target_block_bytes)) {
          ++out.fragmented_keys;
          out.fragment_bytes += value.size();
        }
        return true;
      }));
  return out;
}

Status PairIndexTable::FoldAll(size_t target_block_bytes, FoldStats* stats,
                               const FoldPace& pace) {
  FoldStats local;
  FoldStats* fs = stats != nullptr ? stats : &local;
  // Collect candidates first — the scan holds the table's read lock, so
  // the per-key commits (which take the write lock) cannot run inside it.
  std::vector<std::string> keys;
  SEQDET_RETURN_IF_ERROR(table_->Scan(
      "", "", [&](std::string_view key, std::string_view value) {
        ++fs->keys_scanned;
        if (NeedsFold(value, target_block_bytes)) keys.emplace_back(key);
        return true;
      }));
  for (const std::string& key : keys) {
    Status s = table_->RewriteValue(
        key, [&](std::string_view current, std::string* rewritten) {
          std::vector<PairOccurrence> postings;
          if (!DecodeValue(current, &postings)) {
            return Status::Corruption("bad Index posting list");
          }
          if (!std::is_sorted(postings.begin(), postings.end())) {
            std::sort(postings.begin(), postings.end());
          }
          if (format_version_ == kPostingFormatBlocked) {
            EncodePostingBlocks(postings, target_block_bytes, rewritten);
          } else {
            for (const PairOccurrence& occurrence : postings) {
              EncodePosting(occurrence, rewritten);
            }
          }
          fs->bytes_read += current.size();
          fs->bytes_written += rewritten->size();
          return Status::OK();
        });
    if (s.IsNotFound()) continue;  // key deleted since the scan
    SEQDET_RETURN_IF_ERROR(s);
    ++fs->keys_folded;
    if (pace) SEQDET_RETURN_IF_ERROR(pace(*fs));
  }
  return Status::OK();
}

Status PairIndexTable::UpgradeToBlocked(size_t target_block_bytes,
                                        FoldStats* stats,
                                        const FoldPace& pace) {
  FoldStats local;
  FoldStats* fs = stats != nullptr ? stats : &local;
  std::vector<std::string> keys;
  SEQDET_RETURN_IF_ERROR(table_->Scan(
      "", "", [&](std::string_view key, std::string_view) {
        ++fs->keys_scanned;
        keys.emplace_back(key);
        return true;
      }));
  for (const std::string& key : keys) {
    Status s = table_->RewriteValue(
        key, [&](std::string_view current, std::string* rewritten) {
          // Roll-forward tolerance: a value this pass (or an interrupted
          // predecessor) already rewrote parses as valid v2 blocks — keep
          // its v2 decoding. Everything else is v1. A flat stream that
          // accidentally forms a valid block chain is astronomically
          // unlikely (header counts must match payload byte lengths
          // exactly across every block); DESIGN.md §9 documents the
          // heuristic.
          std::vector<PairOccurrence> postings;
          if (!DecodeBlockedPostings(current, &postings) &&
              !DecodePostings(current, &postings)) {
            return Status::Corruption("bad Index posting list");
          }
          if (!std::is_sorted(postings.begin(), postings.end())) {
            std::sort(postings.begin(), postings.end());
          }
          EncodePostingBlocks(postings, target_block_bytes, rewritten);
          fs->bytes_read += current.size();
          fs->bytes_written += rewritten->size();
          return Status::OK();
        });
    if (s.IsNotFound()) continue;
    SEQDET_RETURN_IF_ERROR(s);
    ++fs->keys_folded;
    if (pace) SEQDET_RETURN_IF_ERROR(pace(*fs));
  }
  format_version_ = kPostingFormatBlocked;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CountTable
// ---------------------------------------------------------------------------

std::string CountTable::EncodeKey(ActivityId activity) {
  std::string key;
  PutKeyU32(&key, activity);
  return key;
}

void CountTable::StageDelta(ActivityId key_activity,
                            const PairCountStats& delta,
                            storage::WriteBatch* batch) const {
  std::string value;
  PutVarint32(&value, delta.other);
  PutVarint64SignedZigZag(&value, delta.sum_duration);
  PutVarint64(&value, delta.total_completions);
  batch->Append(EncodeKey(key_activity), value);
}

Status CountTable::DecodeDeltas(std::string_view value,
                                std::vector<PairCountStats>* out) {
  std::unordered_map<ActivityId, PairCountStats> totals;
  while (!value.empty()) {
    uint32_t other;
    int64_t sum_duration;
    uint64_t completions;
    if (!GetVarint32(&value, &other) ||
        !GetVarint64SignedZigZag(&value, &sum_duration) ||
        !GetVarint64(&value, &completions)) {
      out->clear();  // never leave partially aggregated stats behind
      return Status::Corruption("bad Count delta list");
    }
    PairCountStats& stats = totals[other];
    stats.other = other;
    stats.sum_duration += sum_duration;
    stats.total_completions += completions;
  }
  out->reserve(totals.size());
  for (auto& [other, stats] : totals) out->push_back(stats);
  std::sort(out->begin(), out->end(),
            [](const PairCountStats& a, const PairCountStats& b) {
              if (a.total_completions != b.total_completions) {
                return a.total_completions > b.total_completions;
              }
              return a.other < b.other;
            });
  return Status::OK();
}

Result<std::vector<PairCountStats>> CountTable::Get(
    ActivityId activity) const {
  std::string value;
  Status s = table_->Get(EncodeKey(activity), &value);
  if (s.IsNotFound()) return std::vector<PairCountStats>{};
  SEQDET_RETURN_IF_ERROR(s);
  std::vector<PairCountStats> out;
  SEQDET_RETURN_IF_ERROR(DecodeDeltas(value, &out));
  return out;
}

namespace {

// A folded Count value has exactly one delta per follower. Count raw
// records vs distinct `other` ids without materializing the aggregation.
bool CountValueNeedsFold(std::string_view value) {
  std::vector<uint32_t> others;
  while (!value.empty()) {
    uint32_t other;
    int64_t sum_duration;
    uint64_t completions;
    if (!GetVarint32(&value, &other) ||
        !GetVarint64SignedZigZag(&value, &sum_duration) ||
        !GetVarint64(&value, &completions)) {
      return true;  // corrupt: let the fold surface the error
    }
    others.push_back(other);
  }
  std::sort(others.begin(), others.end());
  return std::adjacent_find(others.begin(), others.end()) != others.end();
}

}  // namespace

Status CountTable::FoldAll(FoldStats* stats, const FoldPace& pace) {
  FoldStats local;
  FoldStats* fs = stats != nullptr ? stats : &local;
  std::vector<std::string> keys;
  SEQDET_RETURN_IF_ERROR(table_->Scan(
      "", "", [&](std::string_view key, std::string_view value) {
        ++fs->keys_scanned;
        if (CountValueNeedsFold(value)) keys.emplace_back(key);
        return true;
      }));
  for (const std::string& key : keys) {
    Status s = table_->RewriteValue(
        key, [&](std::string_view current, std::string* rewritten) {
          std::vector<PairCountStats> folded;
          SEQDET_RETURN_IF_ERROR(DecodeDeltas(current, &folded));
          for (const PairCountStats& delta : folded) {
            PutVarint32(rewritten, delta.other);
            PutVarint64SignedZigZag(rewritten, delta.sum_duration);
            PutVarint64(rewritten, delta.total_completions);
          }
          fs->bytes_read += current.size();
          fs->bytes_written += rewritten->size();
          return Status::OK();
        });
    if (s.IsNotFound()) continue;  // key deleted since the scan
    SEQDET_RETURN_IF_ERROR(s);
    ++fs->keys_folded;
    if (pace) SEQDET_RETURN_IF_ERROR(pace(*fs));
  }
  return Status::OK();
}

Result<PairCountStats> CountTable::GetPair(ActivityId key_activity,
                                           ActivityId other) const {
  SEQDET_ASSIGN_OR_RETURN(auto all, Get(key_activity));
  for (const PairCountStats& stats : all) {
    if (stats.other == other) return stats;
  }
  return PairCountStats{other, 0, 0};
}

// ---------------------------------------------------------------------------
// LastCheckedTable
// ---------------------------------------------------------------------------

std::string LastCheckedTable::EncodeKey(const EventTypePair& pair,
                                        TraceId trace) {
  std::string key;
  PutKeyU32(&key, pair.first);
  PutKeyU32(&key, pair.second);
  PutKeyU64(&key, trace);
  return key;
}

void LastCheckedTable::StagePut(const EventTypePair& pair, TraceId trace,
                                Timestamp last_completion,
                                storage::WriteBatch* batch) const {
  std::string value;
  PutVarint64SignedZigZag(&value, last_completion);
  batch->Put(EncodeKey(pair, trace), value);
}

Result<std::optional<Timestamp>> LastCheckedTable::Get(
    const EventTypePair& pair, TraceId trace) const {
  std::string value;
  Status s = table_->Get(EncodeKey(pair, trace), &value);
  if (s.IsNotFound()) return std::optional<Timestamp>{};
  SEQDET_RETURN_IF_ERROR(s);
  std::string_view cursor(value);
  int64_t ts;
  if (!GetVarint64SignedZigZag(&cursor, &ts)) {
    return Status::Corruption("bad LastChecked value");
  }
  return std::optional<Timestamp>{ts};
}

void LastCheckedTable::StageDelete(const EventTypePair& pair, TraceId trace,
                                   storage::WriteBatch* batch) const {
  batch->Delete(EncodeKey(pair, trace));
}

}  // namespace seqdet::index
