#include "index/pair_extraction.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <string>
#include <unordered_map>

namespace seqdet::index {

using eventlog::ActivityId;
using eventlog::Event;
using eventlog::Timestamp;
using eventlog::Trace;

namespace {
constexpr Timestamp kNoCompletion = std::numeric_limits<Timestamp>::min();
}  // namespace

const char* ExtractionMethodName(ExtractionMethod method) {
  switch (method) {
    case ExtractionMethod::kParsing:
      return "Parsing";
    case ExtractionMethod::kIndexing:
      return "Indexing";
    case ExtractionMethod::kState:
      return "State";
  }
  return "Unknown";
}

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kStrictContiguity:
      return "SC";
    case Policy::kSkipTillNextMatch:
      return "STNM";
    case Policy::kSkipTillAnyMatch:
      return "STAM";
  }
  return "Unknown";
}

bool ParsePolicyName(const std::string& name, Policy* policy) {
  std::string upper;
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(
      static_cast<unsigned char>(c))));
  if (upper == "SC") {
    *policy = Policy::kStrictContiguity;
  } else if (upper == "STNM") {
    *policy = Policy::kSkipTillNextMatch;
  } else if (upper == "STAM") {
    *policy = Policy::kSkipTillAnyMatch;
  } else {
    return false;
  }
  return true;
}

void ExtractScPairs(const Trace& trace, std::vector<PairRow>* out) {
  for (size_t i = 0; i + 1 < trace.events.size(); ++i) {
    const Event& a = trace.events[i];
    const Event& b = trace.events[i + 1];
    out->push_back(PairRow{EventTypePair{a.activity, b.activity},
                           PairOccurrence{trace.id, a.ts, b.ts}});
  }
}

void ExtractStnmParsing(const Trace& trace, std::vector<PairRow>* out) {
  // Algorithm 6: for every distinct anchor type x (handled at its first
  // occurrence, guarded by checkedList), a forward scan over the rest of
  // the trace produces all STNM pairs (x, *). The pseudocode's
  // inter_events bookkeeping plus its "extra checks ... to prevent entering
  // the same pairs twice" amount to per-second-type greedy state: the index
  // of the next usable x occurrence and the end timestamp of the last
  // completion.
  //
  // Faithful to the paper's data structures, checkedList and the per-scan
  // type state are plain lists probed by linear scans (Algorithm 6 checks
  // "ev_j.type not in inter_events" against a list). This is what gives
  // Parsing its O(n·l'^2) behaviour and the superlinear degradation with
  // the number of distinct activities that Figure 3(c) shows — replacing
  // these lists with hash maps would collapse Parsing into the Indexing
  // flavor's profile and erase the phenomenon the paper measures.
  const auto& events = trace.events;
  const size_t n = events.size();

  struct SecondTypeState {
    ActivityId type = 0;
    size_t next_anchor = 0;             // index into x_occs
    Timestamp last_end = kNoCompletion; // ts of last completion's 2nd event
  };

  std::vector<ActivityId> checked;  // the paper's checkedList
  std::vector<Timestamp> x_occs;
  std::vector<SecondTypeState> state;  // association list, linear probes

  for (size_t i = 0; i < n; ++i) {
    const ActivityId x = events[i].activity;
    if (std::find(checked.begin(), checked.end(), x) != checked.end()) {
      continue;
    }
    checked.push_back(x);

    x_occs.clear();
    state.clear();
    for (size_t j = i; j < n; ++j) {
      const Event& e = events[j];
      SecondTypeState* st = nullptr;
      for (SecondTypeState& candidate : state) {
        if (candidate.type == e.activity) {
          st = &candidate;
          break;
        }
      }
      if (st == nullptr) {
        state.push_back(SecondTypeState{e.activity, 0, kNoCompletion});
        st = &state.back();
      }
      while (st->next_anchor < x_occs.size() &&
             x_occs[st->next_anchor] <= st->last_end) {
        ++st->next_anchor;
      }
      if (st->next_anchor < x_occs.size() &&
          x_occs[st->next_anchor] < e.ts) {
        out->push_back(
            PairRow{EventTypePair{x, e.activity},
                    PairOccurrence{trace.id, x_occs[st->next_anchor], e.ts}});
        st->last_end = e.ts;
      }
      if (e.activity == x) x_occs.push_back(e.ts);
    }
  }
}

void ExtractStnmIndexing(const Trace& trace, std::vector<PairRow>* out) {
  // Indexing flavor: one pass records the occurrence timestamps of every
  // type; then every ordered combination of occurring types is resolved by
  // a greedy two-list merge, "similar to a merging of two lists, while
  // checking for time constraints" (§4.2).
  std::vector<ActivityId> distinct;
  std::unordered_map<ActivityId, std::vector<Timestamp>> occurrences;
  for (const Event& e : trace.events) {
    auto [it, inserted] = occurrences.try_emplace(e.activity);
    if (inserted) distinct.push_back(e.activity);
    it->second.push_back(e.ts);
  }

  for (ActivityId x : distinct) {
    const auto& first_list = occurrences[x];
    for (ActivityId y : distinct) {
      const auto& second_list = occurrences[y];
      size_t i = 0, j = 0;
      Timestamp last_end = kNoCompletion;
      while (i < first_list.size()) {
        if (first_list[i] <= last_end) {
          ++i;
          continue;
        }
        while (j < second_list.size() && second_list[j] <= first_list[i]) {
          ++j;
        }
        if (j >= second_list.size()) break;
        out->push_back(
            PairRow{EventTypePair{x, y},
                    PairOccurrence{trace.id, first_list[i], second_list[j]}});
        last_end = second_list[j];
        ++i;
      }
    }
  }
}

void ExtractStnmState(const Trace& trace, std::vector<PairRow>* out) {
  // Algorithm 8: the hash map holds, per type pair, the alternating list
  // [first1, second1, first2, second2, ...]; an odd-sized list has a
  // pending first ("anchor") event. For every new event we first try to
  // complete pairs where it is the second component, then register it as a
  // pending first. (The paper's procedure lists the first-component loop
  // first; for self-pairs (y, y) that order would pair an event with
  // itself, so completions must be attempted first — one of the "extra
  // checks" the text alludes to.)
  std::vector<ActivityId> distinct;
  {
    std::unordered_map<ActivityId, bool> seen;
    for (const Event& e : trace.events) {
      if (!seen[e.activity]) {
        seen[e.activity] = true;
        distinct.push_back(e.activity);
      }
    }
  }

  std::unordered_map<EventTypePair, std::vector<Timestamp>, EventTypePairHash>
      lists;
  lists.reserve(distinct.size() * distinct.size());
  for (ActivityId a : distinct) {
    for (ActivityId b : distinct) {
      lists.try_emplace(EventTypePair{a, b});
    }
  }

  for (const Event& e : trace.events) {
    const ActivityId y = e.activity;
    bool completed_self = false;
    // New event as the 2nd component of (t, y).
    for (ActivityId t : distinct) {
      auto& list = lists[EventTypePair{t, y}];
      if (list.size() % 2 == 1 && list.back() < e.ts) {
        list.push_back(e.ts);
        if (t == y) completed_self = true;
      }
    }
    // New event as the 1st component of (y, t).
    for (ActivityId t : distinct) {
      if (t == y && completed_self) continue;
      auto& list = lists[EventTypePair{y, t}];
      if (list.size() % 2 == 0) list.push_back(e.ts);
    }
  }

  // Trim pending firsts and emit completions.
  for (ActivityId a : distinct) {
    for (ActivityId b : distinct) {
      const auto& list = lists[EventTypePair{a, b}];
      const size_t completed = list.size() / 2;
      for (size_t k = 0; k < completed; ++k) {
        out->push_back(PairRow{
            EventTypePair{a, b},
            PairOccurrence{trace.id, list[2 * k], list[2 * k + 1]}});
      }
    }
  }
}

void ExtractStamPairs(const Trace& trace, std::vector<PairRow>* out) {
  const auto& events = trace.events;
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].ts <= events[i].ts) continue;  // strict time order
      out->push_back(PairRow{
          EventTypePair{events[i].activity, events[j].activity},
          PairOccurrence{trace.id, events[i].ts, events[j].ts}});
    }
  }
}

void ExtractPairs(const Trace& trace, Policy policy, ExtractionMethod method,
                  std::vector<PairRow>* out) {
  if (policy == Policy::kStrictContiguity) {
    ExtractScPairs(trace, out);
    return;
  }
  if (policy == Policy::kSkipTillAnyMatch) {
    ExtractStamPairs(trace, out);
    return;
  }
  switch (method) {
    case ExtractionMethod::kParsing:
      ExtractStnmParsing(trace, out);
      return;
    case ExtractionMethod::kIndexing:
      ExtractStnmIndexing(trace, out);
      return;
    case ExtractionMethod::kState:
      ExtractStnmState(trace, out);
      return;
  }
}

void StnmStateExtractor::Add(const Event& event) {
  const ActivityId y = event.activity;
  auto is_new = std::find(seen_types_.begin(), seen_types_.end(), y) ==
                seen_types_.end();
  if (is_new) {
    // Lazily create the pair states this type participates in. For pairs
    // (t, y) the pending anchor is t's earliest occurrence so far, which is
    // exactly the front of (t, t)'s list (t's first occurrence is always
    // registered there as the initial pending first, and never trimmed
    // until drain).
    for (ActivityId t : seen_types_) {
      auto& self = states_[EventTypePair{t, t}];
      eventlog::Timestamp first_occ = self.timestamps.front();
      states_[EventTypePair{t, y}].timestamps.push_back(first_occ);
      states_.try_emplace(EventTypePair{y, t});
    }
    states_.try_emplace(EventTypePair{y, y});
    seen_types_.push_back(y);
  }

  bool completed_self = false;
  for (ActivityId t : seen_types_) {
    auto& list = states_[EventTypePair{t, y}].timestamps;
    if (list.size() % 2 == 1 && list.back() < event.ts) {
      list.push_back(event.ts);
      if (t == y) completed_self = true;
    }
  }
  for (ActivityId t : seen_types_) {
    if (t == y && completed_self) continue;
    auto& list = states_[EventTypePair{y, t}].timestamps;
    if (list.size() % 2 == 0) list.push_back(event.ts);
  }
}

void StnmStateExtractor::DrainCompleted(std::vector<PairRow>* out) {
  for (auto& [pair, state] : states_) {
    const size_t completed = state.timestamps.size() / 2;
    for (size_t k = state.drained; k < completed; ++k) {
      out->push_back(PairRow{
          pair, PairOccurrence{trace_id_, state.timestamps[2 * k],
                               state.timestamps[2 * k + 1]}});
    }
    state.drained = completed;
  }
}

}  // namespace seqdet::index
