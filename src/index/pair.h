#ifndef SEQDET_INDEX_PAIR_H_
#define SEQDET_INDEX_PAIR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "log/event.h"

namespace seqdet::index {

/// An ordered pair of activity types — the unit the inverted index is built
/// on (§3.1: "we build an inverted indexing of all event pairs").
struct EventTypePair {
  eventlog::ActivityId first = 0;
  eventlog::ActivityId second = 0;

  friend bool operator==(const EventTypePair&, const EventTypePair&) = default;
  friend auto operator<=>(const EventTypePair&, const EventTypePair&) = default;
};

struct EventTypePairHash {
  size_t operator()(const EventTypePair& p) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(p.first) << 32) |
                                 p.second);
  }
};

/// One completion of a pair inside one trace: the timestamps of its two
/// events. Together with the trace id this is the posting the Index table
/// stores: (trace_id, ts_a, ts_b).
struct PairOccurrence {
  eventlog::TraceId trace = 0;
  eventlog::Timestamp ts_first = 0;
  eventlog::Timestamp ts_second = 0;

  friend bool operator==(const PairOccurrence&, const PairOccurrence&) =
      default;
  friend auto operator<=>(const PairOccurrence& a, const PairOccurrence& b) {
    return std::tie(a.trace, a.ts_first, a.ts_second) <=>
           std::tie(b.trace, b.ts_first, b.ts_second);
  }
};

/// A pair completion tagged with its type pair — what the extractors emit.
struct PairRow {
  EventTypePair pair;
  PairOccurrence occurrence;

  friend bool operator==(const PairRow&, const PairRow&) = default;
};

/// Detection policy (§2.1, plus the §7 extension).
enum class Policy {
  /// Strict contiguity: matching events are consecutive in the trace.
  kStrictContiguity,
  /// Skip-till-next-match: irrelevant events are skipped; matched pairs of
  /// the same type never overlap (Table 3 semantics).
  kSkipTillNextMatch,
  /// Skip-till-any-match: every ordered event pair is indexed, overlaps
  /// included — the relaxed policy §7 leaves as future work. Index size is
  /// O(n²) per trace, but pattern detection becomes *exhaustive*: every
  /// subsequence occurrence decomposes into consecutive pairs that share
  /// their middle events, so the Algorithm-2 join returns all of them.
  kSkipTillAnyMatch,
};

const char* PolicyName(Policy policy);

/// Parses "SC" / "STNM" / "STAM" (case-insensitive); false on anything
/// else.
bool ParsePolicyName(const std::string& name, Policy* policy);

}  // namespace seqdet::index

#endif  // SEQDET_INDEX_PAIR_H_
