#ifndef SEQDET_INDEX_SEQUENCE_INDEX_H_
#define SEQDET_INDEX_SEQUENCE_INDEX_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/index_tables.h"
#include "index/maintenance.h"
#include "index/pair.h"
#include "index/pair_extraction.h"
#include "index/posting_cache.h"
#include "log/event_log.h"
#include "storage/database.h"

namespace seqdet::index {

/// Configuration of the pre-processing component.
struct IndexOptions {
  Policy policy = Policy::kSkipTillNextMatch;
  ExtractionMethod method = ExtractionMethod::kIndexing;
  /// Worker threads for per-trace pair extraction (the paper's Spark
  /// executors). 1 disables parallelism.
  size_t num_threads = 0;  // 0 = hardware concurrency
  /// Maintain the Count/ReverseCount statistics tables (needed by the
  /// Statistics query and the Fast/Hybrid continuation).
  bool maintain_counts = true;
  /// Maintain the Seq table (needed for incremental updates that span
  /// multiple batches and for trace pruning).
  bool maintain_seq = true;
  /// Maintain LastChecked (needed to avoid duplicate postings across
  /// batches; disabling it is only safe when every trace arrives whole in a
  /// single batch — the ablation bench measures the cost).
  bool maintain_last_checked = true;
  /// Physical shards per logical table (the Cassandra-partition analogue;
  /// lets parallel builders commit without contending on one table lock).
  /// 0 picks a default from the thread count. The value is persisted in the
  /// meta table on first build and reused on reopen.
  size_t storage_shards = 0;
  /// Byte budget of the decoded-postings read cache (the repo's analogue of
  /// the Cassandra row cache, §3.1/§6): hot pair posting lists are decoded
  /// and sorted once and served as shared immutable snapshots until an
  /// Update/compaction bumps the backing table's version. 0 disables.
  size_t cache_bytes = 64u << 20;
  /// Posting-list value format for *newly created* indexes: 0 = default
  /// (the blocked v2 format), or an explicit kPostingFormatFlat /
  /// kPostingFormatBlocked. Existing indexes always use their persisted
  /// format (meta `posting_format`; absent = v1) — FoldPostings() is the
  /// upgrade path.
  uint32_t posting_format = 0;
  /// Target payload bytes of one folded v2 posting block.
  size_t posting_block_bytes = kDefaultPostingBlockBytes;
  /// Background auto-fold + compaction service. With
  /// `maintenance.auto_fold` set, Open() starts a MaintenanceService that
  /// folds posting fragments and statistics deltas whenever the pending
  /// append load crosses the configured thresholds.
  MaintenanceOptions maintenance;
};

/// Decode-side counters of the posting read path (monotonic; snapshot via
/// SequenceIndex::read_stats()). The blocked format's skip metadata shows
/// up here: bytes_skipped counts payload bytes the trace-selective path
/// never decoded.
struct IndexReadStats {
  uint64_t postings_decoded = 0;
  uint64_t bytes_decoded = 0;
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;
  uint64_t bytes_skipped = 0;
};

/// Header-level description of one pair's posting list across all periods:
/// the exact posting count (v2) or an estimate (v1, `exact == false`), and
/// the union of the blocks' trace-id ranges. For v1 values the trace set
/// degenerates to "all traces" — flat values carry no skip metadata.
struct PairPostingSummary {
  uint64_t postings = 0;
  bool exact = true;
  TraceIntervalSet traces;
};

/// Result of a CheckConsistency() sweep.
struct ConsistencyReport {
  size_t pairs_checked = 0;
  size_t postings_checked = 0;
  size_t traces_checked = 0;
  /// Human-readable descriptions of every violated invariant; empty means
  /// the index is internally consistent.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Aggregate counters of one Update() call.
struct UpdateStats {
  size_t traces_processed = 0;
  size_t events_appended = 0;
  size_t pairs_extracted = 0;  // before LastChecked filtering
  size_t pairs_indexed = 0;    // actually appended to the Index table
};

/// The pre-processing component of Figure 1: builds and incrementally
/// maintains the inverted event-pair index inside a storage::Database.
///
/// Tables managed (names in the database):
///   seq, index_p<N> (one per period), count, rcount, lastchecked, meta.
class SequenceIndex {
 public:
  /// Opens (or creates) the index structures inside `db`. The database
  /// retains ownership of the tables; `db` must outlive the index.
  static Result<std::unique_ptr<SequenceIndex>> Open(storage::Database* db,
                                                     const IndexOptions&
                                                         options);

  SequenceIndex(const SequenceIndex&) = delete;
  SequenceIndex& operator=(const SequenceIndex&) = delete;

  /// Stops the maintenance service (if one is running) before any table
  /// state is torn down.
  ~SequenceIndex();

  /// Algorithm 1: indexes a batch of new events. Traces already indexed are
  /// extended; previously indexed completions are skipped via LastChecked.
  /// Returns counters for observability.
  ///
  /// Crash/error semantics: commits are per-table (the underlying store has
  /// no cross-table transactions — neither does the paper's Cassandra). If
  /// Update fails partway, the Index table may already hold postings whose
  /// LastChecked entries were not yet written, in which case retrying the
  /// same batch can duplicate those postings. Treat a failed Update as
  /// requiring manual inspection rather than a blind retry.
  Result<UpdateStats> Update(const eventlog::EventLog& new_events);

  /// Closes the current index period and routes subsequent postings to a
  /// fresh index table (§3.1.3: "a separate index table can be used for
  /// different periods"). Queries transparently merge all periods.
  Status StartNewPeriod();

  /// Removes a completed trace from Seq and LastChecked (§3.1.3 pruning).
  /// Index postings remain queryable. "Completed" is a contract: pruning
  /// removes the dedup state, so if the trace's events are ever re-sent in
  /// a later batch they will be re-indexed as duplicates — only prune
  /// traces that can receive no further (or repeated) events.
  Status PruneTrace(eventlog::TraceId trace);

  // --- read path used by the query processor -----------------------------

  /// An immutable shared snapshot of all completions of `pair` across every
  /// period, sorted by (trace, ts_first). Never null on success. Served
  /// from the posting cache when warm: concurrent queries (DetectBatch
  /// workers, continuation verification) share one decoded copy instead of
  /// each re-decoding and re-sorting the stored bytes. The snapshot stays
  /// valid — frozen at its fill time — even if the index is updated while
  /// the caller holds it.
  Result<PostingCache::Snapshot> GetPairPostingsShared(
      const EventTypePair& pair) const;

  /// Copying convenience over GetPairPostingsShared for callers that want
  /// to own (or mutate) the list.
  Result<std::vector<PairOccurrence>> GetPairPostings(
      const EventTypePair& pair) const;

  /// Header-level summary of `pair`'s posting list (across all periods)
  /// without decoding any posting payload: block skip metadata only. The
  /// cheap first phase of the selectivity-ordered Detect join.
  Result<PairPostingSummary> GetPairSummary(const EventTypePair& pair) const;

  /// Like GetPairPostingsShared restricted to `candidates`: only blocks
  /// whose [min_trace, max_trace] range intersects the candidate set are
  /// decoded (block-granular cache entries keep hot blocks decoded). The
  /// result is a sorted *superset* of the candidate traces' postings —
  /// a whole-list cache hit is returned as-is, and block ranges are
  /// coarse — so callers must treat extra postings as harmless (the
  /// Algorithm-2 join does). Never null on success.
  Result<PostingCache::Snapshot> GetPairPostingsFiltered(
      const EventTypePair& pair, const TraceIntervalSet& candidates) const;

  /// One pair's fetch spec for GetPairPostingsBatch: the full shared list,
  /// or the trace-selective read when `filter` is non-null (the pointee
  /// must outlive the call).
  struct PairPostingsRequest {
    EventTypePair pair;
    const TraceIntervalSet* filter = nullptr;
  };

  /// Batched posting acquisition: resolves every request — concurrently on
  /// `pool` when one is given (one task per pair, so lazy SDSEG2 block
  /// decode and PostingCache fills overlap instead of serializing per join
  /// step), serially otherwise. results[i] corresponds to requests[i] and
  /// is exactly what the per-pair entry point would have returned; on any
  /// failure the lowest-index error is returned. Safe to call from a
  /// worker of `pool` itself (the fetch fan-out then runs inline).
  Result<std::vector<PostingCache::Snapshot>> GetPairPostingsBatch(
      const std::vector<PairPostingsRequest>& requests,
      ThreadPool* pool) const;

  /// Count table: stats of pairs (activity, *), most frequent first.
  Result<std::vector<PairCountStats>> GetFollowerStats(
      eventlog::ActivityId activity) const;

  /// ReverseCount table: stats of pairs (*, activity).
  Result<std::vector<PairCountStats>> GetPredecessorStats(
      eventlog::ActivityId activity) const;

  /// Stats of one specific pair (zero stats when never completed).
  Result<PairCountStats> GetPairStats(const EventTypePair& pair) const;

  /// LastChecked lookup.
  Result<std::optional<eventlog::Timestamp>> GetLastCompletion(
      const EventTypePair& pair, eventlog::TraceId trace) const;

  /// The most recent completion timestamp of `pair` across *all* traces
  /// (LastChecked range scan; powers the Statistics query's
  /// last-completion column, §3.2.1).
  Result<std::optional<eventlog::Timestamp>> GetPairLastCompletion(
      const EventTypePair& pair) const;

  /// The stored event sequence of `trace` (empty when unknown or pruned).
  /// Activity ids are in terms of dictionary().
  Result<std::vector<eventlog::Event>> GetTraceSequence(
      eventlog::TraceId trace) const;

  /// Every trace id with a stored sequence, ascending (a Seq-table key
  /// scan; pruned traces are absent). Powers the extended-pattern queries
  /// that must enumerate traces — single-positive-element patterns and
  /// compliance templates (DESIGN.md §14). Unsupported when the Seq table
  /// is disabled.
  Result<std::vector<eventlog::TraceId>> ListTraces() const;

  /// The index's own persistent activity dictionary. Batches passed to
  /// Update() may carry arbitrary per-log dictionaries; events are remapped
  /// by *name* into this dictionary, which is what makes ids stable across
  /// batches and reopen. All ids accepted/returned by the read path are in
  /// terms of this dictionary.
  const eventlog::ActivityDictionary& dictionary() const {
    return dictionary_;
  }

  /// Flushes all managed tables.
  Status Flush();

  /// fsck for the index: verifies the cross-table invariants that
  /// Update() maintains —
  ///   * every Index posting has ts_first < ts_second;
  ///   * per (pair, trace), postings never overlap under SC/STNM;
  ///   * Count/ReverseCount totals equal the posting-list lengths and
  ///     duration sums;
  ///   * LastChecked equals the newest posting end per (pair, trace);
  ///   * Seq sequences are sorted.
  /// Read-only; scans every table, so run it offline. Pruned traces
  /// legitimately retain postings without Seq/LastChecked entries — those
  /// are not reported.
  Result<ConsistencyReport> CheckConsistency() const;

  /// Maintenance: folds the Count/ReverseCount delta lists into single
  /// values and compacts those tables. Every Update() appends one delta
  /// per pair, so periodic folding keeps statistics reads O(#followers).
  /// Per-key commits are atomic (Kv::RewriteValue), so this is safe to run
  /// concurrently with Update() and reads.
  Status CompactStatistics(FoldStats* stats = nullptr,
                           const FoldPace& pace = {});

  /// Maintenance sibling of CompactStatistics for the posting lists:
  /// rewrites every period's append fragments as globally sorted values
  /// and compacts the tables. On a v2 index this delegates to
  /// FoldPostingsIncremental() (concurrent-safe). On a v1 index it is the
  /// v1 -> v2 format upgrade: a durable `posting_upgrade` meta marker is
  /// written first, every value is rewritten as v2 blocks, then the
  /// persisted `posting_format` advances and the marker is cleared — a
  /// crash anywhere in between is rolled forward on the next Open(). The
  /// upgrade path must not run concurrently with reads or writes (the
  /// incremental path has no such caveat).
  Status FoldPostings(FoldStats* stats = nullptr, const FoldPace& pace = {});

  /// Format-preserving incremental fold of every period's posting lists
  /// (sorted flat values on v1, sorted blocks on v2) followed by table
  /// compaction. Safe to run concurrently with Update() and the query read
  /// path: each key commits atomically through the WAL/version protocol,
  /// so a concurrent Detect sees either the old fragments or the folded
  /// value, and PostingCache entries self-invalidate via Kv::Version().
  /// This is what the MaintenanceService runs. On success the pending
  /// append load observed at entry is consumed from pending_fold_load().
  Status FoldPostingsIncremental(FoldStats* stats = nullptr,
                                 const FoldPace& pace = {});

  /// Posting bytes / append records staged by Update() since the last
  /// completed fold — the fragmentation signal the MaintenanceService
  /// thresholds test. Process-local (reopening an index resets it).
  PendingFoldLoad pending_fold_load() const;

  /// Block-level fragmentation of every period's posting lists (disk
  /// truth, via a header scan). Read-only; used by `seqdet info` and
  /// tests.
  Result<PostingFragmentation> PostingFragmentationStats() const;

  /// The background maintenance service, or nullptr when
  /// options().maintenance.auto_fold was not set.
  MaintenanceService* maintenance() const { return maintenance_.get(); }

  /// Maintenance observability counters; `enabled == false` zeros when no
  /// service is attached.
  MaintenanceStats maintenance_stats() const;

  const IndexOptions& options() const { return options_; }
  size_t num_periods() const { return index_tables_.size(); }
  storage::Database* database() const { return db_; }

  /// The posting-list value format this index reads and writes
  /// (kPostingFormatFlat or kPostingFormatBlocked).
  uint32_t posting_format() const { return posting_format_; }

  /// Read-cache observability counters (all zero when cache_bytes == 0).
  PostingCacheStats cache_stats() const { return cache_.stats(); }

  /// Posting decode counters (see IndexReadStats).
  IndexReadStats read_stats() const;

 private:
  SequenceIndex(storage::Database* db, const IndexOptions& options);

  Status OpenTables();
  Status PersistPeriodCount();
  Status PersistPostingFormat();
  /// The marker-bracketed v1 -> v2 rewrite behind FoldPostings(); also the
  /// roll-forward OpenTables() runs when it finds the marker set.
  Status UpgradePostingFormat(FoldStats* stats, const FoldPace& pace);
  Status LoadDictionary();
  Status PersistDictionary();

  /// Uncached decode of one period's full posting list (sorted), with
  /// read-stats accounting.
  Result<std::vector<PairOccurrence>> ReadPeriodPostings(
      size_t period, const EventTypePair& pair) const;

  storage::Database* db_;
  IndexOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  eventlog::ActivityDictionary dictionary_;

  std::unique_ptr<SeqTable> seq_;
  std::vector<std::unique_ptr<PairIndexTable>> index_tables_;  // one/period
  std::unique_ptr<CountTable> count_;
  std::unique_ptr<CountTable> reverse_count_;
  std::unique_ptr<LastCheckedTable> last_checked_;
  storage::Kv* meta_ = nullptr;
  size_t shards_ = 1;
  uint32_t posting_format_ = kPostingFormatBlocked;
  /// Decoded-postings read cache; logically const (a memo over the tables),
  /// hence usable from the const read path.
  mutable PostingCache cache_;
  /// Monotonic decode counters behind read_stats(); logically const.
  struct ReadCounters {
    std::atomic<uint64_t> postings_decoded{0};
    std::atomic<uint64_t> bytes_decoded{0};
    std::atomic<uint64_t> blocks_decoded{0};
    std::atomic<uint64_t> blocks_skipped{0};
    std::atomic<uint64_t> bytes_skipped{0};
  };
  mutable ReadCounters read_counters_;
  /// Append load staged since the last completed fold (pending_fold_load).
  std::atomic<uint64_t> pending_fold_bytes_{0};
  std::atomic<uint64_t> pending_fold_ops_{0};
  /// Keep last: destroyed first, so the service thread is joined before
  /// any state it touches goes away (the explicit destructor also stops it
  /// up front).
  std::unique_ptr<MaintenanceService> maintenance_;
};

}  // namespace seqdet::index

#endif  // SEQDET_INDEX_SEQUENCE_INDEX_H_
