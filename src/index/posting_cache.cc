#include "index/posting_cache.h"

#include <algorithm>

namespace seqdet::index {

PostingCache::PostingCache(size_t capacity_bytes, size_t num_shards)
    : capacity_bytes_(capacity_bytes),
      shards_(std::max<size_t>(1, num_shards)) {
  shard_capacity_bytes_ = capacity_bytes_ / shards_.size();
  if (capacity_bytes_ > 0 && shard_capacity_bytes_ == 0) {
    shard_capacity_bytes_ = 1;  // tiny budgets still admit nothing oversized
  }
}

size_t PostingCache::ChargedBytes(const Snapshot& postings) {
  // Charge the decoded resident size — the vector's *capacity*, not its
  // element count and never the (compressed) on-disk size of the bytes it
  // was decoded from — plus a flat allowance for the
  // control-block/map/LRU bookkeeping. With block-compressed segments the
  // decoded postings are several times larger than their stored form, and
  // `cache_bytes` must keep meaning actual memory held.
  constexpr size_t kEntryOverhead = 128;
  return (postings ? postings->capacity() * sizeof(PairOccurrence) : 0) +
         kEntryOverhead;
}

void PostingCache::EraseLocked(
    Shard& shard,
    std::unordered_map<Key, Entry, KeyHash>::iterator it) {
  shard.bytes -= it->second.bytes;
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
}

PostingCache::Snapshot PostingCache::Get(uint32_t period,
                                         const EventTypePair& pair,
                                         uint64_t version) {
  return GetBlock(period, pair, kWholeList, version);
}

void PostingCache::Put(uint32_t period, const EventTypePair& pair,
                       uint64_t version, Snapshot postings) {
  PutBlock(period, pair, kWholeList, version, std::move(postings));
}

PostingCache::Snapshot PostingCache::GetBlock(uint32_t period,
                                              const EventTypePair& pair,
                                              uint32_t block,
                                              uint64_t version) {
  if (!enabled()) return nullptr;
  Key key{period, pair, block};
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  if (it->second.version != version) {
    // The table moved on since this entry was filled; drop it lazily.
    ++shard.invalidations;
    ++shard.misses;
    EraseLocked(shard, it);
    return nullptr;
  }
  ++shard.hits;
  // Move to the LRU front.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.postings;
}

void PostingCache::PutBlock(uint32_t period, const EventTypePair& pair,
                            uint32_t block, uint64_t version,
                            Snapshot postings) {
  if (!enabled() || postings == nullptr) return;
  Key key{period, pair, block};
  size_t bytes = ChargedBytes(postings);
  Shard& shard = ShardFor(key);
  if (bytes > shard_capacity_bytes_) return;  // would evict everything
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) EraseLocked(shard, it);
  while (shard.bytes + bytes > shard_capacity_bytes_ && !shard.lru.empty()) {
    auto victim = shard.map.find(shard.lru.back());
    ++shard.evictions;
    EraseLocked(shard, victim);
  }
  shard.lru.push_front(key);
  Entry entry;
  entry.version = version;
  entry.bytes = bytes;
  entry.postings = std::move(postings);
  entry.lru_it = shard.lru.begin();
  shard.map.emplace(key, std::move(entry));
  shard.bytes += bytes;
}

void PostingCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

PostingCacheStats PostingCache::stats() const {
  PostingCacheStats out;
  out.capacity_bytes = capacity_bytes_;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.invalidations += shard.invalidations;
    out.entries += shard.map.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace seqdet::index
