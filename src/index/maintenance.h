#ifndef SEQDET_INDEX_MAINTENANCE_H_
#define SEQDET_INDEX_MAINTENANCE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "index/index_tables.h"

namespace seqdet::index {

class SequenceIndex;

/// Snapshot of the index's not-yet-folded append load: posting bytes and
/// append records Update() has staged since the last completed fold pass
/// (see SequenceIndex::pending_fold_load()).
struct PendingFoldLoad {
  uint64_t bytes = 0;
  uint64_t ops = 0;
};

/// Knobs of the background maintenance service (nested in IndexOptions).
/// The service watches the index's pending-append counters — bytes and
/// records Update() has staged into the posting/statistics tables since the
/// last fold — and runs an incremental fold + statistics compaction once
/// either threshold is exceeded.
struct MaintenanceOptions {
  /// Start the service inside SequenceIndex::Open(); the CLI flag
  /// `seqdet serve --auto-fold` sets this.
  bool auto_fold = false;
  /// How often the service wakes to test the thresholds.
  uint64_t check_interval_ms = 500;
  /// Fold when at least this many posting bytes were appended since the
  /// last fold...
  uint64_t min_pending_bytes = 4u << 20;
  /// ...or at least this many posting-list append records.
  uint64_t min_pending_ops = 16384;
  /// Cap on fold throughput (pre-fold bytes read per second); the pace
  /// callback sleeps between per-key commits to stay under it. 0 = off.
  uint64_t rate_limit_bytes_per_sec = 0;
  /// Also fold the Count/ReverseCount delta lists each cycle (no-op when
  /// the index does not maintain counts).
  bool compact_statistics = true;
};

/// Snapshot of the service's observability counters (served by /info and
/// `seqdet info`). All-zero with `enabled == false` when the index runs
/// without a service.
struct MaintenanceStats {
  bool enabled = false;
  bool running = false;           // Start()ed and not yet Stop()ped
  bool fold_in_progress = false;  // a cycle is rewriting keys right now
  uint64_t cycles = 0;            // threshold-triggered cycles attempted
  uint64_t folds_run = 0;         // cycles whose fold pass completed
  uint64_t keys_folded = 0;
  uint64_t bytes_rewritten = 0;   // folded value bytes written
  uint64_t compactions_run = 0;   // statistics folds completed
  uint64_t queue_depth = 0;       // pending append records not yet folded
  uint64_t pending_bytes = 0;     // pending append bytes not yet folded
  uint64_t errors = 0;
  std::string last_error;         // empty when no cycle ever failed
  int64_t last_cycle_ms = 0;
};

/// Background auto-fold + compaction scheduler (the tentpole of the
/// always-on service the cloud-native follow-up paper moves maintenance
/// into). One dedicated worker (its own common/thread_pool.h pool, so index
/// build workers are never blocked by maintenance) loops: sleep for
/// check_interval_ms (or a Kick()), test the index's pending-append
/// counters against the thresholds, and when exceeded run one cycle —
/// FoldPostingsIncremental() plus CompactStatistics(). Every per-key fold
/// commit is atomic (Kv::RewriteValue), so cycles run concurrently with
/// Update()/Detect()/DetectBatch(); Stop() quiesces by finishing the
/// in-flight key and aborting the rest of the pass via the pace callback.
///
/// The service never runs the v1 -> v2 format upgrade (that rewires the
/// decode path and must not race reads); on a v1 index cycles do
/// format-preserving sorted-flat folds and the upgrade stays an explicit
/// FoldPostings() / `seqdet fold` call.
class MaintenanceService {
 public:
  /// The index must outlive the service. The constructor does not start
  /// anything; call Start().
  MaintenanceService(SequenceIndex* index, const MaintenanceOptions& options);

  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  /// Stop()s if still running.
  ~MaintenanceService() REQUIRES(!mu_);

  /// Launches the scheduler loop. Idempotent while running.
  void Start() REQUIRES(!mu_);

  /// Clean shutdown: requests the in-flight fold pass (if any) to abort at
  /// the next per-key commit boundary, then joins the loop. The index is
  /// left consistent — folded keys stay folded, the rest keep their
  /// fragments. Idempotent and safe to race with itself (the dtor and an
  /// explicit Stop() may overlap): one caller joins, the rest wait.
  SEQDET_BLOCKING void Stop() REQUIRES(!mu_);

  /// Wakes the loop now instead of waiting out the check interval.
  void Kick() REQUIRES(!mu_);

  /// Blocks until no cycle is in flight and the pending counters are below
  /// the thresholds (kicking the loop first), or until `timeout_ms`
  /// elapses. Returns false on timeout or when the service is not running.
  SEQDET_BLOCKING bool WaitIdle(int64_t timeout_ms) REQUIRES(!mu_);

  MaintenanceStats stats() const REQUIRES(!mu_);

  const MaintenanceOptions& options() const { return options_; }

 private:
  void RunLoop() REQUIRES(!mu_);
  SEQDET_BLOCKING Status RunCycle();
  bool ShouldFold() const;
  /// The WaitIdle() wake-up condition (no cycle in flight, thresholds not
  /// exceeded, loop alive). Evaluated inside wait loops holding mu_.
  bool IdleLocked() const REQUIRES(mu_);

  SequenceIndex* index_;
  MaintenanceOptions options_;
  /// Dedicated single worker: the loop occupies it for the service's whole
  /// lifetime, which would starve a shared pool.
  ThreadPool pool_{1};

  /// Leaf lock (common/sync.h map): RunLoop explicitly Unlock()s around
  /// RunCycle so the fold's storage I/O never runs under it.
  mutable Mutex mu_;
  CondVar cv_;       // wakes the loop (kick / stop)
  CondVar idle_cv_;  // wakes WaitIdle waiters
  bool running_ GUARDED_BY(mu_) = false;
  bool loop_exited_ GUARDED_BY(mu_) = false;
  bool kicked_ GUARDED_BY(mu_) = false;
  bool cycle_active_ GUARDED_BY(mu_) = false;
  std::string last_error_ GUARDED_BY(mu_);
  /// Start() arms it; the one Stop() that claims it (move under mu_)
  /// joins — see Stop() for the concurrent-shutdown contract.
  std::future<void> loop_ GUARDED_BY(mu_);

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> fold_in_progress_{false};
  std::atomic<uint64_t> cycles_{0};
  std::atomic<uint64_t> folds_run_{0};
  std::atomic<uint64_t> keys_folded_{0};
  std::atomic<uint64_t> bytes_rewritten_{0};
  std::atomic<uint64_t> compactions_run_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<int64_t> last_cycle_ms_{0};
};

}  // namespace seqdet::index

#endif  // SEQDET_INDEX_MAINTENANCE_H_
