#ifndef SEQDET_INDEX_INDEX_TABLES_H_
#define SEQDET_INDEX_INDEX_TABLES_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "index/pair.h"
#include "index/posting_blocks.h"
#include "log/event.h"
#include "storage/kv.h"
#include "storage/write_batch.h"

namespace seqdet::index {

/// Typed accessors over the five key-value tables of §3.1.2. Each wrapper
/// owns only the encoding; the storage::Table pointers are owned by the
/// Database. Write methods stage into a WriteBatch so that a trace batch
/// commits with one lock acquisition per table.

// ---------------------------------------------------------------------------
// Seq: trace_id -> [(activity, ts), ...]  (appendable)
// ---------------------------------------------------------------------------
class SeqTable {
 public:
  explicit SeqTable(storage::Kv* table) : table_(table) {}

  static std::string EncodeKey(eventlog::TraceId trace);
  static void EncodeEvents(const std::vector<eventlog::Event>& events,
                           std::string* out);
  static bool DecodeEvents(std::string_view data,
                           std::vector<eventlog::Event>* out);

  /// Stages an append of `events` to the stored sequence of `trace`.
  void StageAppend(eventlog::TraceId trace,
                   const std::vector<eventlog::Event>& events,
                   storage::WriteBatch* batch) const;

  /// Reads the full stored sequence of `trace` (empty when unknown).
  Result<std::vector<eventlog::Event>> Get(eventlog::TraceId trace) const;

  /// Stages the removal of a completed trace (§3.1.3 pruning).
  void StageDelete(eventlog::TraceId trace, storage::WriteBatch* batch) const;

  storage::Kv* table() const { return table_; }

 private:
  storage::Kv* table_;
};

// ---------------------------------------------------------------------------
// Index: (ev_a, ev_b) -> [(trace, ts_a, ts_b), ...]  (appendable)
// ---------------------------------------------------------------------------

/// Posting-list value format versions (persisted in the meta table as
/// `posting_format` and fixed per index, never mixed within one value).
///  * v1: flat varint posting stream (the seed format);
///  * v2: block-structured with skip headers (posting_blocks.h). Appends
///    write mini-blocks; FoldPostings() rewrites fragment piles into
///    globally sorted target-size blocks.
inline constexpr uint32_t kPostingFormatFlat = 1;
inline constexpr uint32_t kPostingFormatBlocked = 2;

/// Progress counters of one fold pass (PairIndexTable::FoldAll /
/// UpgradeToBlocked, CountTable::FoldAll).
struct FoldStats {
  size_t keys_scanned = 0;  // every live key visited by the candidate scan
  size_t keys_folded = 0;   // keys actually rewritten
  uint64_t bytes_read = 0;      // pre-fold value bytes of rewritten keys
  uint64_t bytes_written = 0;   // post-fold value bytes of rewritten keys
};

/// Called by a fold pass after each per-key commit (folds rewrite one key
/// at a time). Returning a non-OK status stops the pass early with that
/// status — the keys already folded stay folded; every commit is atomic and
/// self-contained. Lets the maintenance service rate-limit and abort folds.
using FoldPace = std::function<Status(const FoldStats&)>;

/// Block-level shape of a table's stored posting lists, the signal the
/// maintenance service (and `seqdet info`) read to decide whether a fold
/// pass would pay off. `fragment_bytes` counts bytes in values a fold would
/// rewrite; for v1 tables no block metadata exists, so every unsorted
/// value's bytes count and `blocks` stays 0.
struct PostingFragmentation {
  size_t keys = 0;
  size_t blocks = 0;
  size_t fragmented_keys = 0;    // keys NeedsFold() would rewrite
  uint64_t value_bytes = 0;      // total stored posting bytes
  uint64_t fragment_bytes = 0;   // bytes in fold-worthy values

  double FragmentRatio() const {
    return value_bytes == 0
               ? 0.0
               : static_cast<double>(fragment_bytes) /
                     static_cast<double>(value_bytes);
  }
};

class PairIndexTable {
 public:
  explicit PairIndexTable(storage::Kv* table,
                          uint32_t format_version = kPostingFormatBlocked)
      : table_(table), format_version_(format_version) {}

  static std::string EncodeKey(const EventTypePair& pair);
  static void EncodePosting(const PairOccurrence& occurrence,
                            std::string* out);
  /// v1 decoder. False (and `*out` cleared) on corruption, so callers
  /// never observe a partially decoded list.
  static bool DecodePostings(std::string_view data,
                             std::vector<PairOccurrence>* out);

  /// Encodes `postings` as one value fragment in this table's format
  /// (flat stream for v1, block sequence for v2). v2 requires sorted
  /// input; unsorted postings are sorted into a local copy first.
  void EncodeValue(const std::vector<PairOccurrence>& postings,
                   std::string* out) const;

  /// Decodes a stored value in this table's format. False (and `*out`
  /// cleared) on corruption.
  bool DecodeValue(std::string_view data,
                   std::vector<PairOccurrence>* out) const;

  void StageAppend(const EventTypePair& pair,
                   const std::vector<PairOccurrence>& postings,
                   storage::WriteBatch* batch) const;

  /// Reads all completions of `pair`, sorted by (trace, ts_first) so that
  /// query processing can group by trace. Empty when the pair never occurs.
  Result<std::vector<PairOccurrence>> Get(const EventTypePair& pair) const;

  /// Incremental maintenance fold: rewrites each key whose value has
  /// accumulated append fragments into one globally sorted value in the
  /// table's *current* format (sorted flat stream for v1, sorted
  /// ~target_block_bytes blocks for v2). Each key commits atomically
  /// through Kv::RewriteValue(), so the pass is safe to run concurrently
  /// with writers and readers: a concurrent Detect sees either the old
  /// fragments or the folded value, and appends landing mid-pass are
  /// either folded in (the rewrite re-reads under the write lock) or land
  /// on top of the folded base. Keys already in folded shape are skipped.
  /// `pace` (optional) runs between key commits — see FoldPace.
  Status FoldAll(size_t target_block_bytes = kDefaultPostingBlockBytes,
                 FoldStats* stats = nullptr, const FoldPace& pace = {});

  /// v1 -> v2 upgrade: rewrites every key as globally sorted v2 blocks and
  /// switches this table object to the blocked format. Each key commits
  /// atomically, but the pass as a whole is not format-atomic — the caller
  /// must bracket it with a durable upgrade marker (SequenceIndex does)
  /// so an interrupted upgrade is rolled forward on reopen, and must not
  /// serve reads mid-pass (values are temporarily mixed v1/v2). Values
  /// that already parse as valid v2 blocks are re-encoded from their v2
  /// decoding, which makes the pass idempotent for roll-forward.
  Status UpgradeToBlocked(size_t target_block_bytes =
                              kDefaultPostingBlockBytes,
                          FoldStats* stats = nullptr,
                          const FoldPace& pace = {});

  /// True when a fold pass would rewrite `value`: v2 values whose blocks
  /// overlap in trace range (append fragments) or run undersized, v1
  /// values whose posting stream is not sorted. Fold output is stable —
  /// a freshly folded value never needs folding again.
  bool NeedsFold(std::string_view value, size_t target_block_bytes) const;

  /// Scans block headers (v2) or value shapes (v1) to report how
  /// fragmented the stored posting lists currently are. Read-only.
  Result<PostingFragmentation> Fragmentation(
      size_t target_block_bytes = kDefaultPostingBlockBytes) const;

  uint32_t format_version() const { return format_version_; }
  void set_format_version(uint32_t version) { format_version_ = version; }

  storage::Kv* table() const { return table_; }

 private:
  storage::Kv* table_;
  uint32_t format_version_;
};

// ---------------------------------------------------------------------------
// Count / ReverseCount: ev -> [(other_ev, sum_duration, completions), ...]
// Stored as appendable deltas, aggregated on read (Cassandra-counter
// style); compaction concatenates deltas without losing information.
// ---------------------------------------------------------------------------
struct PairCountStats {
  eventlog::ActivityId other = 0;
  int64_t sum_duration = 0;
  uint64_t total_completions = 0;

  double AverageDuration() const {
    return total_completions == 0
               ? 0.0
               : static_cast<double>(sum_duration) /
                     static_cast<double>(total_completions);
  }
};

class CountTable {
 public:
  explicit CountTable(storage::Kv* table) : table_(table) {}

  static std::string EncodeKey(eventlog::ActivityId activity);

  /// Stages a delta for the pair (key_activity, stats.other).
  void StageDelta(eventlog::ActivityId key_activity,
                  const PairCountStats& delta,
                  storage::WriteBatch* batch) const;

  /// Aggregated statistics of every pair whose *key side* is `activity`
  /// (first component for Count, second for ReverseCount), in descending
  /// completion count.
  Result<std::vector<PairCountStats>> Get(eventlog::ActivityId activity) const;

  /// Aggregated statistics of one pair; zero stats when absent.
  Result<PairCountStats> GetPair(eventlog::ActivityId key_activity,
                                 eventlog::ActivityId other) const;

  /// Rewrites every key's accumulated delta list as a single folded value.
  /// Each Update() appends one delta per pair per chunk, so long-running
  /// deployments should fold periodically to keep reads O(#followers).
  /// Keys commit one at a time through Kv::RewriteValue(), so the pass is
  /// safe to run concurrently with Update(): a delta landing mid-pass is
  /// either folded in or appended onto the folded base — never lost.
  /// Already-folded keys (no duplicate `other` entries) are skipped.
  Status FoldAll(FoldStats* stats = nullptr, const FoldPace& pace = {});

  storage::Kv* table() const { return table_; }

 private:
  static Status DecodeDeltas(std::string_view value,
                             std::vector<PairCountStats>* out);

  storage::Kv* table_;
};

// ---------------------------------------------------------------------------
// LastChecked: (ev_a, ev_b, trace) -> last completion ts   (overwrite)
// ---------------------------------------------------------------------------
class LastCheckedTable {
 public:
  explicit LastCheckedTable(storage::Kv* table) : table_(table) {}

  static std::string EncodeKey(const EventTypePair& pair,
                               eventlog::TraceId trace);

  void StagePut(const EventTypePair& pair, eventlog::TraceId trace,
                eventlog::Timestamp last_completion,
                storage::WriteBatch* batch) const;

  /// Timestamp of the last indexed completion of `pair` in `trace`, or
  /// nullopt when the pair has not been indexed for that trace.
  Result<std::optional<eventlog::Timestamp>> Get(const EventTypePair& pair,
                                                 eventlog::TraceId trace)
      const;

  /// Stages removal of every (pair, trace) entry for a pruned trace; the
  /// caller supplies the pairs that exist (from the trace's events).
  void StageDelete(const EventTypePair& pair, eventlog::TraceId trace,
                   storage::WriteBatch* batch) const;

  storage::Kv* table() const { return table_; }

 private:
  storage::Kv* table_;
};

}  // namespace seqdet::index

#endif  // SEQDET_INDEX_INDEX_TABLES_H_
