#ifndef SEQDET_INDEX_PAIR_EXTRACTION_H_
#define SEQDET_INDEX_PAIR_EXTRACTION_H_

#include <unordered_map>
#include <vector>

#include "index/pair.h"
#include "log/event_log.h"

namespace seqdet::index {

/// The three STNM pair-extraction flavors of Section 4 of the paper, plus
/// strict contiguity. All STNM flavors compute exactly the same pair set
/// (the greedy non-overlapping semantics of Table 3); they differ in how —
/// and therefore in cost profile:
///
///  * kParsing  — Algorithm 6: one forward scan per distinct anchor type;
///                time O(n·l'), space O(n + l²) per trace.
///  * kIndexing — first records the occurrence positions of every type,
///                then merges occurrence lists per type combination;
///                time O(n + l'²), dominant winner in the paper's Figure 3.
///  * kState    — Algorithm 8: a single pass keeping per-pair timestamp
///                lists in a hash map, the streaming-friendly flavor;
///                time O(n·l') with high constant (hash access per event).
///
/// (l' = distinct activities in the trace, n = trace length.)
enum class ExtractionMethod {
  kParsing,
  kIndexing,
  kState,
};

const char* ExtractionMethodName(ExtractionMethod method);

/// Emits the strict-contiguity pairs of `trace` (consecutive events).
void ExtractScPairs(const eventlog::Trace& trace, std::vector<PairRow>* out);

/// Emits the STNM pairs of `trace` using the Parsing flavor (Algorithm 6).
void ExtractStnmParsing(const eventlog::Trace& trace,
                        std::vector<PairRow>* out);

/// Emits the STNM pairs of `trace` using the Indexing flavor.
void ExtractStnmIndexing(const eventlog::Trace& trace,
                         std::vector<PairRow>* out);

/// Emits the STNM pairs of `trace` using the State flavor (Algorithm 8).
void ExtractStnmState(const eventlog::Trace& trace, std::vector<PairRow>* out);

/// Emits every ordered event pair of `trace` (skip-till-any-match, the §7
/// extension). O(n²) output; the cost §7 warns about is real — use the
/// IndexOptions::max_stam_pairs_per_trace guard for hostile traces.
void ExtractStamPairs(const eventlog::Trace& trace,
                      std::vector<PairRow>* out);

/// Dispatcher: extracts pairs for `policy` (`method` is only consulted for
/// STNM; SC and STAM have a single implementation each).
void ExtractPairs(const eventlog::Trace& trace, Policy policy,
                  ExtractionMethod method, std::vector<PairRow>* out);

/// Streaming STNM extractor wrapping the State flavor: events can be fed
/// one at a time (the scenario §4.2 argues State is built for — "in a fully
/// dynamic environment ... it is easier to keep a state of the sequence").
/// Completed pairs can be drained incrementally.
class StnmStateExtractor {
 public:
  explicit StnmStateExtractor(eventlog::TraceId trace_id)
      : trace_id_(trace_id) {}

  /// Feeds the next event (timestamps must be non-decreasing).
  void Add(const eventlog::Event& event);

  /// Moves every pair completed since the last drain into `out`.
  void DrainCompleted(std::vector<PairRow>* out);

  eventlog::TraceId trace_id() const { return trace_id_; }

 private:
  struct PairState {
    // Alternating [first1, second1, first2, second2, ..., maybe pending].
    std::vector<eventlog::Timestamp> timestamps;
    // Completions already drained (in units of completed pairs).
    size_t drained = 0;
  };

  eventlog::TraceId trace_id_;
  std::vector<eventlog::ActivityId> seen_types_;
  std::unordered_map<EventTypePair, PairState, EventTypePairHash> states_;
};

}  // namespace seqdet::index

#endif  // SEQDET_INDEX_PAIR_EXTRACTION_H_
