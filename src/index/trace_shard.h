#ifndef SEQDET_INDEX_TRACE_SHARD_H_
#define SEQDET_INDEX_TRACE_SHARD_H_

#include <cstddef>
#include <cstdint>

#include "log/event.h"

namespace seqdet::index {

/// The shard-assignment function of the scatter-gather deployment
/// (DESIGN.md §15): every component that partitions by trace — the
/// `seqdet shard-split` ingest tool, the router's merge invariants, the
/// differential harness — must agree on it, so it lives here rather than
/// in any one of them.
///
/// splitmix64 finalizer: trace ids are often dense sequential integers
/// (XES exports, the synthetic generators), and `id % n` would put every
/// n-th trace on the same worker the moment a tenant's ids share a stride.
/// The finalizer is a measured-good 64-bit mixer, stable across platforms,
/// and cheap enough to inline into ingest loops.
inline uint64_t MixTraceId(eventlog::TraceId id) {
  uint64_t x = static_cast<uint64_t>(id);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Which of `num_shards` workers owns `id`. num_shards must be > 0.
inline size_t ShardOfTrace(eventlog::TraceId id, size_t num_shards) {
  return static_cast<size_t>(MixTraceId(id) %
                             static_cast<uint64_t>(num_shards));
}

}  // namespace seqdet::index

#endif  // SEQDET_INDEX_TRACE_SHARD_H_
