#include "storage/sharded_table.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace seqdet::storage {

namespace {

// FNV-1a; stable across platforms so shard routing survives reopen.
uint64_t ShardHash(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Result<std::unique_ptr<ShardedTable>> ShardedTable::Open(
    const std::string& dir, const std::string& name, size_t num_shards,
    const TableOptions& options) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::vector<std::unique_ptr<Table>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    SEQDET_ASSIGN_OR_RETURN(
        auto shard,
        Table::Open(dir, StringPrintf("%s_s%02zu", name.c_str(), s),
                    options));
    shards.push_back(std::move(shard));
  }
  return FromShards(name, std::move(shards));
}

Result<std::unique_ptr<ShardedTable>> ShardedTable::FromShards(
    std::string name, std::vector<std::unique_ptr<Table>> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("a sharded table needs >= 1 shard");
  }
  auto sharded =
      std::unique_ptr<ShardedTable>(new ShardedTable(std::move(name)));
  sharded->shards_ = std::move(shards);
  return sharded;
}

Table* ShardedTable::ShardFor(std::string_view key) const {
  return shards_[ShardHash(key) % shards_.size()].get();
}

Status ShardedTable::Put(std::string_view key, std::string_view value) {
  return ShardFor(key)->Put(key, value);
}

Status ShardedTable::Append(std::string_view key, std::string_view fragment) {
  return ShardFor(key)->Append(key, fragment);
}

Status ShardedTable::Delete(std::string_view key) {
  return ShardFor(key)->Delete(key);
}

Status ShardedTable::RewriteValue(
    std::string_view key,
    const std::function<Status(std::string_view, std::string*)>& fn) {
  return ShardFor(key)->RewriteValue(key, fn);
}

Status ShardedTable::Apply(const WriteBatch& batch) {
  if (shards_.size() == 1) return shards_[0]->Apply(batch);
  // Split into per-shard sub-batches so each shard's lock is taken once.
  std::vector<WriteBatch> per_shard(shards_.size());
  for (const Record& r : batch.records()) {
    per_shard[ShardHash(r.key) % shards_.size()].Add(r);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    SEQDET_RETURN_IF_ERROR(shards_[s]->Apply(per_shard[s]));
  }
  return Status::OK();
}

Status ShardedTable::Get(std::string_view key, std::string* value) const {
  return ShardFor(key)->Get(key, value);
}

bool ShardedTable::Contains(std::string_view key) const {
  return ShardFor(key)->Contains(key);
}

Status ShardedTable::Scan(
    std::string_view start_key, std::string_view end_key,
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  // Materialize every shard's range and merge. Acceptable for the
  // introspection/debug uses Scan serves; point ops never come here.
  std::map<std::string, std::string> merged;
  for (const auto& shard : shards_) {
    SEQDET_RETURN_IF_ERROR(shard->Scan(
        start_key, end_key,
        [&merged](std::string_view k, std::string_view v) {
          merged.emplace(std::string(k), std::string(v));
          return true;
        }));
  }
  for (const auto& [key, value] : merged) {
    if (!fn(key, value)) break;
  }
  return Status::OK();
}

Status ShardedTable::Flush() {
  for (const auto& shard : shards_) {
    SEQDET_RETURN_IF_ERROR(shard->Flush());
  }
  return Status::OK();
}

Status ShardedTable::Compact() {
  for (const auto& shard : shards_) {
    SEQDET_RETURN_IF_ERROR(shard->Compact());
  }
  return Status::OK();
}

uint64_t ShardedTable::Version() const {
  uint64_t v = 0;
  for (const auto& shard : shards_) v += shard->Version();
  return v;
}

TableSegmentStats ShardedTable::GetSegmentStats() const {
  TableSegmentStats out;
  for (const auto& shard : shards_) out.Merge(shard->GetSegmentStats());
  return out;
}

void ShardedTable::SetSegmentFormat(uint32_t format_version) {
  for (const auto& shard : shards_) shard->SetSegmentFormat(format_version);
}

size_t ShardedTable::ApproximateEntryCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->ApproximateEntryCount();
  return n;
}

Status ShardedTable::DestroyFiles() {
  for (const auto& shard : shards_) {
    SEQDET_RETURN_IF_ERROR(shard->DestroyFiles());
  }
  return Status::OK();
}

}  // namespace seqdet::storage
