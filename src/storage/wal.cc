#include "storage/wal.h"

#include <sys/stat.h>

#include <fstream>

#include "common/coding.h"
#include "common/crc32.h"

namespace seqdet::storage {

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path, bool sync_each_record) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open WAL " + path);
  }
  path_ = path;
  sync_each_record_ = sync_each_record;
  return Status::OK();
}

Status WalWriter::Add(RecordKind kind, std::string_view key,
                      std::string_view value) {
  if (file_ == nullptr) return Status::Internal("WAL not open");
  std::string payload;
  payload.reserve(key.size() + value.size() + 12);
  payload.push_back(static_cast<char>(kind));
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);

  std::string header;
  PutFixed32(&header, Crc32(payload));
  PutVarint64(&header, payload.size());

  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IOError("WAL write failed: " + path_);
  }
  if (sync_each_record_) return Flush();
  return Status::OK();
}

Status WalWriter::Flush() {
  if (file_ == nullptr) return Status::Internal("WAL not open");
  if (std::fflush(file_) != 0) {
    return Status::IOError("WAL flush failed: " + path_);
  }
  return Status::OK();
}

Status WalWriter::Reset() {
  if (file_ == nullptr) return Status::Internal("WAL not open");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot truncate WAL " + path_);
  }
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status ReplayWal(
    const std::string& path,
    const std::function<void(RecordKind, std::string_view, std::string_view)>&
        fn,
    size_t* replayed) {
  if (replayed != nullptr) *replayed = 0;
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::OK();  // No WAL yet: nothing to replay.
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open WAL " + path);
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  std::string_view cursor(buffer);
  while (!cursor.empty()) {
    uint32_t crc;
    uint64_t len;
    if (!GetFixed32(&cursor, &crc) || !GetVarint64(&cursor, &len) ||
        cursor.size() < len) {
      break;  // Torn tail: stop replaying.
    }
    std::string_view payload = cursor.substr(0, len);
    cursor.remove_prefix(len);
    if (Crc32(payload) != crc) break;  // Corrupt tail.
    if (payload.empty()) break;
    uint8_t kind = static_cast<uint8_t>(payload.front());
    if (kind > static_cast<uint8_t>(RecordKind::kDelete)) break;
    payload.remove_prefix(1);
    std::string_view key, value;
    if (!GetLengthPrefixed(&payload, &key) ||
        !GetLengthPrefixed(&payload, &value)) {
      break;
    }
    fn(static_cast<RecordKind>(kind), key, value);
    if (replayed != nullptr) ++*replayed;
  }
  return Status::OK();
}

}  // namespace seqdet::storage
