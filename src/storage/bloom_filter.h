#ifndef SEQDET_STORAGE_BLOOM_FILTER_H_
#define SEQDET_STORAGE_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace seqdet::storage {

/// Blocked Bloom filter over segment keys.
///
/// Point reads walk segments newest-to-oldest; most segments do not contain
/// the probed key, so a cheap negative test in front of each binary search
/// pays for itself as soon as a table has more than a couple of segments
/// (the classic LSM read-path optimization). For v1 segments the filter is
/// rebuilt in memory at open; v2 (SDSEG2) segments persist it in the footer
/// via Serialize/Deserialize so open cost stays O(footer).
class BloomFilter {
 public:
  /// Creates a filter sized for `expected_keys` at ~bits_per_key bits each
  /// (10 bits/key ≈ 1% false-positive rate).
  explicit BloomFilter(size_t expected_keys, size_t bits_per_key = 10);

  void Add(std::string_view key);

  /// False means "definitely absent"; true means "probably present".
  bool MayContain(std::string_view key) const;

  size_t SizeBytes() const { return bits_.size() * sizeof(uint64_t); }

  /// Appends the filter bits + probe count: varint num_probes, varint word
  /// count, then the words as fixed64. Stable across platforms.
  void Serialize(std::string* dst) const;

  /// Parses a serialized filter, advancing `input` past it. False on
  /// truncation or an implausible probe count (treat as corruption).
  bool Deserialize(std::string_view* input);

 private:
  static uint64_t Hash(std::string_view key, uint64_t seed);

  std::vector<uint64_t> bits_;
  size_t num_probes_;
};

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_BLOOM_FILTER_H_
