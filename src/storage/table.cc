#include "storage/table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "common/strings.h"

namespace seqdet::storage {

namespace fs = std::filesystem;

Table::Table(std::string dir, std::string name, TableOptions options)
    : dir_(std::move(dir)), name_(std::move(name)), options_(options) {}

Result<std::unique_ptr<Table>> Table::Open(const std::string& dir,
                                           const std::string& name,
                                           const TableOptions& options) {
  if (name.empty() ||
      name.find_first_not_of("abcdefghijklmnopqrstuvwxyz"
                             "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-") !=
          std::string::npos) {
    return Status::InvalidArgument("bad table name: '" + name + "'");
  }
  auto table = std::unique_ptr<Table>(new Table(dir, name, options));
  SEQDET_RETURN_IF_ERROR(table->Recover());
  return table;
}

std::string Table::SegmentPath(uint64_t id) const {
  return dir_ + "/" + name_ + "." + StringPrintf("%06llu",
                                                 static_cast<unsigned long long>(id)) +
         ".seg";
}

std::string Table::WalPath(uint64_t id) const {
  return dir_ + "/" + name_ + "." +
         StringPrintf("%06llu", static_cast<unsigned long long>(id)) + ".wal";
}

Status Table::Recover() {
  // Recovery runs inside Open() before the table is published, so there is
  // no contention — the lock is taken only to satisfy the static analysis's
  // GUARDED_BY discipline on the fields it initializes.
  WriterLock lock(mu_);
  if (options_.in_memory) return Status::OK();

  // The directory listing is the manifest: segment files are
  // "<name>.<id>.seg"; ids define recency (higher = newer).
  std::vector<uint64_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string fname = entry.path().filename().string();
    std::string prefix = name_ + ".";
    if (!StartsWith(fname, prefix) || !EndsWith(fname, ".seg")) continue;
    std::string id_part =
        fname.substr(prefix.size(), fname.size() - prefix.size() - 4);
    int64_t id;
    if (!ParseInt64(id_part, &id) || id < 0) continue;
    ids.push_back(static_cast<uint64_t>(id));
  }
  if (ec) return Status::IOError("cannot list " + dir_ + ": " + ec.message());
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    SEQDET_ASSIGN_OR_RETURN(auto segment, Segment::Load(SegmentPath(id)));
    segments_.push_back(std::move(segment));
    segment_ids_.push_back(id);
    next_segment_id_ = std::max(next_segment_id_, id + 1);
  }

  if (options_.use_wal) {
    // WAL files are versioned by the segment id their memtable will flush
    // into ("<name>.<id>.wal"). A WAL whose id is at most the newest
    // segment id is stale — its contents were already flushed but the
    // crash happened before the log rotation — and replaying it would
    // duplicate appends, so it is discarded instead.
    std::vector<uint64_t> wal_ids;
    std::error_code wal_ec;
    for (const auto& entry : fs::directory_iterator(dir_, wal_ec)) {
      if (!entry.is_regular_file()) continue;
      std::string fname = entry.path().filename().string();
      std::string prefix = name_ + ".";
      if (!StartsWith(fname, prefix) || !EndsWith(fname, ".wal")) continue;
      std::string id_part =
          fname.substr(prefix.size(), fname.size() - prefix.size() - 4);
      int64_t id;
      if (!ParseInt64(id_part, &id) || id < 0) continue;
      wal_ids.push_back(static_cast<uint64_t>(id));
    }
    if (wal_ec) {
      return Status::IOError("cannot list " + dir_ + ": " + wal_ec.message());
    }
    std::sort(wal_ids.begin(), wal_ids.end());
    for (uint64_t id : wal_ids) {
      if (id < next_segment_id_) {
        std::remove(WalPath(id).c_str());  // stale: already in a segment
        continue;
      }
      SEQDET_RETURN_IF_ERROR(ReplayWal(
          WalPath(id),
          [this](RecordKind kind, std::string_view key,
                 std::string_view value) { mem_.Apply(kind, key, value); }));
      if (id > next_segment_id_) {
        // A WAL beyond the live generation means an interrupted rotation;
        // fold it into the current memtable and drop the file.
        std::remove(WalPath(id).c_str());
      }
    }
    SEQDET_RETURN_IF_ERROR(
        wal_.Open(WalPath(next_segment_id_), options_.sync_wal));
  }
  return Status::OK();
}

Status Table::WriteRecordLocked(RecordKind kind, std::string_view key,
                                std::string_view value) {
  if (options_.use_wal && !options_.in_memory) {
    SEQDET_RETURN_IF_ERROR(wal_.Add(kind, key, value));
  }
  mem_.Apply(kind, key, value);
  return Status::OK();
}

Status Table::MaybeFlushLocked() {
  if (mem_.ApproximateBytes() >= options_.memtable_flush_bytes) {
    SEQDET_RETURN_IF_ERROR(FlushLocked());
    if (options_.max_segments != 0 &&
        segments_.size() > options_.max_segments) {
      return CompactLocked();
    }
  }
  return Status::OK();
}

Status Table::Put(std::string_view key, std::string_view value) {
  WriterLock lock(mu_);
  version_.fetch_add(1, std::memory_order_release);
  SEQDET_RETURN_IF_ERROR(WriteRecordLocked(RecordKind::kPut, key, value));
  return MaybeFlushLocked();
}

Status Table::Append(std::string_view key, std::string_view fragment) {
  WriterLock lock(mu_);
  version_.fetch_add(1, std::memory_order_release);
  SEQDET_RETURN_IF_ERROR(WriteRecordLocked(RecordKind::kAppend, key, fragment));
  return MaybeFlushLocked();
}

Status Table::Delete(std::string_view key) {
  WriterLock lock(mu_);
  version_.fetch_add(1, std::memory_order_release);
  SEQDET_RETURN_IF_ERROR(WriteRecordLocked(RecordKind::kDelete, key, {}));
  return MaybeFlushLocked();
}

Status Table::Apply(const WriteBatch& batch) {
  WriterLock lock(mu_);
  // One bump per batch: the batch becomes visible atomically under the
  // exclusive lock, so a single version step covers all of its records.
  if (!batch.empty()) version_.fetch_add(1, std::memory_order_release);
  for (const Record& r : batch.records()) {
    SEQDET_RETURN_IF_ERROR(WriteRecordLocked(r.kind, r.key, r.value));
  }
  if (options_.use_wal && !options_.in_memory) {
    SEQDET_RETURN_IF_ERROR(wal_.Flush());
  }
  return MaybeFlushLocked();
}

Status Table::RewriteValue(
    std::string_view key,
    const std::function<Status(std::string_view, std::string*)>& fn) {
  WriterLock lock(mu_);
  std::string current;
  SEQDET_ASSIGN_OR_RETURN(bool found, FoldGetLocked(key, &current));
  if (!found) return Status::NotFound("key not found");
  std::string rewritten;
  SEQDET_RETURN_IF_ERROR(fn(current, &rewritten));
  version_.fetch_add(1, std::memory_order_release);
  SEQDET_RETURN_IF_ERROR(WriteRecordLocked(RecordKind::kPut, key, rewritten));
  // The rewrite replaces (not extends) prior state; make sure the WAL
  // record reaches the OS like Apply() does, so a crash either keeps the
  // old fragments or the whole folded value, never a torn middle.
  if (options_.use_wal && !options_.in_memory) {
    SEQDET_RETURN_IF_ERROR(wal_.Flush());
  }
  return MaybeFlushLocked();
}

Result<bool> Table::FoldGetLocked(std::string_view key,
                                  std::string* value) const {
  // Fragments discovered newest-to-oldest; final value is
  // base + fragments oldest-to-newest.
  std::vector<std::string_view> fragments;
  std::string_view base;
  bool have_base = false;
  bool terminated = false;  // saw kPut or kDelete

  if (const MemTable::Entry* e = mem_.Find(key)) {
    switch (e->kind) {
      case RecordKind::kPut:
        base = e->value;
        have_base = true;
        terminated = true;
        break;
      case RecordKind::kDelete:
        return false;
      case RecordKind::kAppend:
        fragments.push_back(e->value);
        break;
    }
  }
  if (!terminated) {
    for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
      SEQDET_ASSIGN_OR_RETURN(const Segment::EntryRef* e, (*it)->Find(key));
      if (e == nullptr) continue;
      if (e->kind == RecordKind::kPut) {
        base = e->value;
        have_base = true;
        terminated = true;
        break;
      }
      if (e->kind == RecordKind::kDelete) {
        terminated = true;
        break;
      }
      fragments.push_back(e->value);
    }
  }
  if (!have_base && fragments.empty()) return false;
  value->clear();
  size_t total = base.size();
  for (auto f : fragments) total += f.size();
  value->reserve(total);
  value->append(base);
  for (auto it = fragments.rbegin(); it != fragments.rend(); ++it) {
    value->append(*it);
  }
  return true;
}

Status Table::Get(std::string_view key, std::string* value) const {
  ReaderLock lock(mu_);
  SEQDET_ASSIGN_OR_RETURN(bool found, FoldGetLocked(key, value));
  if (!found) return Status::NotFound("key not found");
  return Status::OK();
}

bool Table::Contains(std::string_view key) const {
  std::string value;
  return Get(key, &value).ok();
}

Status Table::Scan(
    std::string_view start_key, std::string_view end_key,
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  ReaderLock lock(mu_);

  // Cursors over every source, merged by key. Rank 0 is the memtable
  // (newest); segment ranks grow with age. Segment cursors cache the
  // current entry because SDSEG2 segments materialize entries per block on
  // demand (the cached views stay valid for the segment's lifetime).
  struct Cursor {
    size_t rank;
    // Memtable cursor:
    std::map<std::string, MemTable::Entry, std::less<>>::const_iterator
        mem_it;
    bool is_mem = false;
    // Segment cursor:
    const Segment* segment = nullptr;
    size_t pos = 0;
    Segment::EntryRef cur;

    std::string_view key() const {
      return is_mem ? std::string_view(mem_it->first) : cur.key;
    }
  };

  std::vector<Cursor> cursors;
  {
    Cursor c;
    c.rank = 0;
    c.is_mem = true;
    c.mem_it = start_key.empty()
                   ? mem_.entries().begin()
                   : mem_.entries().lower_bound(start_key);
    if (c.mem_it != mem_.entries().end()) cursors.push_back(c);
  }
  for (size_t i = 0; i < segments_.size(); ++i) {
    Cursor c;
    // segments_ is oldest-first; newest segment gets rank 1.
    c.rank = 1 + (segments_.size() - 1 - i);
    c.segment = segments_[i].get();
    if (start_key.empty()) {
      c.pos = 0;
    } else {
      SEQDET_ASSIGN_OR_RETURN(c.pos, c.segment->LowerBound(start_key));
    }
    if (c.pos < c.segment->size()) {
      SEQDET_ASSIGN_OR_RETURN(c.cur, c.segment->Entry(c.pos));
      cursors.push_back(c);
    }
  }

  std::string value;
  while (!cursors.empty()) {
    // Smallest key across cursors.
    std::string_view min_key = cursors[0].key();
    for (const Cursor& c : cursors) {
      std::string_view k = c.key();
      if (k < min_key) min_key = k;
    }
    if (!end_key.empty() && min_key >= end_key) break;

    // Fold entries for min_key across sources, newest rank first.
    std::vector<std::pair<size_t, const Cursor*>> hits;
    for (const Cursor& c : cursors) {
      if (c.key() == min_key) hits.emplace_back(c.rank, &c);
    }
    std::sort(hits.begin(), hits.end());

    std::vector<std::string_view> fragments;
    std::string_view base;
    bool have_base = false;
    for (auto& [rank, cur] : hits) {
      RecordKind kind;
      std::string_view v;
      if (cur->is_mem) {
        kind = cur->mem_it->second.kind;
        v = cur->mem_it->second.value;
      } else {
        kind = cur->cur.kind;
        v = cur->cur.value;
      }
      if (kind == RecordKind::kPut) {
        base = v;
        have_base = true;
        break;
      }
      if (kind == RecordKind::kDelete) break;
      fragments.push_back(v);
    }

    bool keep_going = true;
    if (have_base || !fragments.empty()) {
      value.clear();
      value.append(base);
      for (auto it = fragments.rbegin(); it != fragments.rend(); ++it) {
        value.append(*it);
      }
      // min_key views into a cursor we are about to advance; copy first.
      std::string key_copy(min_key);
      keep_going = fn(key_copy, value);
    }

    // Advance every cursor positioned at min_key (note: min_key may now be
    // dangling for the memtable cursor after advancing it, so compute
    // matches first).
    std::string advanced_key(min_key);
    for (size_t i = 0; i < cursors.size();) {
      Cursor& c = cursors[i];
      if (c.key() == advanced_key) {
        bool exhausted;
        if (c.is_mem) {
          ++c.mem_it;
          exhausted = c.mem_it == mem_.entries().end();
        } else {
          ++c.pos;
          exhausted = c.pos >= c.segment->size();
          if (!exhausted) {
            SEQDET_ASSIGN_OR_RETURN(c.cur, c.segment->Entry(c.pos));
          }
        }
        if (exhausted) {
          cursors.erase(cursors.begin() + static_cast<ptrdiff_t>(i));
          continue;
        }
      }
      ++i;
    }
    if (!keep_going) break;
  }
  return Status::OK();
}

Status Table::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  return Scan(prefix, PrefixScanEnd(prefix), fn);
}

Status Table::FlushLocked() {
  if (mem_.empty()) return Status::OK();
  SegmentBuilder builder(options_.segment);
  for (const auto& [key, entry] : mem_.entries()) {
    SEQDET_RETURN_IF_ERROR(builder.Add(key, entry.kind, entry.value));
  }
  std::string buffer = builder.Finish();
  uint64_t id = next_segment_id_++;
  if (!options_.in_memory) {
    SEQDET_RETURN_IF_ERROR(WriteFileAtomic(SegmentPath(id), buffer));
  }
  SEQDET_ASSIGN_OR_RETURN(auto segment, Segment::FromBuffer(std::move(buffer)));
  segments_.push_back(std::move(segment));
  segment_ids_.push_back(id);
  mem_.Clear();
  if (options_.use_wal && !options_.in_memory) {
    SEQDET_RETURN_IF_ERROR(RotateWalLocked(id));
  }
  return Status::OK();
}

// Opens a fresh WAL for the next memtable generation and removes the log
// whose contents segment `flushed_id` now holds. Ordering matters for
// crash safety: the new log exists before the old one disappears, and a
// stale old log is recognized by its id on recovery.
Status Table::RotateWalLocked(uint64_t flushed_id) {
  wal_.Close();
  SEQDET_RETURN_IF_ERROR(
      wal_.Open(WalPath(next_segment_id_), options_.sync_wal));
  std::remove(WalPath(flushed_id).c_str());
  return Status::OK();
}

Status Table::Flush() {
  WriterLock lock(mu_);
  return FlushLocked();
}

Status Table::Compact() {
  WriterLock lock(mu_);
  // Compaction preserves the folded contents, but bump anyway: derived
  // caches must treat any physical rewrite as a new generation.
  version_.fetch_add(1, std::memory_order_release);
  return CompactLocked();
}

Status Table::CompactLocked() {
  SEQDET_RETURN_IF_ERROR(FlushLocked());
  if (segments_.size() <= 1) return Status::OK();

  // Since every segment participates, appends fold into kPut entries and
  // tombstones drop.
  SegmentBuilder builder(options_.segment);
  // Reuse the Scan merge: it already folds values across all segments (the
  // memtable is empty after FlushLocked). Scan takes a shared lock, so
  // inline the logic over segments directly instead. `cur[i]` caches the
  // entry at pos[i] (valid while pos[i] is in range).
  std::vector<size_t> pos(segments_.size(), 0);
  std::vector<Segment::EntryRef> cur(segments_.size());
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (pos[i] < segments_[i]->size()) {
      SEQDET_ASSIGN_OR_RETURN(cur[i], segments_[i]->Entry(pos[i]));
    }
  }
  for (;;) {
    bool any = false;
    std::string_view min_key;
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (pos[i] >= segments_[i]->size()) continue;
      std::string_view k = cur[i].key;
      if (!any || k < min_key) {
        min_key = k;
        any = true;
      }
    }
    if (!any) break;

    std::vector<std::string_view> fragments;
    std::string_view base;
    bool have_base = false;
    // Newest segment is last in segments_.
    for (size_t j = segments_.size(); j-- > 0;) {
      if (pos[j] >= segments_[j]->size()) continue;
      const Segment::EntryRef& e = cur[j];
      if (e.key != min_key) continue;
      if (e.kind == RecordKind::kPut) {
        base = e.value;
        have_base = true;
        break;
      }
      if (e.kind == RecordKind::kDelete) break;
      fragments.push_back(e.value);
    }
    if (have_base || !fragments.empty()) {
      std::string folded(base);
      for (auto it = fragments.rbegin(); it != fragments.rend(); ++it) {
        folded.append(*it);
      }
      SEQDET_RETURN_IF_ERROR(builder.Add(min_key, RecordKind::kPut, folded));
    }
    std::string advanced(min_key);
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (pos[i] < segments_[i]->size() && cur[i].key == advanced) {
        ++pos[i];
        if (pos[i] < segments_[i]->size()) {
          SEQDET_ASSIGN_OR_RETURN(cur[i], segments_[i]->Entry(pos[i]));
        }
      }
    }
  }

  std::string buffer = builder.Finish();
  uint64_t id = next_segment_id_++;
  if (!options_.in_memory) {
    SEQDET_RETURN_IF_ERROR(WriteFileAtomic(SegmentPath(id), buffer));
  }
  SEQDET_ASSIGN_OR_RETURN(auto merged, Segment::FromBuffer(std::move(buffer)));

  // Remove the old segment files only after the merged one is durable.
  if (!options_.in_memory) {
    for (uint64_t old_id : segment_ids_) {
      std::remove(SegmentPath(old_id).c_str());
    }
  }
  segments_.clear();
  segment_ids_.clear();
  segments_.push_back(std::move(merged));
  segment_ids_.push_back(id);
  if (options_.use_wal && !options_.in_memory) {
    // The merged segment consumed the id the live (empty) WAL was named
    // after; rotate so post-compaction writes land in a log recovery will
    // replay.
    SEQDET_RETURN_IF_ERROR(RotateWalLocked(id));
  }
  return Status::OK();
}

size_t Table::NumSegments() const {
  ReaderLock lock(mu_);
  return segments_.size();
}

size_t Table::MemTableBytes() const {
  ReaderLock lock(mu_);
  return mem_.ApproximateBytes();
}

TableSegmentStats Table::GetSegmentStats() const {
  ReaderLock lock(mu_);
  TableSegmentStats out;
  for (const auto& s : segments_) {
    const Segment::Stats& stats = s->stats();
    ++out.num_segments;
    if (stats.format == 1) {
      ++out.v1_segments;
    } else {
      ++out.v2_segments;
    }
    out.num_blocks += stats.num_blocks;
    out.disk_bytes += stats.disk_bytes;
    out.logical_bytes += stats.logical_bytes;
  }
  return out;
}

void Table::SetSegmentFormat(uint32_t format_version) {
  WriterLock lock(mu_);
  if (format_version > options_.segment.format_version) {
    options_.segment.format_version = format_version;
  }
}

uint32_t Table::segment_format() const {
  ReaderLock lock(mu_);
  return options_.segment.format_version;
}

size_t Table::ApproximateEntryCount() const {
  ReaderLock lock(mu_);
  size_t n = mem_.size();
  for (const auto& s : segments_) n += s->size();
  return n;
}

Status Table::DestroyFiles() {
  WriterLock lock(mu_);
  version_.fetch_add(1, std::memory_order_release);
  if (options_.in_memory) {
    segments_.clear();
    segment_ids_.clear();
    mem_.Clear();
    return Status::OK();
  }
  wal_.Close();
  std::remove(WalPath(next_segment_id_).c_str());
  for (uint64_t id : segment_ids_) {
    std::remove(SegmentPath(id).c_str());
  }
  segments_.clear();
  segment_ids_.clear();
  mem_.Clear();
  return Status::OK();
}

}  // namespace seqdet::storage
