#include "storage/segment_codec.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitpack.h"
#include "common/coding.h"

#if defined(SEQDET_HAVE_ZSTD)
#include <zstd.h>
#endif

namespace seqdet::storage {

namespace {

// Value tags of codec kPostingFor.
constexpr char kTagRaw = 0;
constexpr char kTagPostingFor = 1;

// Postings per FOR group. Small enough that one outlier value cannot blow
// up the bit width of a whole block, large enough to amortize the
// per-group per-column header (varint min + width byte).
constexpr size_t kForGroupSize = 128;

// One decoded posting block, in the storage-side mirror of the v2 posting
// value format. The wire layout is owned by index/posting_blocks.h; this
// file re-implements the triple parse because storage must not depend on
// index (tests/segment_v2_test.cc pins the two in sync).
struct PostingBlock {
  uint64_t min_trace = 0;
  uint64_t max_trace = 0;
  int64_t min_ts = 0;
  int64_t max_ts = 0;
  // Parallel columns, one row per posting, exactly as they appear on the
  // wire: trace_delta (vs previous posting / min_trace), absolute
  // ts_first, duration = ts_second - ts_first.
  std::vector<uint64_t> trace_delta;
  std::vector<int64_t> ts_first;
  std::vector<uint64_t> duration;
};

// Strictly parses `value` as a v2 posting-block sequence. False when the
// bytes are anything else (then the value is stored raw).
bool ParsePostingValue(std::string_view value,
                       std::vector<PostingBlock>* blocks) {
  blocks->clear();
  while (!value.empty()) {
    PostingBlock b;
    uint64_t count = 0, byte_len = 0;
    if (!GetVarint64(&value, &b.min_trace) ||
        !GetVarint64(&value, &b.max_trace) ||
        !GetVarint64SignedZigZag(&value, &b.min_ts) ||
        !GetVarint64SignedZigZag(&value, &b.max_ts) ||
        !GetVarint64(&value, &count) || !GetVarint64(&value, &byte_len) ||
        count == 0 || b.min_trace > b.max_trace || byte_len > value.size()) {
      return false;
    }
    std::string_view payload = value.substr(0, byte_len);
    value.remove_prefix(static_cast<size_t>(byte_len));
    b.trace_delta.reserve(count);
    b.ts_first.reserve(count);
    b.duration.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t td = 0, du = 0;
      int64_t ts = 0;
      if (!GetVarint64(&payload, &td) ||
          !GetVarint64SignedZigZag(&payload, &ts) ||
          !GetVarint64(&payload, &du)) {
        return false;
      }
      b.trace_delta.push_back(td);
      b.ts_first.push_back(ts);
      b.duration.push_back(du);
    }
    if (!payload.empty()) return false;
    blocks->push_back(std::move(b));
  }
  return !blocks->empty();
}

// Re-encodes decoded posting blocks into the original wire bytes. Used by
// the decoder, and by the encoder to verify byte-exact round-trips (a
// value containing non-canonical varints would parse fine but re-encode
// differently; such values fall back to raw storage).
void ReencodePostingValue(const std::vector<PostingBlock>& blocks,
                          std::string* out) {
  std::string payload;
  for (const PostingBlock& b : blocks) {
    payload.clear();
    for (size_t i = 0; i < b.trace_delta.size(); ++i) {
      PutVarint64(&payload, b.trace_delta[i]);
      PutVarint64SignedZigZag(&payload, b.ts_first[i]);
      PutVarint64(&payload, b.duration[i]);
    }
    PutVarint64(out, b.min_trace);
    PutVarint64(out, b.max_trace);
    PutVarint64SignedZigZag(out, b.min_ts);
    PutVarint64SignedZigZag(out, b.max_ts);
    PutVarint64(out, b.trace_delta.size());
    PutVarint64(out, payload.size());
    out->append(payload);
  }
}

// Appends one FOR column: varint frame minimum, width byte, then the
// offsets bitpacked at that width (padded to a byte boundary).
void PutForColumn(const uint64_t* values, size_t n, std::string* out) {
  uint64_t min_v = values[0], max_v = values[0];
  for (size_t i = 1; i < n; ++i) {
    min_v = std::min(min_v, values[i]);
    max_v = std::max(max_v, values[i]);
  }
  uint32_t bits = BitsNeeded(max_v - min_v);
  PutVarint64(out, min_v);
  out->push_back(static_cast<char>(bits));
  BitPacker packer(out);
  for (size_t i = 0; i < n; ++i) packer.Put(values[i] - min_v, bits);
  packer.Finish();
}

bool GetForColumn(std::string_view* input, size_t n, uint64_t* out) {
  uint64_t min_v = 0;
  if (!GetVarint64(input, &min_v) || input->empty()) return false;
  uint32_t bits = static_cast<unsigned char>(input->front());
  input->remove_prefix(1);
  if (bits > 64) return false;
  size_t packed_bytes = (n * bits + 7) / 8;
  if (input->size() < packed_bytes) return false;
  BitUnpacker unpacker(input->substr(0, packed_bytes));
  for (size_t i = 0; i < n; ++i) {
    uint64_t offset = 0;
    if (!unpacker.Get(bits, &offset)) return false;
    out[i] = min_v + offset;
  }
  input->remove_prefix(packed_bytes);
  return true;
}

// FOR-encodes one posting block: the 5 header varints (byte_len is implied
// by the groups), then ceil(count / kForGroupSize) groups of a zigzag
// slope varint plus three FOR columns.
//
// The ts column is residual-coded against a linear trace predictor:
// postings sorted by (trace, ts) advance roughly linearly with the trace
// id (trace ids correlate with arrival time), so each group stores the
// observed ms-per-trace slope and each row only the zigzag residual
// `ts - prev_ts - slope * trace_delta`. For same-trace rows the residual
// is the plain in-trace gap; for trace-crossing rows the slope absorbs
// the inter-trace jump that plain double-delta would pay full width for.
// All arithmetic is done in wrap-around uint64 so corrupt inputs cannot
// overflow into UB — encode and decode wrap identically, keeping
// round-trips byte-exact.
void EncodeForBlock(const PostingBlock& b, std::string* out) {
  PutVarint64(out, b.min_trace);
  PutVarint64(out, b.max_trace);
  PutVarint64SignedZigZag(out, b.min_ts);
  PutVarint64SignedZigZag(out, b.max_ts);
  PutVarint64(out, b.trace_delta.size());
  const size_t count = b.trace_delta.size();
  std::vector<uint64_t> ts_resid(count);
  int64_t prev_ts = b.min_ts;
  for (size_t begin = 0; begin < count; begin += kForGroupSize) {
    size_t n = std::min(kForGroupSize, count - begin);
    uint64_t span = 0;
    for (size_t i = begin; i < begin + n; ++i) span += b.trace_delta[i];
    int64_t slope =
        span > 0 ? (b.ts_first[begin + n - 1] - prev_ts) /
                       static_cast<int64_t>(span)
                 : 0;
    for (size_t i = begin; i < begin + n; ++i) {
      uint64_t predicted = static_cast<uint64_t>(prev_ts) +
                           static_cast<uint64_t>(slope) * b.trace_delta[i];
      ts_resid[i] = ZigZagEncode64(static_cast<int64_t>(
          static_cast<uint64_t>(b.ts_first[i]) - predicted));
      prev_ts = b.ts_first[i];
    }
    PutVarint64SignedZigZag(out, slope);
    PutForColumn(b.trace_delta.data() + begin, n, out);
    PutForColumn(ts_resid.data() + begin, n, out);
    PutForColumn(b.duration.data() + begin, n, out);
  }
}

bool DecodeForBlock(std::string_view* input, PostingBlock* b) {
  uint64_t count = 0;
  if (!GetVarint64(input, &b->min_trace) ||
      !GetVarint64(input, &b->max_trace) ||
      !GetVarint64SignedZigZag(input, &b->min_ts) ||
      !GetVarint64SignedZigZag(input, &b->max_ts) ||
      !GetVarint64(input, &count) || count == 0 ||
      count > (input->size() / 6 + 1) * kForGroupSize) {
    // Every FOR group costs >= 6 bytes (three columns of varint min +
    // width byte) for up to kForGroupSize postings, which bounds any
    // plausible count — a guard against allocating on garbage.
    return false;
  }
  b->trace_delta.resize(count);
  std::vector<uint64_t> ts_resid(count);
  b->duration.resize(count);
  b->ts_first.resize(count);
  int64_t prev_ts = b->min_ts;
  for (size_t begin = 0; begin < count; begin += kForGroupSize) {
    size_t n = std::min(kForGroupSize, static_cast<size_t>(count) - begin);
    int64_t slope = 0;
    if (!GetVarint64SignedZigZag(input, &slope) ||
        !GetForColumn(input, n, b->trace_delta.data() + begin) ||
        !GetForColumn(input, n, ts_resid.data() + begin) ||
        !GetForColumn(input, n, b->duration.data() + begin)) {
      return false;
    }
    for (size_t i = begin; i < begin + n; ++i) {
      // Mirror of the encoder's wrap-around prediction arithmetic.
      prev_ts = static_cast<int64_t>(
          static_cast<uint64_t>(prev_ts) +
          static_cast<uint64_t>(slope) * b->trace_delta[i] +
          static_cast<uint64_t>(ZigZagDecode64(ts_resid[i])));
      b->ts_first[i] = prev_ts;
    }
  }
  return true;
}

}  // namespace

void TranscodePostingValue(std::string_view value, std::string* out) {
  std::vector<PostingBlock> blocks;
  if (ParsePostingValue(value, &blocks)) {
    std::string encoded;
    encoded.push_back(kTagPostingFor);
    for (const PostingBlock& b : blocks) EncodeForBlock(b, &encoded);
    // Only keep the transcode when it decodes back to the exact original
    // bytes (canonicality check) and actually saves space.
    std::string round_trip;
    if (encoded.size() < value.size() + 1 &&
        UntranscodePostingValue(encoded, &round_trip) &&
        round_trip == value) {
      out->append(encoded);
      return;
    }
  }
  out->push_back(kTagRaw);
  out->append(value);
}

bool UntranscodePostingValue(std::string_view stored, std::string* out) {
  if (stored.empty()) return false;
  char tag = stored.front();
  stored.remove_prefix(1);
  if (tag == kTagRaw) {
    out->append(stored);
    return true;
  }
  if (tag != kTagPostingFor) return false;
  std::vector<PostingBlock> blocks;
  while (!stored.empty()) {
    PostingBlock b;
    if (!DecodeForBlock(&stored, &b)) return false;
    blocks.push_back(std::move(b));
  }
  if (blocks.empty()) return false;
  ReencodePostingValue(blocks, out);
  return true;
}

bool ZstdAvailable() {
#if defined(SEQDET_HAVE_ZSTD)
  return true;
#else
  return false;
#endif
}

bool ZstdCompressBlock(std::string_view input, std::string* out) {
#if defined(SEQDET_HAVE_ZSTD)
  size_t bound = ZSTD_compressBound(input.size());
  size_t base = out->size();
  out->resize(base + bound);
  size_t n = ZSTD_compress(out->data() + base, bound, input.data(),
                           input.size(), /*level=*/3);
  if (ZSTD_isError(n)) {
    out->resize(base);
    return false;
  }
  out->resize(base + n);
  return true;
#else
  (void)input;
  (void)out;
  return false;
#endif
}

bool ZstdDecompressBlock(std::string_view input, size_t raw_size,
                         std::string* out) {
#if defined(SEQDET_HAVE_ZSTD)
  size_t base = out->size();
  out->resize(base + raw_size);
  size_t n =
      ZSTD_decompress(out->data() + base, raw_size, input.data(), input.size());
  if (ZSTD_isError(n) || n != raw_size) {
    out->resize(base);
    return false;
  }
  return true;
#else
  (void)input;
  (void)raw_size;
  (void)out;
  return false;
#endif
}

}  // namespace seqdet::storage
