#ifndef SEQDET_STORAGE_WAL_H_
#define SEQDET_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/record.h"

namespace seqdet::storage {

/// Per-table write-ahead log.
///
/// Record layout: `fixed32 crc(payload)  varint payload_len  payload`,
/// with `payload = kind(1) varint(klen) key varint(vlen) value`.
///
/// Replay tolerates a corrupt/truncated tail — recovery keeps every record
/// up to the first bad checksum and discards the rest, which is the correct
/// behaviour for a crash mid-append.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (appends to) the log at `path`.
  Status Open(const std::string& path, bool sync_each_record);

  /// Appends one mutation.
  Status Add(RecordKind kind, std::string_view key, std::string_view value);

  /// Flushes buffered bytes to the OS.
  Status Flush();

  /// Truncates the log to empty (called after a successful memtable flush).
  Status Reset();

  void Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool sync_each_record_ = false;
};

/// Replays the WAL at `path`, invoking `fn` for each intact record in
/// order. Missing file is fine (returns OK, zero records). Returns the
/// number of replayed records in `*replayed` when non-null.
Status ReplayWal(
    const std::string& path,
    const std::function<void(RecordKind, std::string_view, std::string_view)>&
        fn,
    size_t* replayed = nullptr);

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_WAL_H_
