#ifndef SEQDET_STORAGE_SEGMENT_H_
#define SEQDET_STORAGE_SEGMENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/bloom_filter.h"
#include "storage/record.h"
#include "storage/segment_codec.h"

namespace seqdet::storage {

/// Knobs of the segment writer (see FORMATS.md for the layouts).
struct SegmentWriteOptions {
  /// 2 writes the block-compressed SDSEG2 format; 1 the legacy flat
  /// SDSEG1 format (readers understand both).
  uint32_t format_version = 2;
  /// Target plaintext bytes per SDSEG2 block (pre-compression).
  size_t block_bytes = 4096;
  /// Entries between key restart points inside a block.
  size_t restart_interval = 16;
  /// Block codec; kZstd degrades to kPostingFor when zstd is absent.
  BlockCodec codec = BlockCodec::kPostingFor;
};

/// Immutable sorted run of folded records, the on-disk unit of a table.
///
/// Two formats share this reader:
///
/// SDSEG1 (legacy): the whole file is read into memory and parsed into a
/// full entry index up front — open cost O(file).
///
/// SDSEG2: entries are grouped into ~4 KiB blocks (prefix-compressed keys
/// with restart points, per-value posting-FOR or whole-block zstd payload
/// compression, per-block CRC); a footer carries fence pointers (first key
/// + offset per block), entry counts and a serialized Bloom filter. The
/// reader mmaps the file, parses only the footer at open (O(footer)), and
/// binary-searches fence pointers on reads, decompressing and CRC-checking
/// just the blocks a Find/LowerBound/Entry touches. Decoded blocks are
/// cached for the segment's lifetime, so returned EntryRef views stay
/// valid as long as the segment is alive.
///
/// Because corruption in a lazily-read block is only discovered when that
/// block is first touched, the read accessors return Result and surface
/// Status::Corruption instead of crashing.
class Segment {
 public:
  struct EntryRef {
    std::string_view key;
    RecordKind kind;
    std::string_view value;
  };

  /// Open/size/compression facts for introspection (`seqdet info`).
  struct Stats {
    uint32_t format = 1;
    size_t num_blocks = 0;       // 0 for SDSEG1
    uint64_t disk_bytes = 0;     // serialized size
    uint64_t logical_bytes = 0;  // SDSEG1-equivalent encoding of the entries
  };

  ~Segment();
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  /// Parses a serialized segment of either format from memory (validates
  /// magic, footer/trailer and whole-file or footer checksum).
  static Result<std::shared_ptr<Segment>> FromBuffer(std::string buffer);

  /// Opens the segment file at `path`: SDSEG2 files are mmap-ed and only
  /// the footer is parsed; SDSEG1 files are read whole as before.
  static Result<std::shared_ptr<Segment>> Load(const std::string& path);

  /// Binary-searches for `key`; the pointer is nullptr when absent and
  /// otherwise stays valid for the segment's lifetime. A Bloom filter
  /// (persisted in SDSEG2, rebuilt at load for SDSEG1) rejects most absent
  /// keys without touching any block.
  Result<const EntryRef*> Find(std::string_view key) const
      REQUIRES(!decode_mu_);

  /// Bloom pre-test only (false = definitely absent).
  bool MayContain(std::string_view key) const {
    return bloom_.MayContain(key);
  }

  /// Index of the first entry with key >= `key` (for scans).
  Result<size_t> LowerBound(std::string_view key) const
      REQUIRES(!decode_mu_);

  /// The entry at `pos` (pos < size()). Views stay valid for the
  /// segment's lifetime.
  Result<EntryRef> Entry(size_t pos) const REQUIRES(!decode_mu_);

  size_t size() const { return entry_count_; }
  size_t SizeBytes() const { return data_.size(); }
  uint32_t format() const { return stats_.format; }
  const Stats& stats() const { return stats_; }

 private:
  /// Fence-pointer entry: one per block, parsed from the footer at open.
  struct BlockMeta {
    uint64_t offset = 0;     // file offset of the block's first byte
    uint64_t disk_size = 0;  // bytes on disk (post-compression)
    uint64_t raw_size = 0;   // plaintext bytes (pre-compression)
    uint32_t crc = 0;        // crc32 of the on-disk block bytes
    BlockCodec codec = BlockCodec::kRaw;
    uint64_t entry_base = 0;  // global index of the block's first entry
    uint64_t entry_count = 0;
    std::string_view first_key;  // view into the footer region of data_
  };

  /// A lazily-decoded block: entry views into an arena materialized on
  /// first touch, then cached until the segment dies.
  struct DecodedBlock {
    std::string arena;
    std::vector<EntryRef> entries;  // views into arena
  };

  Segment() : bloom_(0) {}

  Status ParseV1();
  Status ParseV2() REQUIRES(!decode_mu_);
  /// Decodes block `bi` (CRC check, decompression, entry parse). Touches
  /// mmap-ed bytes, so first access can fault pages in from disk.
  SEQDET_BLOCKING Result<std::unique_ptr<DecodedBlock>> DecodeBlock(
      size_t bi) const;
  /// Returns the cached decode of block `bi`, filling it on first use.
  /// The fill deliberately runs under decode_mu_ (double-checked publish):
  /// decode_mu_ is a leaf lock and serializing the decode is the point —
  /// see the lock-order map in common/sync.h.
  Result<const DecodedBlock*> GetDecodedBlock(size_t bi) const
      REQUIRES(!decode_mu_);
  /// Index of the block that holds global entry `pos`.
  size_t BlockForEntry(size_t pos) const;
  /// Index of the last block whose first_key <= key (0 when key precedes
  /// every fence).
  size_t BlockForKey(std::string_view key) const;

  // Backing bytes: either an owned buffer (FromBuffer) or an mmap (Load of
  // an SDSEG2 file); data_ views whichever one is in use.
  std::string buffer_;
  void* map_addr_ = nullptr;
  size_t map_size_ = 0;
  std::string_view data_;

  Stats stats_;
  size_t entry_count_ = 0;
  BloomFilter bloom_;

  // SDSEG1: the eagerly parsed entry index (views into buffer_).
  std::vector<EntryRef> entries_;

  // SDSEG2: fence pointers plus the lazy per-block decode cache. Blocks
  // are decoded under decode_mu_ and published through the lock-free
  // atomics in decoded_; once published a block is immutable.
  std::vector<BlockMeta> blocks_;
  mutable Mutex decode_mu_;
  mutable std::vector<std::unique_ptr<DecodedBlock>> decoded_owner_
      GUARDED_BY(decode_mu_);
  mutable std::vector<std::atomic<const DecodedBlock*>> decoded_;
};

/// Streams folded records (in ascending key order) into the segment
/// format selected by SegmentWriteOptions.
class SegmentBuilder {
 public:
  SegmentBuilder() : SegmentBuilder(SegmentWriteOptions{}) {}
  explicit SegmentBuilder(const SegmentWriteOptions& options);

  /// Adds one entry; keys must be strictly ascending.
  Status Add(std::string_view key, RecordKind kind, std::string_view value);

  /// Seals the segment and returns the serialized bytes.
  std::string Finish();

  size_t num_entries() const { return count_; }

 private:
  void FlushBlock();

  SegmentWriteOptions options_;
  BlockCodec effective_codec_;

  std::string buffer_;  // serialized file so far (starts with the magic)
  std::string last_key_;
  uint64_t count_ = 0;
  bool finished_ = false;

  // SDSEG2 state: the open block and the per-block metadata accumulated
  // for the footer.
  std::string block_;  // plaintext entry region of the open block
  std::vector<uint32_t> restarts_;
  uint64_t block_entry_count_ = 0;
  std::string block_first_key_;
  uint64_t logical_bytes_ = 0;
  struct PendingBlock {
    uint64_t offset;
    uint64_t disk_size;
    uint64_t raw_size;
    uint32_t crc;
    BlockCodec codec;
    uint64_t entry_count;
    std::string first_key;
  };
  std::vector<PendingBlock> pending_;
  std::vector<std::string> keys_;  // for the Bloom filter, sized at Finish
};

/// Writes `buffer` to `path` atomically (write temp + rename).
Status WriteFileAtomic(const std::string& path, std::string_view buffer);

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_SEGMENT_H_
