#ifndef SEQDET_STORAGE_SEGMENT_H_
#define SEQDET_STORAGE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/bloom_filter.h"
#include "storage/record.h"

namespace seqdet::storage {

/// Immutable sorted run of folded records, the on-disk unit of a table.
///
/// Layout:
/// ```
///   "SDSEG1"                                  6-byte magic
///   entry*   : kind(1) varint(klen) key varint(vlen) value   (ascending key)
///   footer   : fixed64 entry_count, fixed32 crc32(everything before footer)
/// ```
///
/// Readers keep the whole segment in memory and binary-search a parsed
/// entry index. That matches this library's scale (posting lists of a few
/// hundred MB at most) and keeps point reads allocation-free; a block-based
/// format would drop in behind the same interface if needed.
class Segment {
 public:
  struct EntryRef {
    std::string_view key;
    RecordKind kind;
    std::string_view value;
  };

  /// Parses a serialized segment (validates magic, footer and checksum).
  static Result<std::shared_ptr<Segment>> FromBuffer(std::string buffer);

  /// Reads and parses the segment file at `path`.
  static Result<std::shared_ptr<Segment>> Load(const std::string& path);

  /// Binary-searches for `key`; returns nullptr when absent. A Bloom
  /// filter built at load time rejects most absent keys without the
  /// search.
  const EntryRef* Find(std::string_view key) const;

  /// Bloom pre-test only (false = definitely absent).
  bool MayContain(std::string_view key) const {
    return bloom_.MayContain(key);
  }

  /// Index of the first entry with key >= `key` (for scans).
  size_t LowerBound(std::string_view key) const;

  const std::vector<EntryRef>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  size_t SizeBytes() const { return buffer_.size(); }

 private:
  Segment() : bloom_(0) {}

  std::string buffer_;
  std::vector<EntryRef> entries_;  // views into buffer_
  BloomFilter bloom_;
};

/// Streams folded records (in ascending key order) into the segment format.
class SegmentBuilder {
 public:
  SegmentBuilder();

  /// Adds one entry; keys must be strictly ascending.
  Status Add(std::string_view key, RecordKind kind, std::string_view value);

  /// Seals the segment and returns the serialized bytes.
  std::string Finish();

  size_t num_entries() const { return count_; }

 private:
  std::string buffer_;
  std::string last_key_;
  uint64_t count_ = 0;
  bool finished_ = false;
};

/// Writes `buffer` to `path` atomically (write temp + rename).
Status WriteFileAtomic(const std::string& path, std::string_view buffer);

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_SEGMENT_H_
