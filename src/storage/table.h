#ifndef SEQDET_STORAGE_TABLE_H_
#define SEQDET_STORAGE_TABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/kv.h"
#include "storage/memtable.h"
#include "storage/segment.h"
#include "storage/wal.h"
#include "storage/write_batch.h"

namespace seqdet::storage {

/// Tuning knobs for a table (shared by all tables of a Database).
struct TableOptions {
  /// Memtable size that triggers an automatic flush to a segment.
  size_t memtable_flush_bytes = 32u << 20;
  /// Write mutations to a WAL before applying (disabled in in-memory mode).
  bool use_wal = true;
  /// fflush the WAL after every record (slow; default batches).
  bool sync_wal = false;
  /// Keep segments purely in memory; nothing touches the filesystem.
  bool in_memory = false;
  /// Auto-compact when a flush leaves more than this many segments
  /// (size-tiered-style read-amplification bound). 0 disables.
  size_t max_segments = 0;
  /// Segment writer knobs (format version, block size, codec). Reads
  /// understand both formats regardless of this setting.
  SegmentWriteOptions segment;
};

/// Aggregated per-table segment facts for introspection (`seqdet info`).
struct TableSegmentStats {
  size_t num_segments = 0;
  size_t v1_segments = 0;
  size_t v2_segments = 0;
  size_t num_blocks = 0;       // across SDSEG2 segments
  uint64_t disk_bytes = 0;     // serialized segment bytes
  uint64_t logical_bytes = 0;  // SDSEG1-equivalent encoding of the entries

  void Merge(const TableSegmentStats& other) {
    num_segments += other.num_segments;
    v1_segments += other.v1_segments;
    v2_segments += other.v2_segments;
    num_blocks += other.num_blocks;
    disk_bytes += other.disk_bytes;
    logical_bytes += other.logical_bytes;
  }
};

/// A named key-value table (the analogue of one Cassandra table in the
/// paper: Seq, Index, Count, ReverseCount, LastChecked each map to one
/// Table).
///
/// Write path: WAL append -> memtable fold. Reads consult the memtable and
/// then segments newest-to-oldest, folding `kAppend` fragments over the
/// newest `kPut` base (or over nothing). `Flush` turns the memtable into an
/// immutable sorted segment; `Compact` merges all segments into one,
/// resolving appends and dropping tombstones.
///
/// Thread-safe: reads take a shared lock, writes/flush/compact an exclusive
/// lock.
class Table : public Kv {
 public:
  /// Opens (and recovers) the table `name` inside `dir`. In in-memory mode
  /// `dir` is unused.
  static Result<std::unique_ptr<Table>> Open(const std::string& dir,
                                             const std::string& name,
                                             const TableOptions& options);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  Status Put(std::string_view key, std::string_view value) override
      REQUIRES(!mu_);
  Status Append(std::string_view key, std::string_view fragment) override
      REQUIRES(!mu_);
  Status Delete(std::string_view key) override REQUIRES(!mu_);

  /// Applies all records of `batch` atomically (one lock acquisition).
  Status Apply(const WriteBatch& batch) override REQUIRES(!mu_);

  /// See Kv::RewriteValue(). The whole read-transform-write runs under the
  /// exclusive lock and commits as one WAL'd kPut record, so the rewrite is
  /// atomic against concurrent writers, readers and crashes.
  Status RewriteValue(
      std::string_view key,
      const std::function<Status(std::string_view, std::string*)>& fn)
      override REQUIRES(!mu_);

  /// Reads the folded value of `key`. Returns NotFound when the key has no
  /// live value.
  Status Get(std::string_view key, std::string* value) const override
      REQUIRES(!mu_);

  bool Contains(std::string_view key) const override REQUIRES(!mu_);

  /// Calls `fn(key, folded_value)` for every live key in
  /// [start_key, end_key) in ascending order. An empty `end_key` means "to
  /// the end"; an empty `start_key` means "from the beginning". If `fn`
  /// returns false the scan stops early.
  Status Scan(
      std::string_view start_key, std::string_view end_key,
      const std::function<bool(std::string_view, std::string_view)>& fn)
      const override REQUIRES(!mu_);

  /// Scans all keys beginning with `prefix`.
  Status ScanPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, std::string_view)>& fn)
      const REQUIRES(!mu_);

  /// Persists the memtable as a new segment (no-op when empty).
  /// Blocking when the table is durable (segment + WAL file I/O under the
  /// exclusive lock — the lock *is* the flush's atomicity, by design).
  Status Flush() override REQUIRES(!mu_);

  /// Flushes, then merges every segment into a single one. Blocking, same
  /// rationale as Flush().
  Status Compact() override REQUIRES(!mu_);

  const std::string& name() const override { return name_; }

  /// See Kv::Version(). Incremented before the mutation is applied, under
  /// the exclusive lock; readable without any lock.
  uint64_t Version() const override {
    return version_.load(std::memory_order_acquire);
  }

  size_t NumSegments() const REQUIRES(!mu_);
  size_t MemTableBytes() const REQUIRES(!mu_);
  size_t ApproximateEntryCount() const override REQUIRES(!mu_);

  /// Aggregated segment format/size facts.
  TableSegmentStats GetSegmentStats() const REQUIRES(!mu_);

  /// Raises the segment format newly written segments use (roll-forward
  /// only: requests to lower the version are ignored so a durable format
  /// marker can never regress the on-disk state).
  void SetSegmentFormat(uint32_t format_version) REQUIRES(!mu_);

  /// The segment format new segments are written with.
  uint32_t segment_format() const REQUIRES(!mu_);

  /// Deletes this table's files. The table must be destroyed afterwards.
  Status DestroyFiles() REQUIRES(!mu_);

 private:
  Table(std::string dir, std::string name, TableOptions options);

  Status Recover() REQUIRES(!mu_);
  Status WriteRecordLocked(RecordKind kind, std::string_view key,
                           std::string_view value) REQUIRES(mu_);
  Status MaybeFlushLocked() REQUIRES(mu_);
  Status FlushLocked() REQUIRES(mu_);
  Status CompactLocked() REQUIRES(mu_);
  std::string SegmentPath(uint64_t id) const;
  std::string WalPath(uint64_t id) const;
  Status RotateWalLocked(uint64_t flushed_id) REQUIRES(mu_);

  // Folds the value of `key` across memtable + segments. Returns true when
  // a live value exists, an error when a segment block turns out to be
  // corrupt. Readers call it under the shared lock, RewriteValue under the
  // exclusive one.
  Result<bool> FoldGetLocked(std::string_view key, std::string* value) const
      REQUIRES_SHARED(mu_);

  std::string dir_;
  std::string name_;
  TableOptions options_ GUARDED_BY(mu_);

  /// Lock order: Table::mu_ -> Segment::decode_mu_ (reads touch lazily
  /// decoded segment blocks while holding mu_ shared); acquired *under*
  /// Database::mu_ by the open/flush-all paths. See common/sync.h.
  mutable SharedMutex mu_;
  MemTable mem_ GUARDED_BY(mu_);
  // Oldest first; segment_ids_ is parallel to segments_.
  std::vector<std::shared_ptr<Segment>> segments_ GUARDED_BY(mu_);
  std::vector<uint64_t> segment_ids_ GUARDED_BY(mu_);
  WalWriter wal_ GUARDED_BY(mu_);
  uint64_t next_segment_id_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> version_{0};
};

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_TABLE_H_
