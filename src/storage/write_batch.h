#ifndef SEQDET_STORAGE_WRITE_BATCH_H_
#define SEQDET_STORAGE_WRITE_BATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "storage/record.h"

namespace seqdet::storage {

/// An ordered group of mutations applied atomically to one table.
///
/// The index builder accumulates all pair postings of a trace batch into a
/// WriteBatch so the per-table lock is taken once per batch rather than once
/// per posting.
class WriteBatch {
 public:
  WriteBatch() = default;

  void Put(std::string_view key, std::string_view value) {
    records_.push_back(
        Record{RecordKind::kPut, std::string(key), std::string(value)});
  }

  void Append(std::string_view key, std::string_view fragment) {
    records_.push_back(
        Record{RecordKind::kAppend, std::string(key), std::string(fragment)});
  }

  void Delete(std::string_view key) {
    records_.push_back(Record{RecordKind::kDelete, std::string(key), {}});
  }

  /// Appends a pre-built record (used when re-partitioning a batch).
  void Add(Record record) { records_.push_back(std::move(record)); }

  void Clear() { records_.clear(); }
  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_WRITE_BATCH_H_
