#ifndef SEQDET_STORAGE_MEMTABLE_H_
#define SEQDET_STORAGE_MEMTABLE_H_

#include <map>
#include <string>
#include <string_view>

#include "storage/record.h"

namespace seqdet::storage {

/// In-memory write buffer of one table: an ordered map from key to the
/// *partially folded* state of that key since the last flush.
///
/// Each entry collapses the mutation history seen by the memtable:
///  * kPut     — the key was overwritten (or deleted-then-appended etc.);
///               `value` is final as of this memtable, older segments are
///               irrelevant.
///  * kDelete  — tombstone; shadows older segments.
///  * kAppend  — only appends were seen; `value` is the concatenation of the
///               fragments and must be merged after older state on reads.
class MemTable {
 public:
  struct Entry {
    RecordKind kind = RecordKind::kAppend;
    std::string value;
  };

  MemTable() = default;

  /// Folds one mutation into the buffered state of `key`.
  void Apply(RecordKind kind, std::string_view key, std::string_view value);

  /// Returns the buffered entry for `key` or nullptr.
  const Entry* Find(std::string_view key) const;

  const std::map<std::string, Entry, std::less<>>& entries() const {
    return entries_;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Approximate heap usage, used for flush thresholds.
  size_t ApproximateBytes() const { return approximate_bytes_; }

  void Clear();

 private:
  std::map<std::string, Entry, std::less<>> entries_;
  size_t approximate_bytes_ = 0;
};

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_MEMTABLE_H_
