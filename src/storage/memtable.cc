#include "storage/memtable.h"

namespace seqdet::storage {

void MemTable::Apply(RecordKind kind, std::string_view key,
                     std::string_view value) {
  auto it = entries_.find(key);
  switch (kind) {
    case RecordKind::kPut:
      if (it == entries_.end()) {
        approximate_bytes_ += key.size() + value.size() + 32;
        entries_.emplace(std::string(key),
                         Entry{RecordKind::kPut, std::string(value)});
      } else {
        approximate_bytes_ += value.size();
        approximate_bytes_ -= it->second.value.size();
        it->second.kind = RecordKind::kPut;
        it->second.value.assign(value);
      }
      break;
    case RecordKind::kDelete:
      if (it == entries_.end()) {
        approximate_bytes_ += key.size() + 32;
        entries_.emplace(std::string(key), Entry{RecordKind::kDelete, {}});
      } else {
        approximate_bytes_ -= it->second.value.size();
        it->second.kind = RecordKind::kDelete;
        it->second.value.clear();
      }
      break;
    case RecordKind::kAppend:
      if (it == entries_.end()) {
        approximate_bytes_ += key.size() + value.size() + 32;
        entries_.emplace(std::string(key),
                         Entry{RecordKind::kAppend, std::string(value)});
      } else {
        approximate_bytes_ += value.size();
        if (it->second.kind == RecordKind::kDelete) {
          // Delete followed by append == put of just the fragment.
          it->second.kind = RecordKind::kPut;
          it->second.value.assign(value);
        } else {
          // Put+append stays kPut; append+append stays kAppend.
          it->second.value.append(value);
        }
      }
      break;
  }
}

const MemTable::Entry* MemTable::Find(std::string_view key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void MemTable::Clear() {
  entries_.clear();
  approximate_bytes_ = 0;
}

}  // namespace seqdet::storage
