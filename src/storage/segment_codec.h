#ifndef SEQDET_STORAGE_SEGMENT_CODEC_H_
#define SEQDET_STORAGE_SEGMENT_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace seqdet::storage {

/// Block codecs of the SDSEG2 segment format (see FORMATS.md).
///
/// The codec id is recorded per block in the segment index footer:
///  - kRaw:        block plaintext stored as-is, values verbatim.
///  - kPostingFor: values inside the block carry a 1-byte tag; values that
///                 parse as v2 posting-block sequences are transcoded to a
///                 frame-of-reference bitpacked-delta layout, everything
///                 else stays raw behind tag 0. The block framing itself
///                 (prefix-compressed keys, restarts) is unchanged.
///  - kZstd:       whole-block zstd of the kRaw plaintext. Only written
///                 when the library was built against zstd
///                 (SEQDET_HAVE_ZSTD); builders silently fall back to
///                 kPostingFor otherwise, readers report Corruption.
enum class BlockCodec : uint8_t {
  kRaw = 0,
  kPostingFor = 1,
  kZstd = 2,
};

/// Per-value transcode of codec kPostingFor. Appends a tagged encoding of
/// `value` to `*out`: tag 1 + FOR-compressed posting blocks when `value`
/// strictly parses as a v2 posting-block sequence AND the transcode
/// round-trips byte-exactly (verified at build time), else tag 0 + the
/// original bytes. Never fails.
void TranscodePostingValue(std::string_view value, std::string* out);

/// Reverses TranscodePostingValue, appending the original value bytes to
/// `*out`. False on malformed input (`*out` may hold partial data).
bool UntranscodePostingValue(std::string_view stored, std::string* out);

/// Whether whole-block zstd support was compiled in.
bool ZstdAvailable();

/// Compresses `input` with zstd, appending to `*out`. False when zstd is
/// unavailable or compression fails.
bool ZstdCompressBlock(std::string_view input, std::string* out);

/// Decompresses a zstd block of known decompressed size `raw_size`,
/// appending to `*out`. False when zstd is unavailable, the frame is
/// malformed, or the output size differs from `raw_size`.
bool ZstdDecompressBlock(std::string_view input, size_t raw_size,
                         std::string* out);

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_SEGMENT_CODEC_H_
