#ifndef SEQDET_STORAGE_RECORD_H_
#define SEQDET_STORAGE_RECORD_H_

#include <cstdint>
#include <string>

namespace seqdet::storage {

/// Kinds of mutations a table accepts.
///
/// `kAppend` is the store's merge operator: the fragment is logically
/// concatenated to whatever value the key already has. The event-pair index
/// relies on it — incremental index updates append `(trace, ts_a, ts_b)`
/// triples to posting lists without reading them back (Cassandra-style
/// write-path behaviour, resolved lazily on reads and during compaction).
enum class RecordKind : uint8_t {
  kPut = 0,
  kAppend = 1,
  kDelete = 2,
};

/// A single mutation against one key.
struct Record {
  RecordKind kind = RecordKind::kPut;
  std::string key;
  std::string value;  // empty for kDelete
};

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_RECORD_H_
