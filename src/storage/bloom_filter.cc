#include "storage/bloom_filter.h"

#include <algorithm>

namespace seqdet::storage {

BloomFilter::BloomFilter(size_t expected_keys, size_t bits_per_key) {
  size_t bits = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_.assign((bits + 63) / 64, 0);
  // k = ln(2) * bits/key, clamped to a sane range.
  num_probes_ = std::clamp<size_t>(
      static_cast<size_t>(0.69 * static_cast<double>(bits_per_key)), 1, 8);
}

uint64_t BloomFilter::Hash(std::string_view key, uint64_t seed) {
  // FNV-1a with a seed twist; double hashing derives the probe sequence.
  uint64_t h = 0xcbf29ce484222325ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void BloomFilter::Add(std::string_view key) {
  const uint64_t h1 = Hash(key, 1);
  const uint64_t h2 = Hash(key, 2) | 1;  // odd stride
  const size_t nbits = bits_.size() * 64;
  for (size_t i = 0; i < num_probes_; ++i) {
    size_t bit = (h1 + i * h2) % nbits;
    bits_[bit / 64] |= 1ULL << (bit % 64);
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  const uint64_t h1 = Hash(key, 1);
  const uint64_t h2 = Hash(key, 2) | 1;
  const size_t nbits = bits_.size() * 64;
  for (size_t i = 0; i < num_probes_; ++i) {
    size_t bit = (h1 + i * h2) % nbits;
    if ((bits_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

}  // namespace seqdet::storage
