#include "storage/bloom_filter.h"

#include <algorithm>

#include "common/coding.h"

namespace seqdet::storage {

BloomFilter::BloomFilter(size_t expected_keys, size_t bits_per_key) {
  size_t bits = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_.assign((bits + 63) / 64, 0);
  // k = ln(2) * bits/key, clamped to a sane range.
  num_probes_ = std::clamp<size_t>(
      static_cast<size_t>(0.69 * static_cast<double>(bits_per_key)), 1, 8);
}

uint64_t BloomFilter::Hash(std::string_view key, uint64_t seed) {
  // FNV-1a with a seed twist; double hashing derives the probe sequence.
  uint64_t h = 0xcbf29ce484222325ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void BloomFilter::Add(std::string_view key) {
  const uint64_t h1 = Hash(key, 1);
  const uint64_t h2 = Hash(key, 2) | 1;  // odd stride
  const size_t nbits = bits_.size() * 64;
  for (size_t i = 0; i < num_probes_; ++i) {
    size_t bit = (h1 + i * h2) % nbits;
    bits_[bit / 64] |= 1ULL << (bit % 64);
  }
}

void BloomFilter::Serialize(std::string* dst) const {
  PutVarint64(dst, num_probes_);
  PutVarint64(dst, bits_.size());
  for (uint64_t word : bits_) PutFixed64(dst, word);
}

bool BloomFilter::Deserialize(std::string_view* input) {
  uint64_t probes = 0;
  uint64_t words = 0;
  if (!GetVarint64(input, &probes) || !GetVarint64(input, &words)) {
    return false;
  }
  if (probes < 1 || probes > 8) return false;
  if (words < 1 || words > input->size() / 8 + 1 ||
      input->size() < words * 8) {
    return false;
  }
  std::vector<uint64_t> bits(words);
  for (uint64_t i = 0; i < words; ++i) {
    uint64_t word = 0;
    if (!GetFixed64(input, &word)) return false;
    bits[i] = word;
  }
  bits_ = std::move(bits);
  num_probes_ = probes;
  return true;
}

bool BloomFilter::MayContain(std::string_view key) const {
  const uint64_t h1 = Hash(key, 1);
  const uint64_t h2 = Hash(key, 2) | 1;
  const size_t nbits = bits_.size() * 64;
  for (size_t i = 0; i < num_probes_; ++i) {
    size_t bit = (h1 + i * h2) % nbits;
    if ((bits_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

}  // namespace seqdet::storage
