#ifndef SEQDET_STORAGE_DATABASE_H_
#define SEQDET_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/sharded_table.h"
#include "storage/table.h"

namespace seqdet::storage {

/// Database-wide options.
struct DbOptions {
  TableOptions table;
};

/// A directory of named Tables — the "indexing database" of Figure 1.
///
/// Opening a database recovers every table found in the directory (the
/// directory listing is the manifest: a table exists if any of its
/// `<name>.<id>.seg` / `<name>.wal` files do). In in-memory mode no
/// directory is used and tables live only as long as the Database.
class Database {
 public:
  /// Opens (creating if needed) the database at `dir`. Pass an empty `dir`
  /// together with `options.table.in_memory = true` for a pure in-memory
  /// database.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                const DbOptions& options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Returns the table `name`, creating it when absent.
  Result<Table*> GetOrCreateTable(const std::string& name) REQUIRES(!mu_);

  /// Returns the logical table `name` hash-partitioned into `num_shards`
  /// physical tables (`name_sNN`). Re-assembles shards discovered on disk;
  /// the shard count must match across reopens (callers persist it — the
  /// SequenceIndex stores it in its meta table).
  Result<ShardedTable*> GetOrCreateShardedTable(const std::string& name,
                                                size_t num_shards)
      REQUIRES(!mu_);

  /// Returns the table `name` or nullptr.
  Table* GetTable(const std::string& name) const REQUIRES(!mu_);

  /// Drops `name`, deleting its files.
  Status DropTable(const std::string& name) REQUIRES(!mu_);

  /// Flushes every table's memtable.
  Status FlushAll() REQUIRES(!mu_);

  /// Compacts every table.
  Status CompactAll() REQUIRES(!mu_);

  /// Names of the plain (non-sharded) tables.
  std::vector<std::string> TableNames() const REQUIRES(!mu_);

  /// Names of the assembled logical sharded tables.
  std::vector<std::string> ShardedTableNames() const REQUIRES(!mu_);

  /// Returns the assembled sharded table `name` or nullptr.
  ShardedTable* GetShardedTable(const std::string& name) const
      REQUIRES(!mu_);

  /// Raises the segment format of every open table and of tables created
  /// later (roll-forward only — lowering is ignored, see
  /// Table::SetSegmentFormat). Used to apply a durable format marker after
  /// the tables carrying it were already opened.
  void SetSegmentFormat(uint32_t format_version) REQUIRES(!mu_);

  /// Segment stats summed over every open table (plain + sharded).
  TableSegmentStats GetSegmentStats() const REQUIRES(!mu_);

  /// The segment format new tables will be created with.
  uint32_t segment_format() const REQUIRES(!mu_);

  const std::string& dir() const { return dir_; }
  bool in_memory() const { return options_.table.in_memory; }

 private:
  Database(std::string dir, DbOptions options);

  Status DiscoverExistingTables() REQUIRES(!mu_);

  std::string dir_;
  DbOptions options_;
  /// Lock order: Database::mu_ -> Table::mu_ (FlushAll/CompactAll and the
  /// stats rollups call into tables while holding it) — the root of the
  /// storage chain in common/sync.h's map.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<ShardedTable>> sharded_
      GUARDED_BY(mu_);
};

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_DATABASE_H_
