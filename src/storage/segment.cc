#include "storage/segment.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/strings.h"

namespace seqdet::storage {

namespace {
constexpr std::string_view kMagic = "SDSEG1";
constexpr size_t kFooterSize = 8 + 4;  // fixed64 count + fixed32 crc
}  // namespace

Result<std::shared_ptr<Segment>> Segment::FromBuffer(std::string buffer) {
  if (buffer.size() < kMagic.size() + kFooterSize) {
    return Status::Corruption("segment too small");
  }
  if (std::string_view(buffer).substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("bad segment magic");
  }
  std::string_view footer =
      std::string_view(buffer).substr(buffer.size() - kFooterSize);
  uint64_t count;
  uint32_t crc;
  GetFixed64(&footer, &count);
  GetFixed32(&footer, &crc);
  std::string_view body(buffer.data(), buffer.size() - kFooterSize);
  if (Crc32(body) != crc) {
    return Status::Corruption("segment checksum mismatch");
  }

  auto segment = std::shared_ptr<Segment>(new Segment());
  segment->buffer_ = std::move(buffer);
  std::string_view cursor(segment->buffer_);
  cursor.remove_prefix(kMagic.size());
  cursor.remove_suffix(kFooterSize);
  // The footer is outside the checksummed body, so `count` is untrusted:
  // clamp the reservation to what the body could possibly hold (entries
  // are >= 3 bytes) and rely on the count-mismatch check below.
  segment->entries_.reserve(
      std::min<uint64_t>(count, cursor.size() / 3 + 1));
  while (!cursor.empty()) {
    if (segment->entries_.size() == count) {
      return Status::Corruption("segment has trailing bytes");
    }
    uint8_t kind = static_cast<uint8_t>(cursor.front());
    if (kind > static_cast<uint8_t>(RecordKind::kDelete)) {
      return Status::Corruption("bad record kind in segment");
    }
    cursor.remove_prefix(1);
    std::string_view key, value;
    if (!GetLengthPrefixed(&cursor, &key) ||
        !GetLengthPrefixed(&cursor, &value)) {
      return Status::Corruption("truncated segment entry");
    }
    segment->entries_.push_back(
        EntryRef{key, static_cast<RecordKind>(kind), value});
  }
  if (segment->entries_.size() != count) {
    return Status::Corruption(
        StringPrintf("segment entry count mismatch: footer says %llu, "
                     "parsed %zu",
                     static_cast<unsigned long long>(count),
                     segment->entries_.size()));
  }
  segment->bloom_ = BloomFilter(segment->entries_.size());
  for (const EntryRef& entry : segment->entries_) {
    segment->bloom_.Add(entry.key);
  }
  return segment;
}

Result<std::shared_ptr<Segment>> Segment::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open segment " + path);
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("read failed for segment " + path);
  }
  auto result = FromBuffer(std::move(buffer));
  if (!result.ok()) {
    return Status(result.status().code(),
                  result.status().message() + " (" + path + ")");
  }
  return result;
}

size_t Segment::LowerBound(std::string_view key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const EntryRef& e, std::string_view k) { return e.key < k; });
  return static_cast<size_t>(it - entries_.begin());
}

const Segment::EntryRef* Segment::Find(std::string_view key) const {
  if (!bloom_.MayContain(key)) return nullptr;
  size_t pos = LowerBound(key);
  if (pos < entries_.size() && entries_[pos].key == key) {
    return &entries_[pos];
  }
  return nullptr;
}

SegmentBuilder::SegmentBuilder() { buffer_.append(kMagic); }

Status SegmentBuilder::Add(std::string_view key, RecordKind kind,
                           std::string_view value) {
  if (finished_) return Status::Internal("builder already finished");
  if (count_ > 0 && key <= last_key_) {
    return Status::InvalidArgument("segment keys must be strictly ascending");
  }
  buffer_.push_back(static_cast<char>(kind));
  PutLengthPrefixed(&buffer_, key);
  PutLengthPrefixed(&buffer_, value);
  last_key_.assign(key);
  ++count_;
  return Status::OK();
}

std::string SegmentBuilder::Finish() {
  finished_ = true;
  uint32_t crc = Crc32(buffer_);
  PutFixed64(&buffer_, count_);
  PutFixed32(&buffer_, crc);
  return std::move(buffer_);
}

Status WriteFileAtomic(const std::string& path, std::string_view buffer) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    if (!out) return Status::IOError("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace seqdet::storage
