#include "storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/strings.h"
#include "common/unique_fd.h"

namespace seqdet::storage {

namespace {

constexpr std::string_view kMagicV1 = "SDSEG1";
constexpr std::string_view kMagicV2 = "SDSEG2";
constexpr size_t kV1FooterSize = 8 + 4;  // fixed64 count + fixed32 crc

// SDSEG2 trailer: fixed64 index_offset + fixed32 index_crc + tail magic.
// The tail magic doubles as a quick truncation probe before any parsing.
constexpr std::string_view kTailMagicV2 = "SDSEG2.T";
constexpr size_t kV2TrailerSize = 8 + 4 + kTailMagicV2.size();

// Sanity bounds: a segment or decompressed block larger than these is
// treated as corruption rather than attempted as an allocation.
constexpr uint64_t kMaxSegmentBytes = 1ull << 38;   // 256 GiB
constexpr uint64_t kMaxBlockRawBytes = 1ull << 30;  // 1 GiB

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

Segment::~Segment() {
  if (map_addr_ != nullptr) {
    ::munmap(map_addr_, map_size_);
  }
}

Result<std::shared_ptr<Segment>> Segment::FromBuffer(std::string buffer) {
  if (buffer.size() < kMagicV1.size()) {
    return Status::Corruption("segment too small");
  }
  std::string_view head = std::string_view(buffer).substr(0, kMagicV1.size());
  auto segment = std::shared_ptr<Segment>(new Segment());
  segment->buffer_ = std::move(buffer);
  segment->data_ = segment->buffer_;
  if (head == kMagicV1) {
    SEQDET_RETURN_IF_ERROR(segment->ParseV1());
  } else if (head == kMagicV2) {
    SEQDET_RETURN_IF_ERROR(segment->ParseV2());
  } else {
    return Status::Corruption("bad segment magic");
  }
  return segment;
}

Result<std::shared_ptr<Segment>> Segment::Load(const std::string& path) {
  // UniqueFd owns the descriptor through every early return below — the
  // raw-close version had five hand-maintained close sites on the error
  // paths of open/fstat/pread/mmap.
  UniqueFd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.ok()) return Status::IOError("cannot open segment " + path);
  struct stat st;
  if (::fstat(fd.get(), &st) != 0) {
    return Status::IOError("cannot stat segment " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kMagicV1.size() || size > kMaxSegmentBytes) {
    return Status::Corruption(
        StringPrintf("segment size implausible: %llu bytes (%s)",
                     static_cast<unsigned long long>(size), path.c_str()));
  }
  char magic[6];
  if (::pread(fd.get(), magic, sizeof(magic), 0) !=
      static_cast<ssize_t>(sizeof(magic))) {
    return Status::IOError("cannot read segment magic " + path);
  }
  if (std::string_view(magic, sizeof(magic)) == kMagicV2) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.get(), 0);
    fd.Reset();  // the mapping keeps the file alive; drop the fd either way
    if (addr == MAP_FAILED) {
      return Status::IOError("mmap failed for segment " + path);
    }
    auto segment = std::shared_ptr<Segment>(new Segment());
    segment->map_addr_ = addr;
    segment->map_size_ = size;
    segment->data_ =
        std::string_view(static_cast<const char*>(addr), size);
    Status status = segment->ParseV2();
    if (!status.ok()) {
      return Status(status.code(), status.message() + " (" + path + ")");
    }
    return segment;
  }
  // SDSEG1 (or garbage — FromBuffer rejects bad magic): buffered read.
  fd.Reset();
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open segment " + path);
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("read failed for segment " + path);
  }
  auto result = FromBuffer(std::move(buffer));
  if (!result.ok()) {
    return Status(result.status().code(),
                  result.status().message() + " (" + path + ")");
  }
  return result;
}

Status Segment::ParseV1() {
  stats_.format = 1;
  stats_.disk_bytes = data_.size();
  if (data_.size() < kMagicV1.size() + kV1FooterSize) {
    return Status::Corruption("segment too small");
  }
  std::string_view footer = data_.substr(data_.size() - kV1FooterSize);
  uint64_t count;
  uint32_t crc;
  GetFixed64(&footer, &count);
  GetFixed32(&footer, &crc);
  std::string_view body(data_.data(), data_.size() - kV1FooterSize);
  if (Crc32(body) != crc) {
    return Status::Corruption("segment checksum mismatch");
  }

  std::string_view cursor = data_;
  cursor.remove_prefix(kMagicV1.size());
  cursor.remove_suffix(kV1FooterSize);
  stats_.logical_bytes = cursor.size();
  // The footer is outside the checksummed body, so `count` is untrusted:
  // clamp the reservation to what the body could possibly hold (entries
  // are >= 3 bytes) and rely on the count-mismatch check below.
  entries_.reserve(std::min<uint64_t>(count, cursor.size() / 3 + 1));
  while (!cursor.empty()) {
    if (entries_.size() == count) {
      return Status::Corruption("segment has trailing bytes");
    }
    uint8_t kind = static_cast<uint8_t>(cursor.front());
    if (kind > static_cast<uint8_t>(RecordKind::kDelete)) {
      return Status::Corruption("bad record kind in segment");
    }
    cursor.remove_prefix(1);
    std::string_view key, value;
    if (!GetLengthPrefixed(&cursor, &key) ||
        !GetLengthPrefixed(&cursor, &value)) {
      return Status::Corruption("truncated segment entry");
    }
    entries_.push_back(EntryRef{key, static_cast<RecordKind>(kind), value});
  }
  if (entries_.size() != count) {
    return Status::Corruption(
        StringPrintf("segment entry count mismatch: footer says %llu, "
                     "parsed %zu",
                     static_cast<unsigned long long>(count),
                     entries_.size()));
  }
  entry_count_ = entries_.size();
  bloom_ = BloomFilter(entries_.size());
  for (const EntryRef& entry : entries_) {
    bloom_.Add(entry.key);
  }
  return Status::OK();
}

Status Segment::ParseV2() {
  stats_.format = 2;
  stats_.disk_bytes = data_.size();
  if (data_.size() < kMagicV2.size() + kV2TrailerSize) {
    return Status::Corruption("segment too small");
  }
  std::string_view trailer = data_.substr(data_.size() - kV2TrailerSize);
  uint64_t index_offset;
  uint32_t index_crc;
  GetFixed64(&trailer, &index_offset);
  GetFixed32(&trailer, &index_crc);
  if (trailer != kTailMagicV2) {
    return Status::Corruption("bad segment trailer magic");
  }
  if (index_offset < kMagicV2.size() ||
      index_offset > data_.size() - kV2TrailerSize) {
    return Status::Corruption("segment index offset out of range");
  }
  std::string_view index = data_.substr(
      index_offset, data_.size() - kV2TrailerSize - index_offset);
  if (Crc32(index) != index_crc) {
    return Status::Corruption("segment index checksum mismatch");
  }

  uint64_t num_blocks;
  if (!GetVarint64(&index, &num_blocks)) {
    return Status::Corruption("truncated segment index");
  }
  // Every fence entry costs >= 8 bytes in the index; a larger claim is a
  // garbage footer, not a reason to allocate.
  if (num_blocks > index.size() / 8 + 1) {
    return Status::Corruption("implausible segment block count");
  }
  blocks_.reserve(num_blocks);
  uint64_t entry_base = 0;
  uint64_t expected_offset = kMagicV2.size();
  for (uint64_t i = 0; i < num_blocks; ++i) {
    BlockMeta m;
    uint64_t codec;
    if (!GetVarint64(&index, &m.offset) ||
        !GetVarint64(&index, &m.disk_size) || !GetFixed32(&index, &m.crc) ||
        !GetVarint64(&index, &codec) ||
        !GetVarint64(&index, &m.entry_count) ||
        !GetVarint64(&index, &m.raw_size) ||
        !GetLengthPrefixed(&index, &m.first_key)) {
      return Status::Corruption("truncated segment index");
    }
    if (m.offset != expected_offset || m.disk_size == 0 ||
        m.offset + m.disk_size > index_offset || m.entry_count == 0 ||
        codec > static_cast<uint64_t>(BlockCodec::kZstd) ||
        m.raw_size > kMaxBlockRawBytes ||
        (static_cast<BlockCodec>(codec) != BlockCodec::kZstd &&
         m.raw_size != m.disk_size)) {
      return Status::Corruption("bad segment block descriptor");
    }
    if (i > 0 && m.first_key <= blocks_.back().first_key) {
      return Status::Corruption("segment fence keys not ascending");
    }
    m.codec = static_cast<BlockCodec>(codec);
    m.entry_base = entry_base;
    entry_base += m.entry_count;
    expected_offset = m.offset + m.disk_size;
    blocks_.push_back(m);
  }
  uint64_t total = 0;
  if (!GetVarint64(&index, &total) || total != entry_base) {
    return Status::Corruption("segment entry count mismatch");
  }
  if (!GetVarint64(&index, &stats_.logical_bytes)) {
    return Status::Corruption("truncated segment index");
  }
  if (!bloom_.Deserialize(&index)) {
    return Status::Corruption("bad segment bloom filter");
  }
  if (!index.empty()) {
    return Status::Corruption("trailing bytes in segment index");
  }
  entry_count_ = total;
  stats_.num_blocks = blocks_.size();
  {
    MutexLock lock(decode_mu_);
    decoded_owner_.resize(blocks_.size());
  }
  decoded_ =
      std::vector<std::atomic<const DecodedBlock*>>(blocks_.size());
  return Status::OK();
}

Result<std::unique_ptr<Segment::DecodedBlock>> Segment::DecodeBlock(
    size_t bi) const {
  const BlockMeta& m = blocks_[bi];
  std::string_view disk = data_.substr(m.offset, m.disk_size);
  if (Crc32(disk) != m.crc) {
    return Status::Corruption("segment block checksum mismatch");
  }
  std::string plain_storage;
  std::string_view plain;
  if (m.codec == BlockCodec::kZstd) {
    if (!ZstdAvailable()) {
      return Status::Corruption(
          "segment block uses zstd but support is not compiled in");
    }
    if (!ZstdDecompressBlock(disk, m.raw_size, &plain_storage)) {
      return Status::Corruption("segment block zstd decode failed");
    }
    plain = plain_storage;
  } else {
    plain = disk;
  }

  if (plain.size() < 4) {
    return Status::Corruption("segment block too small");
  }
  std::string_view tail = plain.substr(plain.size() - 4);
  uint32_t num_restarts = 0;
  GetFixed32(&tail, &num_restarts);
  if (4 + static_cast<uint64_t>(num_restarts) * 4 > plain.size()) {
    return Status::Corruption("bad segment block restart count");
  }
  std::string_view cursor =
      plain.substr(0, plain.size() - 4 - num_restarts * 4);

  auto block = std::make_unique<DecodedBlock>();
  // Views cannot be taken while the arena grows (reallocation would move
  // it), so entry positions are recorded as offsets first and converted to
  // string_views once the arena is final.
  struct Pending {
    size_t key_off, key_len;
    RecordKind kind;
    size_t val_off, val_len;
  };
  std::vector<Pending> pending;
  pending.reserve(m.entry_count);
  block->arena.reserve(m.raw_size + m.raw_size / 2);
  std::string prev_key;
  for (uint64_t i = 0; i < m.entry_count; ++i) {
    uint64_t shared, unshared, value_len;
    if (!GetVarint64(&cursor, &shared) || !GetVarint64(&cursor, &unshared) ||
        !GetVarint64(&cursor, &value_len) || cursor.empty()) {
      return Status::Corruption("truncated segment block entry");
    }
    uint8_t kind = static_cast<uint8_t>(cursor.front());
    cursor.remove_prefix(1);
    if (kind > static_cast<uint8_t>(RecordKind::kDelete)) {
      return Status::Corruption("bad record kind in segment block");
    }
    if (shared > prev_key.size() || cursor.size() < unshared) {
      return Status::Corruption("bad key prefix in segment block");
    }
    prev_key.resize(shared);
    prev_key.append(cursor.substr(0, unshared));
    cursor.remove_prefix(unshared);
    if (cursor.size() < value_len) {
      return Status::Corruption("truncated segment block value");
    }
    std::string_view stored_value = cursor.substr(0, value_len);
    cursor.remove_prefix(value_len);

    Pending p;
    p.key_off = block->arena.size();
    p.key_len = prev_key.size();
    p.kind = static_cast<RecordKind>(kind);
    block->arena.append(prev_key);
    p.val_off = block->arena.size();
    if (m.codec == BlockCodec::kPostingFor) {
      if (!UntranscodePostingValue(stored_value, &block->arena)) {
        return Status::Corruption("segment block value decode failed");
      }
    } else {
      block->arena.append(stored_value);
    }
    p.val_len = block->arena.size() - p.val_off;
    pending.push_back(p);
  }
  if (!cursor.empty()) {
    return Status::Corruption("trailing bytes in segment block");
  }

  block->entries.reserve(pending.size());
  for (const Pending& p : pending) {
    std::string_view arena(block->arena);
    block->entries.push_back(EntryRef{arena.substr(p.key_off, p.key_len),
                                      p.kind,
                                      arena.substr(p.val_off, p.val_len)});
  }
  if (!block->entries.empty() && block->entries.front().key != m.first_key) {
    return Status::Corruption("segment block first key mismatch");
  }
  return block;
}

Result<const Segment::DecodedBlock*> Segment::GetDecodedBlock(
    size_t bi) const {
  const DecodedBlock* cached =
      decoded_[bi].load(std::memory_order_acquire);
  if (cached != nullptr) return cached;
  MutexLock lock(decode_mu_);
  cached = decoded_[bi].load(std::memory_order_relaxed);
  if (cached != nullptr) return cached;
  SEQDET_ASSIGN_OR_RETURN(auto block, DecodeBlock(bi));
  const DecodedBlock* ptr = block.get();
  decoded_owner_[bi] = std::move(block);
  decoded_[bi].store(ptr, std::memory_order_release);
  return ptr;
}

size_t Segment::BlockForEntry(size_t pos) const {
  // Last block with entry_base <= pos.
  auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), pos,
      [](size_t p, const BlockMeta& m) { return p < m.entry_base; });
  return static_cast<size_t>(it - blocks_.begin()) - 1;
}

size_t Segment::BlockForKey(std::string_view key) const {
  // Last block with first_key <= key (block 0 when key precedes every
  // fence — the global lower bound then lands at its beginning anyway).
  auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), key,
      [](std::string_view k, const BlockMeta& m) { return k < m.first_key; });
  if (it == blocks_.begin()) return 0;
  return static_cast<size_t>(it - blocks_.begin()) - 1;
}

Result<size_t> Segment::LowerBound(std::string_view key) const {
  if (stats_.format == 1) {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const EntryRef& e, std::string_view k) { return e.key < k; });
    return static_cast<size_t>(it - entries_.begin());
  }
  if (blocks_.empty()) return size_t{0};
  size_t bi = BlockForKey(key);
  SEQDET_ASSIGN_OR_RETURN(const DecodedBlock* block, GetDecodedBlock(bi));
  auto it = std::lower_bound(
      block->entries.begin(), block->entries.end(), key,
      [](const EntryRef& e, std::string_view k) { return e.key < k; });
  return blocks_[bi].entry_base +
         static_cast<size_t>(it - block->entries.begin());
}

Result<const Segment::EntryRef*> Segment::Find(std::string_view key) const {
  if (!bloom_.MayContain(key)) {
    return static_cast<const EntryRef*>(nullptr);
  }
  if (stats_.format == 1) {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const EntryRef& e, std::string_view k) { return e.key < k; });
    if (it != entries_.end() && it->key == key) return &*it;
    return static_cast<const EntryRef*>(nullptr);
  }
  if (blocks_.empty()) return static_cast<const EntryRef*>(nullptr);
  size_t bi = BlockForKey(key);
  SEQDET_ASSIGN_OR_RETURN(const DecodedBlock* block, GetDecodedBlock(bi));
  auto it = std::lower_bound(
      block->entries.begin(), block->entries.end(), key,
      [](const EntryRef& e, std::string_view k) { return e.key < k; });
  if (it != block->entries.end() && it->key == key) return &*it;
  return static_cast<const EntryRef*>(nullptr);
}

Result<Segment::EntryRef> Segment::Entry(size_t pos) const {
  if (pos >= entry_count_) {
    return Status::InvalidArgument("segment entry index out of range");
  }
  if (stats_.format == 1) return entries_[pos];
  size_t bi = BlockForEntry(pos);
  SEQDET_ASSIGN_OR_RETURN(const DecodedBlock* block, GetDecodedBlock(bi));
  return block->entries[pos - blocks_[bi].entry_base];
}

SegmentBuilder::SegmentBuilder(const SegmentWriteOptions& options)
    : options_(options), effective_codec_(options.codec) {
  if (effective_codec_ == BlockCodec::kZstd && !ZstdAvailable()) {
    effective_codec_ = BlockCodec::kPostingFor;
  }
  if (options_.restart_interval == 0) options_.restart_interval = 1;
  buffer_.append(options_.format_version == 1 ? kMagicV1 : kMagicV2);
}

Status SegmentBuilder::Add(std::string_view key, RecordKind kind,
                           std::string_view value) {
  if (finished_) return Status::Internal("builder already finished");
  if (count_ > 0 && key <= last_key_) {
    return Status::InvalidArgument("segment keys must be strictly ascending");
  }
  if (options_.format_version == 1) {
    buffer_.push_back(static_cast<char>(kind));
    PutLengthPrefixed(&buffer_, key);
    PutLengthPrefixed(&buffer_, value);
    last_key_.assign(key);
    ++count_;
    return Status::OK();
  }

  logical_bytes_ += 1 + VarintLen(key.size()) + key.size() +
                    VarintLen(value.size()) + value.size();
  if (block_entry_count_ == 0) block_first_key_.assign(key);
  size_t shared = 0;
  if (block_entry_count_ % options_.restart_interval == 0) {
    restarts_.push_back(static_cast<uint32_t>(block_.size()));
  } else {
    size_t limit = std::min(key.size(), last_key_.size());
    while (shared < limit && key[shared] == last_key_[shared]) ++shared;
  }
  std::string encoded;
  std::string_view stored = value;
  if (effective_codec_ == BlockCodec::kPostingFor) {
    TranscodePostingValue(value, &encoded);
    stored = encoded;
  }
  PutVarint64(&block_, shared);
  PutVarint64(&block_, key.size() - shared);
  PutVarint64(&block_, stored.size());
  block_.push_back(static_cast<char>(kind));
  block_.append(key.substr(shared));
  block_.append(stored);
  keys_.emplace_back(key);
  last_key_.assign(key);
  ++block_entry_count_;
  ++count_;
  if (block_.size() >= options_.block_bytes) FlushBlock();
  return Status::OK();
}

void SegmentBuilder::FlushBlock() {
  if (block_entry_count_ == 0) return;
  for (uint32_t r : restarts_) PutFixed32(&block_, r);
  PutFixed32(&block_, static_cast<uint32_t>(restarts_.size()));

  PendingBlock m;
  m.offset = buffer_.size();
  m.raw_size = block_.size();
  m.entry_count = block_entry_count_;
  m.first_key = block_first_key_;
  m.codec = effective_codec_;
  if (effective_codec_ == BlockCodec::kZstd) {
    std::string compressed;
    if (ZstdCompressBlock(block_, &compressed) &&
        compressed.size() < block_.size()) {
      m.disk_size = compressed.size();
      m.crc = Crc32(compressed);
      buffer_.append(compressed);
    } else {
      // Incompressible block: store the plaintext under kRaw so readers
      // skip the zstd path entirely.
      m.codec = BlockCodec::kRaw;
      m.disk_size = block_.size();
      m.crc = Crc32(block_);
      buffer_.append(block_);
    }
  } else {
    m.disk_size = block_.size();
    m.crc = Crc32(block_);
    buffer_.append(block_);
  }
  pending_.push_back(std::move(m));
  block_.clear();
  restarts_.clear();
  block_entry_count_ = 0;
  block_first_key_.clear();
}

std::string SegmentBuilder::Finish() {
  finished_ = true;
  if (options_.format_version == 1) {
    uint32_t crc = Crc32(buffer_);
    PutFixed64(&buffer_, count_);
    PutFixed32(&buffer_, crc);
    return std::move(buffer_);
  }

  FlushBlock();
  const uint64_t index_offset = buffer_.size();
  std::string index;
  PutVarint64(&index, pending_.size());
  for (const PendingBlock& m : pending_) {
    PutVarint64(&index, m.offset);
    PutVarint64(&index, m.disk_size);
    PutFixed32(&index, m.crc);
    PutVarint64(&index, static_cast<uint64_t>(m.codec));
    PutVarint64(&index, m.entry_count);
    PutVarint64(&index, m.raw_size);
    PutLengthPrefixed(&index, m.first_key);
  }
  PutVarint64(&index, count_);
  PutVarint64(&index, logical_bytes_);
  BloomFilter bloom(keys_.size());
  for (const std::string& key : keys_) bloom.Add(key);
  bloom.Serialize(&index);
  const uint32_t index_crc = Crc32(index);
  buffer_.append(index);
  PutFixed64(&buffer_, index_offset);
  PutFixed32(&buffer_, index_crc);
  buffer_.append(kTailMagicV2);
  return std::move(buffer_);
}

Status WriteFileAtomic(const std::string& path, std::string_view buffer) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    if (!out) return Status::IOError("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace seqdet::storage
