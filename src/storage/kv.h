#ifndef SEQDET_STORAGE_KV_H_
#define SEQDET_STORAGE_KV_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/write_batch.h"

namespace seqdet::storage {

/// The key-value surface the index layer programs against. Two
/// implementations exist:
///  * Table        — one memtable + segment stack + WAL under one lock;
///  * ShardedTable — N Tables routed by key hash, the analogue of a
///                   Cassandra table spread over token-ring partitions;
///                   writers touching different shards proceed in parallel.
class Kv {
 public:
  virtual ~Kv() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual Status Append(std::string_view key, std::string_view fragment) = 0;
  virtual Status Delete(std::string_view key) = 0;

  /// Applies all records of `batch` (atomic per shard).
  virtual Status Apply(const WriteBatch& batch) = 0;

  /// Atomically replaces the folded value of `key`: reads it, calls
  /// `fn(current, &rewritten)` and commits the result as a single Put —
  /// all under the table's exclusive lock, so no concurrent Append can
  /// land between the read and the write (the lost-update hazard of a
  /// read-then-Put fold) and no concurrent reader ever observes a partial
  /// state. Participates in the Version() protocol like any other
  /// mutation, which is what invalidates caches layered above.
  /// NotFound when the key has no live value; a non-OK status from `fn`
  /// aborts without writing anything.
  virtual Status RewriteValue(
      std::string_view key,
      const std::function<Status(std::string_view current,
                                 std::string* rewritten)>& fn) = 0;

  /// Reads the folded value of `key`; NotFound when absent.
  virtual Status Get(std::string_view key, std::string* value) const = 0;

  virtual bool Contains(std::string_view key) const = 0;

  /// Ordered scan over [start_key, end_key); empty end = unbounded. `fn`
  /// returning false stops the scan.
  virtual Status Scan(
      std::string_view start_key, std::string_view end_key,
      const std::function<bool(std::string_view, std::string_view)>& fn)
      const = 0;

  virtual Status Flush() = 0;
  virtual Status Compact() = 0;
  virtual size_t ApproximateEntryCount() const = 0;
  virtual const std::string& name() const = 0;

  /// Monotonically increasing mutation counter: bumped by every
  /// Put/Append/Delete/Apply/Compact (for a sharded table, the sum over its
  /// shards). Lock-free, so caches layered above the store can validate
  /// derived entries without touching the table locks on the write path.
  ///
  /// Snapshot-tagging protocol: read Version() BEFORE reading the data the
  /// derived entry is built from and tag the entry with that value; a cached
  /// entry is valid only while Version() still equals its tag. Mutators bump
  /// the counter before applying the mutation (both under the table's write
  /// lock), so any write that could be missing from a tagged snapshot is
  /// guaranteed to advance the counter past the tag.
  virtual uint64_t Version() const = 0;
};

/// Smallest key strictly greater than every key with `prefix`; empty means
/// "unbounded" (prefix was all 0xff). Pass as Scan's end_key to get a
/// prefix scan.
inline std::string PrefixScanEnd(std::string_view prefix) {
  std::string end(prefix);
  while (!end.empty() && static_cast<unsigned char>(end.back()) == 0xffu) {
    end.pop_back();
  }
  if (!end.empty()) {
    end.back() = static_cast<char>(static_cast<unsigned char>(end.back()) + 1);
  }
  return end;
}

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_KV_H_
