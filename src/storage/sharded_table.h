#ifndef SEQDET_STORAGE_SHARDED_TABLE_H_
#define SEQDET_STORAGE_SHARDED_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/kv.h"
#include "storage/table.h"

namespace seqdet::storage {

/// A logical table hash-partitioned over N physical Tables — the embedded
/// analogue of a Cassandra table spread across token-ring partitions.
///
/// Each shard carries its own memtable, segments, WAL and lock, so writer
/// threads applying batches for different keys mostly do not contend: this
/// is what makes the index build scale with cores the way the paper's
/// "parallelization applies to both the event-pair creation and the
/// storage" claim requires (Table 6).
///
/// Keys route by FNV-1a hash; Scan materializes and merges all shards (it
/// is for introspection, not hot paths). Physical shards are named
/// `<name>_sNN`; reopening with the same shard count reassembles the
/// logical table from the shard files.
class ShardedTable : public Kv {
 public:
  /// Opens (recovering) `num_shards` physical shards of logical `name`.
  /// The shard Tables are owned by this object.
  static Result<std::unique_ptr<ShardedTable>> Open(
      const std::string& dir, const std::string& name, size_t num_shards,
      const TableOptions& options);

  /// Assembles a logical table from already-opened shard Tables (the
  /// Database uses this to adopt shards it discovered during recovery).
  static Result<std::unique_ptr<ShardedTable>> FromShards(
      std::string name, std::vector<std::unique_ptr<Table>> shards);

  Status Put(std::string_view key, std::string_view value) override;
  Status Append(std::string_view key, std::string_view fragment) override;
  Status Delete(std::string_view key) override;
  Status Apply(const WriteBatch& batch) override;
  Status RewriteValue(
      std::string_view key,
      const std::function<Status(std::string_view, std::string*)>& fn)
      override;
  Status Get(std::string_view key, std::string* value) const override;
  bool Contains(std::string_view key) const override;
  Status Scan(
      std::string_view start_key, std::string_view end_key,
      const std::function<bool(std::string_view, std::string_view)>& fn)
      const override;
  Status Flush() override;
  Status Compact() override;
  size_t ApproximateEntryCount() const override;
  const std::string& name() const override { return name_; }

  /// Sum of the shard counters. Monotonic for any observer that reads it
  /// with a happens-before edge to earlier reads (e.g. through a cache
  /// shard's mutex), which is all the snapshot-tagging protocol of
  /// Kv::Version() needs.
  uint64_t Version() const override;

  size_t num_shards() const { return shards_.size(); }

  /// Segment stats summed over the shards.
  TableSegmentStats GetSegmentStats() const;

  /// Applies Table::SetSegmentFormat to every shard (roll-forward only).
  void SetSegmentFormat(uint32_t format_version);

  /// Deletes every shard's files.
  Status DestroyFiles();

 private:
  ShardedTable(std::string name) : name_(std::move(name)) {}

  Table* ShardFor(std::string_view key) const;

  std::string name_;
  std::vector<std::unique_ptr<Table>> shards_;
};

}  // namespace seqdet::storage

#endif  // SEQDET_STORAGE_SHARDED_TABLE_H_
