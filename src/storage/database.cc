#include "storage/database.h"

#include <filesystem>
#include <set>

#include "common/strings.h"

namespace seqdet::storage {

namespace fs = std::filesystem;

Database::Database(std::string dir, DbOptions options)
    : dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 const DbOptions& options) {
  if (dir.empty() && !options.table.in_memory) {
    return Status::InvalidArgument(
        "a directory is required unless in_memory is set");
  }
  auto db = std::unique_ptr<Database>(new Database(dir, options));
  if (!options.table.in_memory) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IOError("cannot create " + dir + ": " + ec.message());
    }
    SEQDET_RETURN_IF_ERROR(db->DiscoverExistingTables());
  }
  return db;
}

Status Database::DiscoverExistingTables() {
  // Runs inside Open() before the database is published; the lock only
  // satisfies the GUARDED_BY discipline on tables_.
  MutexLock lock(mu_);
  std::set<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string fname = entry.path().filename().string();
    if (EndsWith(fname, ".wal") || EndsWith(fname, ".seg")) {
      // "<table>.<id>.seg" / "<table>.<id>.wal": strip two components.
      size_t dot = fname.rfind('.', fname.size() - 5);
      if (dot != std::string::npos) names.insert(fname.substr(0, dot));
    }
  }
  if (ec) return Status::IOError("cannot list " + dir_ + ": " + ec.message());
  for (const std::string& name : names) {
    auto opened = Table::Open(dir_, name, options_.table);
    if (!opened.ok()) return opened.status();
    tables_.emplace(name, std::move(opened).value());
  }
  return Status::OK();
}

Result<Table*> Database::GetOrCreateTable(const std::string& name) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.get();
  auto opened = Table::Open(dir_, name, options_.table);
  if (!opened.ok()) return opened.status();
  Table* raw = opened.value().get();
  tables_.emplace(name, std::move(opened).value());
  return raw;
}

Result<ShardedTable*> Database::GetOrCreateShardedTable(
    const std::string& name, size_t num_shards) {
  MutexLock lock(mu_);
  auto it = sharded_.find(name);
  if (it != sharded_.end()) {
    if (it->second->num_shards() != num_shards) {
      return Status::InvalidArgument(StringPrintf(
          "sharded table %s already open with %zu shards, requested %zu",
          name.c_str(), it->second->num_shards(), num_shards));
    }
    return it->second.get();
  }
  // Adopt shards discovered during recovery, open the rest fresh.
  std::vector<std::unique_ptr<Table>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    std::string shard_name = StringPrintf("%s_s%02zu", name.c_str(), s);
    auto found = tables_.find(shard_name);
    if (found != tables_.end()) {
      shards.push_back(std::move(found->second));
      tables_.erase(found);
    } else {
      auto opened = Table::Open(dir_, shard_name, options_.table);
      if (!opened.ok()) return opened.status();
      shards.push_back(std::move(opened).value());
    }
  }
  auto assembled = ShardedTable::FromShards(name, std::move(shards));
  if (!assembled.ok()) return assembled.status();
  ShardedTable* raw = assembled.value().get();
  sharded_.emplace(name, std::move(assembled).value());
  return raw;
}

Table* Database::GetTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::DropTable(const std::string& name) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  SEQDET_RETURN_IF_ERROR(it->second->DestroyFiles());
  tables_.erase(it);
  return Status::OK();
}

Status Database::FlushAll() {
  MutexLock lock(mu_);
  for (auto& [name, table] : tables_) {
    SEQDET_RETURN_IF_ERROR(table->Flush());
  }
  for (auto& [name, table] : sharded_) {
    SEQDET_RETURN_IF_ERROR(table->Flush());
  }
  return Status::OK();
}

Status Database::CompactAll() {
  MutexLock lock(mu_);
  for (auto& [name, table] : tables_) {
    SEQDET_RETURN_IF_ERROR(table->Compact());
  }
  for (auto& [name, table] : sharded_) {
    SEQDET_RETURN_IF_ERROR(table->Compact());
  }
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> Database::ShardedTableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(sharded_.size());
  for (const auto& [name, table] : sharded_) names.push_back(name);
  return names;
}

ShardedTable* Database::GetShardedTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = sharded_.find(name);
  return it == sharded_.end() ? nullptr : it->second.get();
}

void Database::SetSegmentFormat(uint32_t format_version) {
  MutexLock lock(mu_);
  if (format_version > options_.table.segment.format_version) {
    options_.table.segment.format_version = format_version;
  }
  for (const auto& [name, table] : tables_) {
    table->SetSegmentFormat(format_version);
  }
  for (const auto& [name, table] : sharded_) {
    table->SetSegmentFormat(format_version);
  }
}

uint32_t Database::segment_format() const {
  MutexLock lock(mu_);
  return options_.table.segment.format_version;
}

TableSegmentStats Database::GetSegmentStats() const {
  MutexLock lock(mu_);
  TableSegmentStats out;
  for (const auto& [name, table] : tables_) {
    out.Merge(table->GetSegmentStats());
  }
  for (const auto& [name, table] : sharded_) {
    out.Merge(table->GetSegmentStats());
  }
  return out;
}

}  // namespace seqdet::storage
