#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace seqdet {

void Histogram::Add(double value) {
  values_.push_back(value);
  sum_ += value;
  sum_sq_ += value * value;
  sorted_valid_ = false;
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::min() const {
  if (values_.empty()) return 0;
  EnsureSorted();
  return sorted_.front();
}

double Histogram::max() const {
  if (values_.empty()) return 0;
  EnsureSorted();
  return sorted_.back();
}

double Histogram::mean() const {
  if (values_.empty()) return 0;
  return sum_ / static_cast<double>(values_.size());
}

double Histogram::stddev() const {
  if (values_.size() < 2) return 0;
  double n = static_cast<double>(values_.size());
  double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0;
}

double Histogram::Percentile(double p) const {
  if (values_.empty()) return 0;
  EnsureSorted();
  if (p <= 0) return sorted_.front();
  if (p >= 100) return sorted_.back();
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1 - frac) + sorted_[lo + 1] * frac;
}

std::vector<size_t> Histogram::Buckets(size_t num_buckets) const {
  std::vector<size_t> buckets(num_buckets, 0);
  if (values_.empty() || num_buckets == 0) return buckets;
  double lo = min(), hi = max();
  double width = (hi - lo) / static_cast<double>(num_buckets);
  if (width <= 0) {
    buckets[0] = values_.size();
    return buckets;
  }
  for (double v : values_) {
    size_t b = static_cast<size_t>((v - lo) / width);
    if (b >= num_buckets) b = num_buckets - 1;
    buckets[b]++;
  }
  return buckets;
}

std::string Histogram::ToAscii(const std::string& title, size_t num_buckets,
                               size_t bar_width) const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "%s: n=%zu min=%.2f mean=%.2f max=%.2f p50=%.2f p95=%.2f\n",
                title.c_str(), count(), min(), mean(), max(), Percentile(50),
                Percentile(95));
  out += line;
  if (values_.empty()) return out;
  auto buckets = Buckets(num_buckets);
  size_t peak = *std::max_element(buckets.begin(), buckets.end());
  if (peak == 0) peak = 1;
  double lo = min();
  double width = (max() - lo) / static_cast<double>(num_buckets);
  for (size_t b = 0; b < buckets.size(); ++b) {
    size_t bar = buckets[b] * bar_width / peak;
    std::snprintf(line, sizeof(line), "  [%8.1f, %8.1f) %6zu |", lo + b * width,
                  lo + (b + 1) * width, buckets[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace seqdet
