#include "common/status.h"

namespace seqdet {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace seqdet
