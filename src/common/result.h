#ifndef SEQDET_COMMON_RESULT_H_
#define SEQDET_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace seqdet {

/// A value-or-error type: holds either a `T` or a non-OK Status.
///
/// Modeled after arrow::Result / absl::StatusOr. A Result constructed from
/// an OK status is a programming error (asserted in debug builds, converted
/// to an Internal error otherwise).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value (implicit, so functions can
  /// `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit, so functions can
  /// `return Status::NotFound(...);`).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// Returns the error (OK when a value is present).
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked via assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

/// Evaluates `rexpr` (a Result<T>), propagating the error or assigning the
/// value into `lhs`.
#define SEQDET_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  SEQDET_ASSIGN_OR_RETURN_IMPL_(                                 \
      SEQDET_CONCAT_(_seqdet_result, __LINE__), lhs, rexpr)

#define SEQDET_CONCAT_INNER_(a, b) a##b
#define SEQDET_CONCAT_(a, b) SEQDET_CONCAT_INNER_(a, b)

#define SEQDET_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

/// Explicitly discards a Result on a best-effort path (see IgnoreStatus).
template <typename T>
inline void IgnoreStatus(const Result<T>&) {}

}  // namespace seqdet

#endif  // SEQDET_COMMON_RESULT_H_
