#include "common/thread_pool.h"

#include <algorithm>

namespace seqdet {

namespace {

/// The pool the current thread is a worker of, if any. Set for the lifetime
/// of WorkerLoop; ParallelFor consults it to detect reentrant calls.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
      if (stop_ && tasks_.empty()) break;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
  t_worker_pool = nullptr;
}

bool ThreadPool::OnWorkerThread() const { return t_worker_pool == this; }

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (OnWorkerThread()) {
    // Reentrant call from one of our own workers: run inline. Submitting
    // and blocking here would wait on futures only this pool can serve —
    // with every worker potentially doing the same, nobody would ever run
    // them (guaranteed on a 1-thread pool, load-dependent otherwise).
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  size_t chunks = std::min(n, num_threads());
  size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per_chunk;
    size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats out;
  out.threads = workers_.size();
  out.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  out.inline_runs = inline_runs_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    out.queue_depth = tasks_.size();
    out.peak_queue_depth = peak_queue_depth_;
  }
  return out;
}

size_t ThreadPool::HardwareConcurrency() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace seqdet
