#include "common/thread_pool.h"

#include <algorithm>

namespace seqdet {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, num_threads());
  size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per_chunk;
    size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

size_t ThreadPool::HardwareConcurrency() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace seqdet
