#ifndef SEQDET_COMMON_HISTOGRAM_H_
#define SEQDET_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace seqdet {

/// Streaming summary of a numeric sample: count / min / max / mean / stddev
/// plus exact percentiles (the full sample is retained; intended for
/// dataset-profile reporting, not for hot paths).
class Histogram {
 public:
  Histogram() = default;

  void Add(double value);

  size_t count() const { return values_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// Exact percentile by nearest-rank, p in [0, 100].
  double Percentile(double p) const;

  /// Fixed-width bucket counts over [min, max] for textual display.
  std::vector<size_t> Buckets(size_t num_buckets) const;

  /// Multi-line textual rendering: stats header plus an ASCII bar chart.
  /// Used by the Figure 2 harness to print trace-profile distributions.
  std::string ToAscii(const std::string& title, size_t num_buckets = 10,
                      size_t bar_width = 40) const;

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
  double sum_sq_ = 0;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_HISTOGRAM_H_
