#ifndef SEQDET_COMMON_CRC32_H_
#define SEQDET_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace seqdet {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used to checksum WAL records
/// and segment files so that torn writes are detected on recovery.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace seqdet

#endif  // SEQDET_COMMON_CRC32_H_
