#ifndef SEQDET_COMMON_SYNC_H_
#define SEQDET_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Annotated synchronization primitives for Clang Thread Safety Analysis.
///
/// Every locking site in src/ goes through the wrappers below instead of the
/// raw std primitives, so a Clang build with `-Wthread-safety
/// -Werror=thread-safety` (CMake option SEQDET_THREAD_SAFETY=ON,
/// tools/check_static.sh) proves the locking discipline at compile time:
/// fields tagged GUARDED_BY(mu) can only be touched while `mu` is held,
/// helpers tagged REQUIRES(mu) can only be called with it held, and a lock
/// can never leak out of a scope unnoticed. On non-Clang compilers the
/// attribute macros expand to nothing and the wrappers compile to the same
/// code as the std primitives they delegate to — zero-cost, zero behavior
/// change (verified by the TSan sweep).
///
/// The macro set mirrors the Clang documentation's canonical mutex.h
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).

#if defined(__clang__)
#define SEQDET_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SEQDET_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (lockable).
#define CAPABILITY(x) SEQDET_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY SEQDET_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while `x` is held (shared read,
/// exclusive write).
#define GUARDED_BY(x) SEQDET_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define PT_GUARDED_BY(x) SEQDET_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while holding the capability exclusively.
#define REQUIRES(...) \
  SEQDET_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function may only be called while holding at least a shared capability.
#define REQUIRES_SHARED(...) \
  SEQDET_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusive) and does not release it.
#define ACQUIRE(...) \
  SEQDET_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability (shared) and does not release it.
#define ACQUIRE_SHARED(...) \
  SEQDET_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases an exclusively held capability.
#define RELEASE(...) \
  SEQDET_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared-held capability.
#define RELEASE_SHARED(...) \
  SEQDET_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function releases a capability held in either mode (used by destructors
/// of scoped types that may hold shared or exclusive).
#define RELEASE_GENERIC(...) \
  SEQDET_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define TRY_ACQUIRE(...) \
  SEQDET_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  SEQDET_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock
/// guard for public entry points whose implementation takes the lock).
#define EXCLUDES(...) SEQDET_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the capability.
#define RETURN_CAPABILITY(x) SEQDET_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  SEQDET_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace seqdet {

/// An annotated exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// An annotated reader/writer mutex (wraps std::shared_mutex).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (the std::lock_guard/unique_lock
/// replacement). Supports mid-scope Unlock()/Lock() for the
/// wait-loop/condvar patterns unique_lock was used for.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. to run a long operation unlocked mid-loop).
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  /// Re-acquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// RAII exclusive lock over a SharedMutex (replaces
/// std::unique_lock<std::shared_mutex>).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over a SharedMutex (replaces
/// std::shared_lock<std::shared_mutex>).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the annotated Mutex.
///
/// Waits are expressed against the Mutex itself (not the RAII lock), so the
/// analysis can check REQUIRES(mu) at every wait site. There are
/// deliberately no predicate-taking overloads: the analysis cannot see that
/// a predicate lambda runs with the lock held, so callers write the
/// canonical `while (!condition) cv.Wait(mu);` loop in the annotated
/// function body instead — same semantics, checkable accesses.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu.mu_); }

  /// Like Wait() but gives up at `deadline`; returns false on timeout.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu.mu_, deadline) == std::cv_status::no_timeout;
  }

  /// Like Wait() but gives up after `timeout`; returns false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu.mu_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any waits on the BasicLockable std::mutex directly,
  // which lets Wait take the annotated Mutex instead of a unique_lock.
  std::condition_variable_any cv_;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_SYNC_H_
