#ifndef SEQDET_COMMON_SYNC_H_
#define SEQDET_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Annotated synchronization primitives for Clang Thread Safety Analysis.
///
/// Every locking site in src/ goes through the wrappers below instead of the
/// raw std primitives, so a Clang build with `-Wthread-safety
/// -Werror=thread-safety` (CMake option SEQDET_THREAD_SAFETY=ON,
/// tools/check_static.sh) proves the locking discipline at compile time:
/// fields tagged GUARDED_BY(mu) can only be touched while `mu` is held,
/// helpers tagged REQUIRES(mu) can only be called with it held, and a lock
/// can never leak out of a scope unnoticed. On non-Clang compilers the
/// attribute macros expand to nothing and the wrappers compile to the same
/// code as the std primitives they delegate to — zero-cost, zero behavior
/// change (verified by the TSan sweep).
///
/// The macro set mirrors the Clang documentation's canonical mutex.h
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
///
/// ## Discipline v2: negative capabilities, lock order, blocking calls
///
/// Since PR 10 the discipline has three more layers (DESIGN.md §16):
///
///  1. **Negative capabilities.** Every function that *acquires* a member
///     mutex declares `REQUIRES(!mu_)`. Under Clang's
///     `-Wthread-safety-negative` (CMake option
///     SEQDET_THREAD_SAFETY_NEGATIVE, check_static.sh step 5) acquiring a
///     capability without provably holding its negation is a compile
///     error, which makes self-deadlock (re-acquiring a lock you already
///     hold, possibly through a call chain) a build break instead of a
///     runtime hang. Private mutexes are implicitly `!held` outside their
///     class, so the annotation burden stays inside each class.
///
///  2. **Lock-order map.** Nested acquisitions are only legal along the
///     edges below (enforced two ways: ACQUIRED_BEFORE/ACQUIRED_AFTER
///     annotations where both mutexes are in scope, checked by
///     `-Wthread-safety-beta`; and the seqdet-lint `lock-order` rule over
///     tools/lint_rules/lock_order.map, which sees the cross-class edges
///     the attributes cannot express). The full map — an edge `A -> B`
///     means A may be held while acquiring B, and every chain must be
///     acyclic:
///
///         Database::mu_            -> Table::mu_
///         Table::mu_               -> Segment::decode_mu_
///         HttpServer::stats_mu_    -> ThreadPool::mu_   (queue gauge)
///         ScatterState::mu         -> ShardState::mu    (router admit)
///         ScatterState::mu         -> ThreadPool::mu_   (attempt submit)
///
///     Everything else (PostingCache::Shard::mu, HttpClientPool::mu_,
///     HttpServer::conns_mu_, MaintenanceService::mu_,
///     QueryService::RouteStats::mu) is a **leaf**: no other repo mutex
///     may be acquired while holding it.
///
///  3. **Blocking annotations.** Every syscall-adjacent primitive that can
///     block the calling thread (socket I/O, pread/mmap fill, pool joins,
///     sleeps) is tagged SEQDET_BLOCKING. The seqdet-lint
///     `blocking-under-lock` rule (tools/seqdet_lint.sh) rejects calls to
///     blocking functions inside a MutexLock/WriterLock/ReaderLock scope
///     — a held lock must never wait on the network or the disk. CondVar
///     waits are exempt by design: they atomically release the mutex.
///     Deliberate exceptions carry a
///     `// seqdet-lint: allow-blocking-under-lock(<why>)` tag on the lock
///     declaration.

#if defined(__clang__)
#define SEQDET_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SEQDET_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (lockable).
#define CAPABILITY(x) SEQDET_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY SEQDET_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while `x` is held (shared read,
/// exclusive write).
#define GUARDED_BY(x) SEQDET_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define PT_GUARDED_BY(x) SEQDET_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while holding the capability exclusively.
#define REQUIRES(...) \
  SEQDET_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function may only be called while holding at least a shared capability.
#define REQUIRES_SHARED(...) \
  SEQDET_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusive) and does not release it.
#define ACQUIRE(...) \
  SEQDET_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability (shared) and does not release it.
#define ACQUIRE_SHARED(...) \
  SEQDET_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases an exclusively held capability.
#define RELEASE(...) \
  SEQDET_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared-held capability.
#define RELEASE_SHARED(...) \
  SEQDET_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function releases a capability held in either mode (used by destructors
/// of scoped types that may hold shared or exclusive).
#define RELEASE_GENERIC(...) \
  SEQDET_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define TRY_ACQUIRE(...) \
  SEQDET_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  SEQDET_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock
/// guard for public entry points whose implementation takes the lock).
///
/// Prefer `REQUIRES(!mu)` (a negative capability) on new code: EXCLUDES is
/// only checked when the caller demonstrably holds the lock, while the
/// negative form is checked *everywhere* under -Wthread-safety-negative.
#define EXCLUDES(...) SEQDET_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that this capability must be acquired before the listed ones
/// whenever both are held (checked under Clang's -Wthread-safety-beta;
/// also mirrored in tools/lint_rules/lock_order.map for the portable
/// seqdet-lint check). Attach to the mutex *member declaration*.
#define ACQUIRED_BEFORE(...) \
  SEQDET_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Declares that this capability must be acquired after the listed ones.
#define ACQUIRED_AFTER(...) \
  SEQDET_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Asserts at runtime boundaries that the capability is held (trusted by
/// the analysis without proof — for callbacks whose caller contract
/// guarantees the lock).
#define ASSERT_CAPABILITY(x) SEQDET_THREAD_ANNOTATION_(assert_capability(x))

/// Marks a function that can block the calling thread on something slower
/// than a cache miss: socket connect/send/recv, disk pread / mmap page
/// fill, thread joins, sleeps. The seqdet-lint blocking-under-lock rule
/// (tools/seqdet_lint.sh, rule catalog in DESIGN.md §16) forbids calling
/// any SEQDET_BLOCKING function while a MutexLock/WriterLock/ReaderLock
/// is live. Under Clang this is a real `annotate` attribute the
/// clang-query rules match on; elsewhere it compiles to nothing, and the
/// portable lint falls back to a registry of annotated names harvested
/// from the headers.
#if defined(__clang__)
#define SEQDET_BLOCKING __attribute__((annotate("seqdet_blocking")))
#else
#define SEQDET_BLOCKING  // no-op outside Clang; see tools/seqdet_lint.sh
#endif

/// Declares that the function returns a reference to the capability.
#define RETURN_CAPABILITY(x) SEQDET_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  SEQDET_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace seqdet {

/// An annotated exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// An annotated reader/writer mutex (wraps std::shared_mutex).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (the std::lock_guard/unique_lock
/// replacement). Supports mid-scope Unlock()/Lock() for the
/// wait-loop/condvar patterns unique_lock was used for.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. to run a long operation unlocked mid-loop).
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  /// Re-acquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// RAII exclusive lock over a SharedMutex (replaces
/// std::unique_lock<std::shared_mutex>).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over a SharedMutex (replaces
/// std::shared_lock<std::shared_mutex>).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the annotated Mutex.
///
/// Waits are expressed against the Mutex itself (not the RAII lock), so the
/// analysis can check REQUIRES(mu) at every wait site. There are
/// deliberately no predicate-taking overloads: the analysis cannot see that
/// a predicate lambda runs with the lock held, so callers write the
/// canonical `while (!condition) cv.Wait(mu);` loop in the annotated
/// function body instead — same semantics, checkable accesses.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  ///
  /// SEQDET_BLOCKING with a twist: waiting releases `mu` itself, so the
  /// blocking-under-lock rule only rejects a Wait while a *different*
  /// lock is also held — that second lock would stay locked for the whole
  /// wait (the router's fan-out bug class this discipline exists for).
  void Wait(Mutex& mu) SEQDET_BLOCKING REQUIRES(mu) { cv_.wait(mu.mu_); }

  /// Like Wait() but gives up at `deadline`; returns false on timeout.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      SEQDET_BLOCKING REQUIRES(mu) {
    return cv_.wait_until(mu.mu_, deadline) == std::cv_status::no_timeout;
  }

  /// Like Wait() but gives up after `timeout`; returns false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      SEQDET_BLOCKING REQUIRES(mu) {
    return cv_.wait_for(mu.mu_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any waits on the BasicLockable std::mutex directly,
  // which lets Wait take the annotated Mutex instead of a unique_lock.
  std::condition_variable_any cv_;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_SYNC_H_
