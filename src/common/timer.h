#ifndef SEQDET_COMMON_TIMER_H_
#define SEQDET_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>

namespace seqdet {

/// Monotonic stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A monotonic point in time a request must finish by. Default-constructed
/// deadlines never expire, so call sites can thread one unconditionally.
/// Long-running query loops poll Expired() at chunk boundaries and abort
/// with Status::Aborted — cancellation is cooperative, not preemptive.
class Deadline {
 public:
  /// No deadline: Expired() is always false.
  Deadline() = default;

  /// A deadline `ms` milliseconds from now (ms <= 0 is already expired).
  static Deadline After(int64_t ms) {
    Deadline d;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  static Deadline Never() { return Deadline(); }

  bool has_deadline() const { return at_.has_value(); }

  bool Expired() const { return at_.has_value() && Clock::now() >= *at_; }

  /// Milliseconds until expiry: +infinity when unset, <= 0 when expired.
  double RemainingMillis() const {
    if (!at_.has_value()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(*at_ - Clock::now())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> at_;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_TIMER_H_
