#ifndef SEQDET_COMMON_TIMER_H_
#define SEQDET_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace seqdet {

/// Monotonic stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_TIMER_H_
