#ifndef SEQDET_COMMON_INLINE_VECTOR_H_
#define SEQDET_COMMON_INLINE_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <vector>

namespace seqdet {

/// A vector of trivially-copyable elements with inline storage for the
/// first N. Sized for values that are almost always small — a detection
/// match holds one timestamp per pattern event, and patterns rarely exceed
/// a handful of events — so the common case does no heap allocation at
/// all, which matters when a hot-pair join materializes tens of thousands
/// of matches per query. Spills to the heap transparently beyond N.
///
/// Deliberately minimal: only the std::vector surface the codebase uses
/// (push_back/assign/reserve/iteration/indexing/comparisons). Restricted
/// to trivially copyable T so growth and copies are memcpy and element
/// destructors never run.
template <typename T, size_t N>
class InlineVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVector only supports trivially copyable types");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVector() = default;
  InlineVector(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
  }
  /// Implicit from std::vector: callers hand over timestamp lists built
  /// with standard containers (baseline engines, tests).
  InlineVector(const std::vector<T>& v) { assign(v.begin(), v.end()); }
  InlineVector(const InlineVector& other) { assign_raw(other); }
  InlineVector(InlineVector&& other) noexcept { steal(other); }
  InlineVector& operator=(const InlineVector& other) {
    if (this != &other) assign_raw(other);
    return *this;
  }
  InlineVector& operator=(InlineVector&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  ~InlineVector() { release(); }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > capacity_) grow(n);
  }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_++] = v;
  }

  template <typename It>
  void assign(It first, It last) {
    size_ = 0;
    for (; first != last; ++first) push_back(*first);
  }

  friend bool operator==(const InlineVector& a, const InlineVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator<(const InlineVector& a, const InlineVector& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }
  /// Tests compare against std::vector literals; keep those expressions
  /// working in both operand orders.
  friend bool operator==(const InlineVector& a, const std::vector<T>& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<T>& a, const InlineVector& b) {
    return b == a;
  }

 private:
  void grow(size_t at_least) {
    size_t next = std::max(at_least, capacity_ * 2);
    T* heap = static_cast<T*>(::operator new(next * sizeof(T)));
    std::memcpy(static_cast<void*>(heap), data_, size_ * sizeof(T));
    release();
    data_ = heap;
    capacity_ = next;
  }

  void release() {
    if (data_ != inline_storage()) ::operator delete(data_);
  }

  /// Copy assignment that reuses the current buffer when it fits.
  void assign_raw(const InlineVector& other) {
    if (other.size_ > capacity_) grow(other.size_);
    std::memcpy(static_cast<void*>(data_), other.data_,
                other.size_ * sizeof(T));
    size_ = other.size_;
  }

  /// Move: adopt the heap buffer, or memcpy the inline one.
  void steal(InlineVector& other) {
    if (other.data_ != other.inline_storage()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_storage();
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    data_ = inline_storage();
    capacity_ = N;
    size_ = other.size_;
    std::memcpy(static_cast<void*>(data_), other.data_, size_ * sizeof(T));
    other.size_ = 0;
  }

  T* inline_storage() {
    return reinterpret_cast<T*>(inline_buf_);
  }

  alignas(T) unsigned char inline_buf_[N * sizeof(T)];
  T* data_ = inline_storage();
  size_t capacity_ = N;
  size_t size_ = 0;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_INLINE_VECTOR_H_
