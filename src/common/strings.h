#ifndef SEQDET_COMMON_STRINGS_H_
#define SEQDET_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace seqdet {

/// Splits `input` on `sep`; keeps empty fields (CSV semantics).
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a signed 64-bit integer; returns false on any non-numeric input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double; returns false on any non-numeric input.
bool ParseDouble(std::string_view s, double* out);

}  // namespace seqdet

#endif  // SEQDET_COMMON_STRINGS_H_
