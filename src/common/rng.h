#ifndef SEQDET_COMMON_RNG_H_
#define SEQDET_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seqdet {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every data generator in this repository takes an explicit seed so that
/// datasets, workloads and benchmarks are reproducible run-to-run; nothing
/// uses global random state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p = 0.5);

  /// Approximately normally distributed value (Box-Muller).
  double NextGaussian(double mean, double stddev);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, .., n-1} with exponent `theta`.
///
/// Used by the generators to make activity frequencies skewed (start/end
/// activities in real logs are far more frequent than error activities, as
/// the paper notes in §5.4.1).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta, uint64_t seed);

  /// Draws a rank in [0, n); rank 0 is the most frequent.
  size_t Next();

  size_t n() const { return n_; }

 private:
  size_t n_;
  double theta_;
  std::vector<double> cdf_;
  Rng rng_;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_RNG_H_
