#include "common/rng.h"

#include <cmath>

namespace seqdet {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the user seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Debiased modulo via rejection sampling on the top range.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian(double mean, double stddev) {
  // Box-Muller transform; one value per call is sufficient for data gen.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-12) u1 = 1e-12;
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

ZipfSampler::ZipfSampler(size_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), cdf_(n), rng_(seed) {
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfSampler::Next() {
  double u = rng_.NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0, hi = n_;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < n_ ? lo : n_ - 1;
}

}  // namespace seqdet
