#ifndef SEQDET_COMMON_UNIQUE_FD_H_
#define SEQDET_COMMON_UNIQUE_FD_H_

#include <unistd.h>

#include <utility>

namespace seqdet {

/// Move-only owner of a POSIX file descriptor.
///
/// This is the single sanctioned home of `::close()` in the tree: the
/// seqdet-lint raw-fd rule (tools/lint_rules/, rule R2) rejects a literal
/// `::close(` anywhere else in src/ or tools/, so every descriptor —
/// sockets, segment files, accepted connections — flows through UniqueFd
/// and the error-path leak windows the lint found (open succeeded, a later
/// step failed, the early return skipped the close) are closed by
/// construction.
///
/// Deliberately minimal: no dup, no operator int (implicit conversions are
/// how descriptors escape their owner), no EINTR retry on close — POSIX
/// leaves the fd state unspecified after EINTR and retrying can close a
/// descriptor another thread just received, which is strictly worse than
/// the leaked-kernel-object non-problem. Matches the semantics callers had
/// with raw `::close(fd)` and ignored return values.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) Reset(other.Release());
    return *this;
  }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  /// The owned descriptor, or -1. Callers pass this to syscalls; ownership
  /// stays here.
  int get() const { return fd_; }

  /// True when a descriptor is held.
  bool ok() const { return fd_ >= 0; }

  /// Closes the held descriptor (if any) and takes ownership of `fd`.
  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

  /// Relinquishes ownership without closing; returns the descriptor.
  /// For handing the fd to an API that closes it itself.
  int Release() { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_UNIQUE_FD_H_
