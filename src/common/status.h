#ifndef SEQDET_COMMON_STATUS_H_
#define SEQDET_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace seqdet {

/// Error categories used across the library. Mirrors the usual embedded-DB
/// convention (RocksDB/LevelDB-style) of returning a Status from every
/// operation that can fail instead of throwing.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kIOError = 3,
  kCorruption = 4,
  kAlreadyExists = 5,
  kOutOfRange = 6,
  kInternal = 7,
  kUnsupported = 8,
  kAborted = 9,
};

/// Returns a human-readable name for a status code ("Ok", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. Functions that can fail return `Status` (or `Result<T>`), and
/// callers are expected to check `ok()` before using any outputs.
///
/// [[nodiscard]]: silently dropping a returned Status hides failures, so
/// every drop is a compile error (-Werror=unused-result). Intentional
/// drops — best-effort cleanup paths — go through IgnoreStatus() so the
/// intent is visible at the call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  /// A long-running pass was deliberately stopped before finishing (e.g.
  /// maintenance shutdown mid-fold) — the work done so far is valid.
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Explicitly discards a Status on a best-effort path (cleanup, background
/// retry, "failure here only degrades, never corrupts"). Grep-able proof
/// that the drop was a decision, not an oversight.
inline void IgnoreStatus(const Status&) {}

/// Propagates a non-OK status to the caller.
#define SEQDET_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::seqdet::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace seqdet

#endif  // SEQDET_COMMON_STATUS_H_
