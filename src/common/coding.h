#ifndef SEQDET_COMMON_CODING_H_
#define SEQDET_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace seqdet {

/// Little-endian fixed-width and LEB128 varint byte coding.
///
/// All on-disk and in-index values in this library are serialized through
/// these helpers so that the format is deterministic and
/// platform-independent. Decoders take a `std::string_view*` cursor that is
/// advanced past the consumed bytes and return false on truncation.

// ---------------------------------------------------------------------------
// Fixed-width encoding (little endian).
// ---------------------------------------------------------------------------

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  dst->append(buf, 8);
}

inline bool GetFixed32(std::string_view* input, uint32_t* v) {
  if (input->size() < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  input->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* input, uint64_t* v) {
  if (input->size() < 8) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  *v = out;
  input->remove_prefix(8);
  return true;
}

// ---------------------------------------------------------------------------
// Varint (LEB128) encoding.
// ---------------------------------------------------------------------------

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
bool GetVarint32(std::string_view* input, uint32_t* v);
bool GetVarint64(std::string_view* input, uint64_t* v);

/// Batch varint decode: reads exactly `n` LEB128 varints starting at `p`
/// (never past `limit`) into `out[0..n)`. Returns the first byte after the
/// last varint, or nullptr on truncation/overlong input. One tight loop
/// with a branch-predictable fast path for 1-byte varints — measurably
/// faster than n calls through the string_view cursor API when decoding
/// whole posting blocks.
const char* DecodeVarint64Array(const char* p, const char* limit, size_t n,
                                uint64_t* out);

/// Cursor-style wrapper over DecodeVarint64Array: decodes `n` varints and
/// advances `input` past them; false (cursor unchanged) on malformed data.
inline bool GetVarint64Batch(std::string_view* input, size_t n,
                             uint64_t* out) {
  const char* end = DecodeVarint64Array(
      input->data(), input->data() + input->size(), n, out);
  if (end == nullptr) return false;
  input->remove_prefix(static_cast<size_t>(end - input->data()));
  return true;
}

/// ZigZag maps signed integers to unsigned so small magnitudes stay short.
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutVarint64SignedZigZag(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigZagEncode64(v));
}
inline bool GetVarint64SignedZigZag(std::string_view* input, int64_t* v) {
  uint64_t u;
  if (!GetVarint64(input, &u)) return false;
  *v = ZigZagDecode64(u);
  return true;
}

// ---------------------------------------------------------------------------
// Length-prefixed strings.
// ---------------------------------------------------------------------------

inline void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

inline bool GetLengthPrefixed(std::string_view* input, std::string_view* out) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *out = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

// ---------------------------------------------------------------------------
// Order-preserving (big endian) key encoding: memcmp order on the encoded
// bytes equals numeric order, which makes composite keys prefix-scannable.
// ---------------------------------------------------------------------------

inline void PutKeyU32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>((v >> 24) & 0xff);
  buf[1] = static_cast<char>((v >> 16) & 0xff);
  buf[2] = static_cast<char>((v >> 8) & 0xff);
  buf[3] = static_cast<char>(v & 0xff);
  dst->append(buf, 4);
}

inline void PutKeyU64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * (7 - i))) & 0xff);
  }
  dst->append(buf, 8);
}

inline bool GetKeyU32(std::string_view* input, uint32_t* v) {
  if (input->size() < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  *v = (static_cast<uint32_t>(p[0]) << 24) |
       (static_cast<uint32_t>(p[1]) << 16) |
       (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  input->remove_prefix(4);
  return true;
}

inline bool GetKeyU64(std::string_view* input, uint64_t* v) {
  if (input->size() < 8) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | p[i];
  }
  *v = out;
  input->remove_prefix(8);
  return true;
}

/// Encodes a double via its IEEE-754 bit pattern.
inline void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

inline bool GetDouble(std::string_view* input, double* v) {
  uint64_t bits;
  if (!GetFixed64(input, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

}  // namespace seqdet

#endif  // SEQDET_COMMON_CODING_H_
