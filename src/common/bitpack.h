#ifndef SEQDET_COMMON_BITPACK_H_
#define SEQDET_COMMON_BITPACK_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace seqdet {

/// Frame-of-reference bit packing: fixed-width little-endian bit fields
/// appended to a byte string. The writer chooses `bits` as
/// `BitsNeeded(max - min)` over a group of values and stores each value's
/// offset from the group minimum; the reader unpacks with the same width.
/// Widths 0..64 are supported; width 0 appends/reads no bytes (all values
/// equal the frame minimum).

/// Number of bits needed to represent `v` (0 for v == 0).
inline uint32_t BitsNeeded(uint64_t v) {
  uint32_t bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

class BitPacker {
 public:
  explicit BitPacker(std::string* dst) : dst_(dst) {}

  void Put(uint64_t v, uint32_t bits) {
    // Fields wider than 32 bits are split so the 64-bit accumulator can
    // never overflow (bit_count_ < 8 between calls, so chunk + carry ≤ 39).
    if (bits == 0) return;
    if (bits > 32) {
      Put(v & 0xffffffffu, 32);
      Put(v >> 32, bits - 32);
      return;
    }
    acc_ |= (v & ((uint64_t{1} << bits) - 1)) << bit_count_;
    bit_count_ += bits;
    while (bit_count_ >= 8) {
      dst_->push_back(static_cast<char>(acc_ & 0xff));
      acc_ >>= 8;
      bit_count_ -= 8;
    }
  }

  /// Flushes any partial trailing byte (zero-padded high bits).
  void Finish() {
    if (bit_count_ > 0) {
      dst_->push_back(static_cast<char>(acc_ & 0xff));
      acc_ = 0;
      bit_count_ = 0;
    }
  }

 private:
  std::string* dst_;
  uint64_t acc_ = 0;
  uint32_t bit_count_ = 0;
};

class BitUnpacker {
 public:
  explicit BitUnpacker(std::string_view src) : src_(src) {}

  /// Reads one `bits`-wide field; false on underrun.
  bool Get(uint32_t bits, uint64_t* out) {
    if (bits > 32) {
      uint64_t lo, hi;
      if (!Get(32, &lo) || !Get(bits - 32, &hi)) return false;
      *out = lo | (hi << 32);
      return true;
    }
    while (bit_count_ < bits) {
      if (src_.empty()) return false;
      acc_ |= static_cast<uint64_t>(static_cast<unsigned char>(src_.front()))
              << bit_count_;
      src_.remove_prefix(1);
      bit_count_ += 8;
    }
    *out = bits == 0 ? 0 : (acc_ & ((uint64_t{1} << bits) - 1));
    acc_ >>= bits;
    bit_count_ -= bits;
    return true;
  }

  /// Bytes not yet consumed (a partial accumulator byte counts as consumed).
  std::string_view remaining() const { return src_; }

 private:
  std::string_view src_;
  uint64_t acc_ = 0;
  uint32_t bit_count_ = 0;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_BITPACK_H_
