#include "common/coding.h"

#include <bit>
#include <cstring>

namespace seqdet {

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

bool GetVarint32(std::string_view* input, uint32_t* v) {
  uint32_t result = 0;
  for (int shift = 0; shift <= 28 && !input->empty(); shift += 7) {
    unsigned char byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint32_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint32_t>(byte) << shift;
      *v = result;
      return true;
    }
  }
  return false;
}

const char* DecodeVarint64Array(const char* p, const char* limit, size_t n,
                                uint64_t* out) {
  const unsigned char* cur = reinterpret_cast<const unsigned char*>(p);
  const unsigned char* end = reinterpret_cast<const unsigned char*>(limit);
  for (size_t i = 0; i < n; ++i) {
    if (end - cur >= 10) {
      uint64_t byte = *cur;
      if ((byte & 0x80) == 0) {
        // 1-byte fast path: postings deltas/durations are usually < 128.
        out[i] = byte;
        ++cur;
        continue;
      }
      // Word-at-a-time path for varints of 2..8 bytes (zigzag epoch-ms
      // timestamps encode to 6): one unaligned load, find the terminator
      // byte from the continuation bits, then compact the 7-bit groups
      // with three shift-mask rounds instead of a per-byte loop.
      uint64_t word;
      std::memcpy(&word, cur, sizeof(word));
      uint64_t stops = ~word & 0x8080808080808080ull;
      if (stops != 0) {
        unsigned len_bits = (std::countr_zero(stops) & ~7u) + 8;
        uint64_t keep =
            len_bits == 64 ? word : word & ((uint64_t{1} << len_bits) - 1);
        uint64_t x = keep & 0x7f7f7f7f7f7f7f7full;
        x = (x & 0x007f007f007f007full) | ((x & 0x7f007f007f007f00ull) >> 1);
        x = (x & 0x00003fff00003fffull) | ((x & 0x3fff00003fff0000ull) >> 2);
        x = (x & 0x000000000fffffffull) | ((x & 0x0fffffff00000000ull) >> 4);
        out[i] = x;
        cur += len_bits >> 3;
        continue;
      }
      // 9-10 byte varint: rare; at most 10 bytes are available, so the
      // overlong guard fires before an 11th read.
      uint64_t result = byte & 0x7f;
      ++cur;
      int shift = 7;
      for (;;) {
        if (shift > 63) return nullptr;
        byte = *cur;
        ++cur;
        if (byte & 0x80) {
          result |= (byte & 0x7f) << shift;
          shift += 7;
        } else {
          result |= byte << shift;
          break;
        }
      }
      out[i] = result;
      continue;
    }
    if (cur >= end) return nullptr;
    uint64_t byte = *cur;
    if ((byte & 0x80) == 0) {
      out[i] = byte;
      ++cur;
      continue;
    }
    uint64_t result = byte & 0x7f;
    ++cur;
    int shift = 7;
    for (;;) {
      if (cur >= end || shift > 63) return nullptr;
      byte = *cur;
      ++cur;
      if (byte & 0x80) {
        result |= (byte & 0x7f) << shift;
        shift += 7;
      } else {
        result |= byte << shift;
        break;
      }
    }
    out[i] = result;
  }
  return reinterpret_cast<const char*>(cur);
}

bool GetVarint64(std::string_view* input, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    unsigned char byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *v = result;
      return true;
    }
  }
  return false;
}

}  // namespace seqdet
