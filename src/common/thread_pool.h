#ifndef SEQDET_COMMON_THREAD_POOL_H_
#define SEQDET_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace seqdet {

/// Fixed-size thread pool.
///
/// Substitutes the paper's Spark executors: the index builder treats each
/// trace independently ("parallelization-by-design", §5.3), so a plain task
/// pool reproduces both the 1-executor and the all-cores configurations of
/// Table 6.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  /// Schedules `fn` and returns a future for its completion.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  /// Runs `fn(i)` for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until every call returns.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker — the pool's wait
  /// queue. The HTTP server exports it as its connection-queue depth.
  size_t queue_depth() const {
    MutexLock lock(mu_);
    return tasks_.size();
  }

  /// Number of hardware threads, never 0.
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_THREAD_POOL_H_
