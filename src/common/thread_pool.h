#ifndef SEQDET_COMMON_THREAD_POOL_H_
#define SEQDET_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace seqdet {

/// Point-in-time counters of one ThreadPool (monotonic except the gauge).
struct ThreadPoolStats {
  size_t threads = 0;           // pool size
  uint64_t tasks_executed = 0;  // tasks run by pool workers
  uint64_t inline_runs = 0;     // ParallelFor chunks run inline by callers
  size_t queue_depth = 0;       // gauge: submitted, not yet picked up
  size_t peak_queue_depth = 0;  // high-water mark of queue_depth
};

/// Fixed-size thread pool.
///
/// Substitutes the paper's Spark executors: the index builder treats each
/// trace independently ("parallelization-by-design", §5.3), so a plain task
/// pool reproduces both the 1-executor and the all-cores configurations of
/// Table 6. Since the morsel-driven query engine it is also the intra-query
/// executor: one pool instance is safely shared by nested ParallelFor calls
/// (a DetectBatch fan-out whose Detects fan out their own joins) — see
/// ParallelFor for the reentrancy rule that makes that deadlock-free.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after draining the queue. Blocking: waits for every
  /// queued task to finish, however long that takes.
  SEQDET_BLOCKING ~ThreadPool();

  /// Schedules `fn` and returns a future for its completion.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> REQUIRES(!mu_) {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      tasks_.emplace([task] { (*task)(); });
      if (tasks_.size() > peak_queue_depth_) {
        peak_queue_depth_ = tasks_.size();
      }
    }
    cv_.NotifyOne();
    return fut;
  }

  /// Runs `fn(i)` for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until every call returns.
  ///
  /// Reentrancy: when the calling thread is itself a worker of this pool,
  /// the chunks are executed inline on the caller instead of being
  /// submitted. Blocking a worker on futures served by its own (possibly
  /// 1-thread, possibly saturated) pool would deadlock — every nested level
  /// could be waiting for a worker that is itself waiting. Inline execution
  /// keeps nested parallel sections (parallel DetectBatch over parallel
  /// Detect) correct at the cost of no extra parallelism for the inner
  /// level, which the outer fan-out already provides. Inline-run chunks are
  /// counted in ThreadPoolStats::inline_runs.
  ///
  /// Blocking (future joins): never call under any lock — a worker stuck
  /// behind it would hold that lock for the whole fan-out.
  SEQDET_BLOCKING void ParallelFor(size_t n,
                                   const std::function<void(size_t)>& fn)
      REQUIRES(!mu_);

  /// True when the calling thread is one of this pool's workers — i.e. a
  /// ParallelFor from here would run inline.
  bool OnWorkerThread() const;

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker — the pool's wait
  /// queue. The HTTP server exports it as its connection-queue depth.
  ///
  /// Lock order: ThreadPool::mu_ is a leaf *acquired under* both
  /// HttpServer::stats_mu_ (this gauge) and ShardRouter's scatter-state
  /// mutex (Submit during leg launch) — see the map in common/sync.h.
  size_t queue_depth() const REQUIRES(!mu_) {
    MutexLock lock(mu_);
    return tasks_.size();
  }

  /// Snapshot of the pool's observability counters.
  ThreadPoolStats stats() const REQUIRES(!mu_);

  /// Number of hardware threads, never 0.
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop() REQUIRES(!mu_);

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  size_t peak_queue_depth_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> inline_runs_{0};
};

}  // namespace seqdet

#endif  // SEQDET_COMMON_THREAD_POOL_H_
