#include "baselines/subtree/subtree_index.h"

#include <algorithm>

#include "common/strings.h"

namespace seqdet::baseline {

using eventlog::ActivityId;
using eventlog::EventLog;
using eventlog::Trace;

Result<std::unique_ptr<SubtreeIndex>> SubtreeIndex::Build(
    const EventLog& log, const SubtreeIndexOptions& options) {
  auto index = std::unique_ptr<SubtreeIndex>(new SubtreeIndex());
  SEQDET_RETURN_IF_ERROR(index->BuildTrie(log, options));
  index->BuildPreorderString();
  index->BuildSuffixArray(log);
  return index;
}

Status SubtreeIndex::BuildTrie(const EventLog& log,
                               const SubtreeIndexOptions& options) {
  nodes_.clear();
  nodes_.push_back(TrieNode{});  // root

  for (const Trace& trace : log.traces()) {
    const size_t n = trace.size();
    for (size_t start = 0; start < n; ++start) {
      uint32_t node = 0;  // root
      for (size_t i = start; i < n; ++i) {
        const ActivityId label = trace.events[i].activity;
        // Linear sibling search (trie children are unordered lists).
        uint32_t child = nodes_[node].first_child;
        while (child != 0 && nodes_[child].label != label) {
          child = nodes_[child].next_sibling;
        }
        if (child == 0) {
          if (nodes_.size() >= options.max_trie_nodes) {
            return Status::OutOfRange(StringPrintf(
                "subtree index exceeded %zu trie nodes (the subtree "
                "space of this log is too large, cf. bpi_2017 in the "
                "paper)",
                options.max_trie_nodes));
          }
          child = static_cast<uint32_t>(nodes_.size());
          nodes_.push_back(TrieNode{label, 0, nodes_[node].first_child, {}});
          nodes_[node].first_child = child;
        }
        // Storing the occurrence on every path node materializes all
        // subtrees — the dominant cost of this method (§5.3).
        nodes_[child].occurrences.push_back(
            ScOccurrence{trace.id, static_cast<uint32_t>(start)});
        node = child;
      }
    }
  }
  return Status::OK();
}

void SubtreeIndex::BuildPreorderString() {
  preorder_.clear();
  preorder_.reserve(nodes_.size() * 2);
  // Iterative preorder DFS: labels are shifted by +1 so that 0 can mark
  // "return to the previous level" as in [19]; |W| = 2 * #nodes.
  struct Frame {
    uint32_t node;
    bool entered;
  };
  std::vector<Frame> stack;
  for (uint32_t child = nodes_[0].first_child; child != 0;
       child = nodes_[child].next_sibling) {
    stack.push_back(Frame{child, false});
  }
  // The loop below visits children in next_sibling order; that order is
  // reversed insertion order, which is fine — any fixed order yields a
  // valid preorder encoding.
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (frame.entered) {
      preorder_.push_back(0);
      continue;
    }
    preorder_.push_back(nodes_[frame.node].label + 1);
    stack.push_back(Frame{frame.node, true});
    for (uint32_t child = nodes_[frame.node].first_child; child != 0;
         child = nodes_[child].next_sibling) {
      stack.push_back(Frame{child, false});
    }
  }
}

void SubtreeIndex::BuildSuffixArray(const EventLog& log) {
  trace_refs_.clear();
  trace_refs_.reserve(log.num_traces());
  size_t total = 0;
  for (const Trace& trace : log.traces()) {
    trace_refs_.push_back(&trace);
    total += trace.size();
  }
  suffix_array_.clear();
  suffix_array_.reserve(total);
  for (uint32_t t = 0; t < trace_refs_.size(); ++t) {
    for (uint32_t off = 0; off < trace_refs_[t]->size(); ++off) {
      suffix_array_.push_back(SuffixRef{t, off});
    }
  }
  auto less = [this](const SuffixRef& a, const SuffixRef& b) {
    const auto& ea = trace_refs_[a.trace_index]->events;
    const auto& eb = trace_refs_[b.trace_index]->events;
    size_t i = a.offset, j = b.offset;
    while (i < ea.size() && j < eb.size()) {
      if (ea[i].activity != eb[j].activity) {
        return ea[i].activity < eb[j].activity;
      }
      ++i;
      ++j;
    }
    if (i < ea.size()) return false;  // a longer -> greater
    if (j < eb.size()) return true;
    // Equal suffixes: break ties deterministically.
    if (a.trace_index != b.trace_index) return a.trace_index < b.trace_index;
    return a.offset < b.offset;
  };
  std::sort(suffix_array_.begin(), suffix_array_.end(), less);
}

namespace {
// -1 / 0 / +1: compares a suffix against `pattern` treated as a prefix
// (0 means the pattern is a prefix of the suffix).
int ComparePrefix(const std::vector<eventlog::Event>& events, size_t offset,
                  const std::vector<ActivityId>& pattern) {
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (offset + i >= events.size()) return -1;  // suffix exhausted -> less
    ActivityId s = events[offset + i].activity;
    if (s != pattern[i]) return s < pattern[i] ? -1 : 1;
  }
  return 0;
}
}  // namespace

std::pair<size_t, size_t> SubtreeIndex::EqualRange(
    const std::vector<ActivityId>& pattern) const {
  size_t lo = 0, hi = suffix_array_.size();
  // Lower bound: first suffix not less than the pattern prefix.
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    const SuffixRef& ref = suffix_array_[mid];
    if (ComparePrefix(trace_refs_[ref.trace_index]->events, ref.offset,
                      pattern) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t begin = lo;
  hi = suffix_array_.size();
  // Upper bound: first suffix greater than the pattern prefix.
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    const SuffixRef& ref = suffix_array_[mid];
    if (ComparePrefix(trace_refs_[ref.trace_index]->events, ref.offset,
                      pattern) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {begin, lo};
}

std::vector<ScOccurrence> SubtreeIndex::Find(
    const std::vector<ActivityId>& pattern) const {
  std::vector<ScOccurrence> out;
  if (pattern.empty()) return out;
  auto [lo, hi] = EqualRange(pattern);
  out.reserve(hi - lo);
  for (size_t i = lo; i < hi; ++i) {
    const SuffixRef& ref = suffix_array_[i];
    out.push_back(
        ScOccurrence{trace_refs_[ref.trace_index]->id, ref.offset});
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t SubtreeIndex::Count(const std::vector<ActivityId>& pattern) const {
  if (pattern.empty()) return 0;
  auto [lo, hi] = EqualRange(pattern);
  return hi - lo;
}

uint32_t SubtreeIndex::WalkTrie(
    const std::vector<ActivityId>& pattern) const {
  uint32_t node = 0;
  for (ActivityId label : pattern) {
    uint32_t child = nodes_[node].first_child;
    while (child != 0 && nodes_[child].label != label) {
      child = nodes_[child].next_sibling;
    }
    if (child == 0) return 0;
    node = child;
  }
  return node;
}

std::vector<std::pair<ActivityId, size_t>> SubtreeIndex::Continuations(
    const std::vector<ActivityId>& pattern) const {
  std::vector<std::pair<ActivityId, size_t>> out;
  uint32_t node = WalkTrie(pattern);
  if (node == 0 && !pattern.empty()) return out;
  for (uint32_t child = nodes_[node].first_child; child != 0;
       child = nodes_[child].next_sibling) {
    out.emplace_back(nodes_[child].label, nodes_[child].occurrences.size());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace seqdet::baseline
