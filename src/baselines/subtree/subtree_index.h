#ifndef SEQDET_BASELINES_SUBTREE_SUBTREE_INDEX_H_
#define SEQDET_BASELINES_SUBTREE_SUBTREE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "log/event_log.h"

namespace seqdet::baseline {

/// Occurrence of a (strictly contiguous) pattern inside the log.
struct ScOccurrence {
  eventlog::TraceId trace = 0;
  uint32_t position = 0;  // offset of the first matched event in the trace

  friend bool operator==(const ScOccurrence&, const ScOccurrence&) = default;
  friend auto operator<=>(const ScOccurrence&, const ScOccurrence&) = default;
};

struct SubtreeIndexOptions {
  /// Hard cap on trie nodes; exceeding it aborts the build with
  /// OutOfRange. Mirrors the paper's observation that [19] "could not even
  /// finish indexing in 5 hours" on bpi_2017 — the subtree enumeration
  /// grows superlinearly on long-trace logs.
  size_t max_trie_nodes = 64u << 20;
};

/// Reproduction of the paper's main competitor: exact rooted subtree
/// matching in sublinear time (Luccio et al. [19], applied to event logs by
/// [27]).
///
/// Pre-processing (the expensive part, §2.2 / Table 1 "indexing of all the
/// subtrees"):
///  1. every suffix of every trace is inserted into a trie, and every node
///     stores the occurrences of the root-to-node path (this materializes
///     all distinct contiguous subsequences — the "subtree space");
///  2. the trie is serialized to the preorder string W (activity label on
///     entry, 0 on return to the parent), exactly as [19] describes;
///  3. a suffix array over W is built.
///
/// Queries: binary search of the pattern over the generalized suffix array
/// of the traces — O(m·log n + k), *independent of pattern length* in
/// practice (Table 7), supporting strict contiguity only.
class SubtreeIndex {
 public:
  /// Builds the index over `log`.
  static Result<std::unique_ptr<SubtreeIndex>> Build(
      const eventlog::EventLog& log, const SubtreeIndexOptions& options = {});

  SubtreeIndex(const SubtreeIndex&) = delete;
  SubtreeIndex& operator=(const SubtreeIndex&) = delete;

  /// All SC occurrences of `pattern`, via suffix-array binary search.
  std::vector<ScOccurrence> Find(
      const std::vector<eventlog::ActivityId>& pattern) const;

  /// Occurrence count without materializing results.
  size_t Count(const std::vector<eventlog::ActivityId>& pattern) const;

  /// Pattern-continuation support (the use case of [27]): the activities
  /// that can immediately follow `pattern`, with their occurrence counts,
  /// from the trie node the pattern leads to.
  std::vector<std::pair<eventlog::ActivityId, size_t>> Continuations(
      const std::vector<eventlog::ActivityId>& pattern) const;

  // --- introspection used by benches/tests --------------------------------
  size_t num_trie_nodes() const { return nodes_.size(); }
  size_t preorder_length() const { return preorder_.size(); }
  size_t num_suffixes() const { return suffix_array_.size(); }

 private:
  struct TrieNode {
    eventlog::ActivityId label = 0;
    uint32_t first_child = 0;   // 0 = none (0 is the root, never a child)
    uint32_t next_sibling = 0;  // 0 = none
    /// Occurrences of the path ending at this node — the stored "subtrees".
    std::vector<ScOccurrence> occurrences;
  };

  SubtreeIndex() = default;

  Status BuildTrie(const eventlog::EventLog& log,
                   const SubtreeIndexOptions& options);
  void BuildPreorderString();
  void BuildSuffixArray(const eventlog::EventLog& log);

  /// Walks the trie from the root along `pattern`; 0 when no such path.
  uint32_t WalkTrie(const std::vector<eventlog::ActivityId>& pattern) const;

  /// Binary-search range [lo, hi) of suffixes with `pattern` as prefix.
  std::pair<size_t, size_t> EqualRange(
      const std::vector<eventlog::ActivityId>& pattern) const;

  std::vector<TrieNode> nodes_;  // nodes_[0] is the root
  /// Preorder string W of [19]: labels shifted by +1 so 0 marks "return".
  std::vector<uint32_t> preorder_;

  // Generalized suffix array over the traces.
  struct SuffixRef {
    uint32_t trace_index;
    uint32_t offset;
  };
  std::vector<SuffixRef> suffix_array_;
  std::vector<const eventlog::Trace*> trace_refs_;
};

}  // namespace seqdet::baseline

#endif  // SEQDET_BASELINES_SUBTREE_SUBTREE_INDEX_H_
