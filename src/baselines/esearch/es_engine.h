#ifndef SEQDET_BASELINES_ESEARCH_ES_ENGINE_H_
#define SEQDET_BASELINES_ESEARCH_ES_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "log/event_log.h"

namespace seqdet::baseline {

/// One pattern match reported by the ES-like engine.
struct EsMatch {
  eventlog::TraceId trace = 0;
  std::vector<eventlog::Timestamp> timestamps;

  friend bool operator==(const EsMatch&, const EsMatch&) = default;
};

struct EsOptions {
  /// Route every document through a JSON serialize/parse round-trip before
  /// analysis. A real Elasticsearch deployment ingests documents over HTTP
  /// as JSON and runs an analysis chain on the server; skipping that work
  /// would understate indexing cost by the very component that dominates
  /// it. Disable for unit tests that only check query semantics.
  bool simulate_ingestion = true;
};

/// Reproduction of the Elasticsearch v7.9.1 baseline (§5.3-5.4): a
/// Lucene-style positional inverted index over traces-as-documents.
///
/// * one document per trace; the activity sequence is the analyzed text;
/// * a term dictionary maps activity names to term ids;
/// * per-term postings hold (document, sorted positions);
/// * STNM queries = boolean conjunction over the pattern's terms (with
///   multiplicity-aware pruning) + greedy position verification per
///   candidate document — the span-near style evaluation ES would run;
/// * SC queries = exact phrase queries over positions (the paper notes ES
///   needs "additional expensive post-processing" for SC; phrase
///   verification is that post-processing).
class EsLikeEngine {
 public:
  /// Indexes `log` (the "bulk ingest"). The log does not need to outlive
  /// the engine; documents are stored internally like ES stored fields.
  static Result<std::unique_ptr<EsLikeEngine>> Build(
      const eventlog::EventLog& log, const EsOptions& options = {});

  EsLikeEngine(const EsLikeEngine&) = delete;
  EsLikeEngine& operator=(const EsLikeEngine&) = delete;

  /// All STNM matches (greedy non-overlapping per document, the same match
  /// semantics as the SASE baseline).
  std::vector<EsMatch> DetectStnm(
      const std::vector<std::string>& pattern_terms) const;

  /// All SC matches (phrase query; occurrences may overlap).
  std::vector<EsMatch> DetectSc(
      const std::vector<std::string>& pattern_terms) const;

  size_t num_documents() const { return documents_.size(); }
  size_t num_terms() const { return term_ids_.size(); }
  size_t num_postings() const { return num_postings_; }

 private:
  struct Document {
    eventlog::TraceId trace = 0;
    std::vector<uint32_t> tokens;               // term ids, by position
    std::vector<eventlog::Timestamp> timestamps;  // parallel to tokens
  };

  struct Posting {
    uint32_t doc = 0;                  // index into documents_
    std::vector<uint32_t> positions;   // ascending
  };

  EsLikeEngine() = default;

  Status IngestDocument(const eventlog::Trace& trace,
                        const eventlog::ActivityDictionary& dictionary,
                        bool simulate_ingestion);
  uint32_t InternTerm(const std::string& term);

  /// Term ids for the query, or empty if any term is unindexed.
  bool ResolveTerms(const std::vector<std::string>& pattern_terms,
                    std::vector<uint32_t>* term_ids) const;

  /// Candidate documents containing every pattern term with sufficient
  /// multiplicity (conjunctive postings intersection).
  std::vector<uint32_t> CandidateDocuments(
      const std::vector<uint32_t>& term_ids) const;

  std::vector<Document> documents_;
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<std::vector<Posting>> postings_;  // by term id, doc-sorted
  size_t num_postings_ = 0;
};

/// Serializes a trace as the JSON document the engine "receives"
/// (exposed for tests).
std::string TraceToJson(const eventlog::Trace& trace,
                        const eventlog::ActivityDictionary& dictionary);

/// Parses the document format produced by TraceToJson. Returns false on
/// malformed input. Activity names and timestamps are appended to the
/// output vectors.
bool ParseTraceJson(const std::string& json,
                    eventlog::TraceId* trace_id,
                    std::vector<std::string>* activities,
                    std::vector<eventlog::Timestamp>* timestamps);

}  // namespace seqdet::baseline

#endif  // SEQDET_BASELINES_ESEARCH_ES_ENGINE_H_
