#include "baselines/esearch/es_engine.h"

#include <algorithm>

#include "common/strings.h"

namespace seqdet::baseline {

using eventlog::ActivityDictionary;
using eventlog::EventLog;
using eventlog::Timestamp;
using eventlog::Trace;
using eventlog::TraceId;

std::string TraceToJson(const Trace& trace,
                        const ActivityDictionary& dictionary) {
  std::string json = "{\"trace\":" + std::to_string(trace.id) +
                     ",\"events\":[";
  for (size_t i = 0; i < trace.events.size(); ++i) {
    if (i) json += ',';
    json += "{\"a\":\"";
    json += dictionary.Name(trace.events[i].activity);
    json += "\",\"t\":";
    json += std::to_string(trace.events[i].ts);
    json += '}';
  }
  json += "]}";
  return json;
}

bool ParseTraceJson(const std::string& json, TraceId* trace_id,
                    std::vector<std::string>* activities,
                    std::vector<Timestamp>* timestamps) {
  // Hand-rolled parser for exactly the shape TraceToJson emits; enough to
  // model the server-side decode cost without a JSON library.
  std::string_view s(json);
  auto expect = [&s](std::string_view token) {
    if (!StartsWith(s, token)) return false;
    s.remove_prefix(token.size());
    return true;
  };
  auto parse_int = [&s](int64_t* out) {
    size_t i = 0;
    bool neg = false;
    if (i < s.size() && s[i] == '-') {
      neg = true;
      ++i;
    }
    int64_t v = 0;
    size_t digits = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      v = v * 10 + (s[i] - '0');
      ++i;
      ++digits;
    }
    if (digits == 0) return false;
    *out = neg ? -v : v;
    s.remove_prefix(i);
    return true;
  };

  if (!expect("{\"trace\":")) return false;
  int64_t id;
  if (!parse_int(&id)) return false;
  *trace_id = static_cast<TraceId>(id);
  if (!expect(",\"events\":[")) return false;
  bool first = true;
  while (!StartsWith(s, "]")) {
    if (!first && !expect(",")) return false;
    first = false;
    if (!expect("{\"a\":\"")) return false;
    size_t quote = s.find('"');
    if (quote == std::string_view::npos) return false;
    activities->emplace_back(s.substr(0, quote));
    s.remove_prefix(quote + 1);
    if (!expect(",\"t\":")) return false;
    int64_t ts;
    if (!parse_int(&ts)) return false;
    timestamps->push_back(ts);
    if (!expect("}")) return false;
  }
  return expect("]}");
}

uint32_t EsLikeEngine::InternTerm(const std::string& term) {
  auto it = term_ids_.find(term);
  if (it != term_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(postings_.size());
  term_ids_.emplace(term, id);
  postings_.emplace_back();
  return id;
}

Status EsLikeEngine::IngestDocument(const Trace& trace,
                                    const ActivityDictionary& dictionary,
                                    bool simulate_ingestion) {
  Document doc;
  doc.trace = trace.id;

  std::vector<std::string> names;
  if (simulate_ingestion) {
    std::string json = TraceToJson(trace, dictionary);
    TraceId parsed_id;
    if (!ParseTraceJson(json, &parsed_id, &names, &doc.timestamps)) {
      return Status::Corruption("document decode failed");
    }
    doc.trace = parsed_id;
  } else {
    names.reserve(trace.events.size());
    doc.timestamps.reserve(trace.events.size());
    for (const auto& e : trace.events) {
      names.push_back(dictionary.Name(e.activity));
      doc.timestamps.push_back(e.ts);
    }
  }

  const uint32_t doc_id = static_cast<uint32_t>(documents_.size());
  doc.tokens.reserve(names.size());
  for (uint32_t pos = 0; pos < names.size(); ++pos) {
    uint32_t term = InternTerm(names[pos]);
    doc.tokens.push_back(term);
    auto& term_postings = postings_[term];
    if (term_postings.empty() || term_postings.back().doc != doc_id) {
      term_postings.push_back(Posting{doc_id, {}});
      ++num_postings_;
    }
    term_postings.back().positions.push_back(pos);
  }
  documents_.push_back(std::move(doc));
  return Status::OK();
}

Result<std::unique_ptr<EsLikeEngine>> EsLikeEngine::Build(
    const EventLog& log, const EsOptions& options) {
  auto engine = std::unique_ptr<EsLikeEngine>(new EsLikeEngine());
  engine->documents_.reserve(log.num_traces());
  for (const Trace& trace : log.traces()) {
    SEQDET_RETURN_IF_ERROR(engine->IngestDocument(trace, log.dictionary(),
                                                  options.simulate_ingestion));
  }
  return engine;
}

bool EsLikeEngine::ResolveTerms(const std::vector<std::string>& pattern_terms,
                                std::vector<uint32_t>* term_ids) const {
  term_ids->reserve(pattern_terms.size());
  for (const std::string& term : pattern_terms) {
    auto it = term_ids_.find(term);
    if (it == term_ids_.end()) return false;
    term_ids->push_back(it->second);
  }
  return !term_ids->empty();
}

std::vector<uint32_t> EsLikeEngine::CandidateDocuments(
    const std::vector<uint32_t>& term_ids) const {
  // Required multiplicity per distinct term.
  std::unordered_map<uint32_t, uint32_t> required;
  for (uint32_t t : term_ids) ++required[t];

  // Drive the intersection from the rarest term (smallest doc list).
  std::vector<std::pair<uint32_t, uint32_t>> terms;  // (term, multiplicity)
  terms.reserve(required.size());
  for (auto& [t, mult] : required) terms.emplace_back(t, mult);
  std::sort(terms.begin(), terms.end(),
            [this](const auto& a, const auto& b) {
              return postings_[a.first].size() < postings_[b.first].size();
            });

  std::vector<uint32_t> candidates;
  for (const Posting& posting : postings_[terms[0].first]) {
    if (posting.positions.size() >= terms[0].second) {
      candidates.push_back(posting.doc);
    }
  }
  for (size_t i = 1; i < terms.size() && !candidates.empty(); ++i) {
    const auto& plist = postings_[terms[i].first];
    std::vector<uint32_t> next;
    next.reserve(candidates.size());
    size_t j = 0;
    for (uint32_t doc : candidates) {
      while (j < plist.size() && plist[j].doc < doc) ++j;
      if (j < plist.size() && plist[j].doc == doc &&
          plist[j].positions.size() >= terms[i].second) {
        next.push_back(doc);
      }
    }
    candidates = std::move(next);
  }
  return candidates;
}

std::vector<EsMatch> EsLikeEngine::DetectStnm(
    const std::vector<std::string>& pattern_terms) const {
  std::vector<EsMatch> out;
  std::vector<uint32_t> term_ids;
  if (!ResolveTerms(pattern_terms, &term_ids)) return out;

  for (uint32_t doc_id : CandidateDocuments(term_ids)) {
    const Document& doc = documents_[doc_id];
    // Greedy span verification: repeatedly match the whole pattern against
    // the term positions, never reusing an event (non-overlapping STNM).
    // Position cursors per pattern slot are advanced by binary search over
    // the per-term position lists.
    int64_t cursor = -1;
    for (;;) {
      EsMatch match;
      match.trace = doc.trace;
      bool complete = true;
      int64_t local = cursor;
      for (uint32_t term : term_ids) {
        const auto& plist = postings_[term];
        auto it = std::lower_bound(
            plist.begin(), plist.end(), doc_id,
            [](const Posting& p, uint32_t d) { return p.doc < d; });
        const auto& positions = it->positions;
        auto pos_it = local < 0
                          ? positions.begin()
                          : std::upper_bound(positions.begin(),
                                             positions.end(),
                                             static_cast<uint32_t>(local));
        if (pos_it == positions.end()) {
          complete = false;
          break;
        }
        local = *pos_it;
        match.timestamps.push_back(doc.timestamps[*pos_it]);
      }
      if (!complete) break;
      cursor = local;
      out.push_back(std::move(match));
    }
  }
  return out;
}

std::vector<EsMatch> EsLikeEngine::DetectSc(
    const std::vector<std::string>& pattern_terms) const {
  std::vector<EsMatch> out;
  std::vector<uint32_t> term_ids;
  if (!ResolveTerms(pattern_terms, &term_ids)) return out;

  for (uint32_t doc_id : CandidateDocuments(term_ids)) {
    const Document& doc = documents_[doc_id];
    // Phrase query: anchor on the first term's positions, verify the rest
    // at consecutive offsets.
    const auto& first_plist = postings_[term_ids[0]];
    auto it = std::lower_bound(
        first_plist.begin(), first_plist.end(), doc_id,
        [](const Posting& p, uint32_t d) { return p.doc < d; });
    for (uint32_t anchor : it->positions) {
      if (anchor + term_ids.size() > doc.tokens.size()) break;
      bool ok = true;
      for (size_t i = 1; i < term_ids.size(); ++i) {
        if (doc.tokens[anchor + i] != term_ids[i]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      EsMatch match;
      match.trace = doc.trace;
      match.timestamps.reserve(term_ids.size());
      for (size_t i = 0; i < term_ids.size(); ++i) {
        match.timestamps.push_back(doc.timestamps[anchor + i]);
      }
      out.push_back(std::move(match));
    }
  }
  return out;
}

}  // namespace seqdet::baseline
