#ifndef SEQDET_BASELINES_SASE_SASE_ENGINE_H_
#define SEQDET_BASELINES_SASE_SASE_ENGINE_H_

#include <map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "index/pair.h"
#include "log/event_log.h"
#include "query/pattern.h"

namespace seqdet::baseline {

/// One whole-pattern match found by the NFA engine.
struct SaseMatch {
  eventlog::TraceId trace = 0;
  std::vector<eventlog::Timestamp> timestamps;

  friend bool operator==(const SaseMatch&, const SaseMatch&) = default;
};

/// Memo of concrete-pair match sets for repeated DetectExtended calls over
/// one (log, policy): the differential harness replays thousands of random
/// extended patterns against one log, and every pattern re-derives its
/// operator semantics from the same handful of concrete pairs. Owned by the
/// caller; pass the same cache only for the same engine and policy.
struct SasePairCache {
  index::Policy policy{};
  bool initialized = false;
  std::map<std::pair<eventlog::ActivityId, eventlog::ActivityId>,
           std::vector<SaseMatch>>
      pairs;
};

/// Reproduction of the SASE baseline (§5.4.2): an NFA-based complex-event
/// engine that evaluates sequence queries by scanning the raw log at query
/// time — zero pre-processing, so query cost is linear in the log size (the
/// degradation Table 8 shows on bpi_2017 / max_10000).
///
/// The NFA for a sequence pattern <e_1, ..., e_p> is a chain of p states;
/// the event-selection strategy is configurable:
///  * strict contiguity — the next event must match the next state or the
///    run dies (all (possibly overlapping) contiguous occurrences are
///    reported, one run starting per e_1 instance);
///  * skip-till-next-match — irrelevant events are skipped; a single run
///    proceeds greedily and restarts after each complete match, yielding
///    the standard non-overlapping STNM match set.
class SaseEngine {
 public:
  /// The engine scans `log` on every query; the log must outlive it.
  explicit SaseEngine(const eventlog::EventLog* log) : log_(log) {}

  /// All matches of `pattern` under `policy` across the whole log.
  std::vector<SaseMatch> Detect(
      const std::vector<eventlog::ActivityId>& pattern,
      index::Policy policy) const;

  /// Match count only (still scans everything).
  size_t Count(const std::vector<eventlog::ActivityId>& pattern,
               index::Policy policy) const;

  /// Extended-operator evaluation (disjunction, Kleene+, negation, time
  /// windows — DESIGN.md §14) straight off the raw log. This is the
  /// NORMATIVE semantics the index-side compiler is differentially tested
  /// against; no index, cache, or posting codec is involved here.
  ///
  /// Composition rules (each mirrored independently by the engine):
  ///  * a disjunction pair (S, T) matches the union over all concrete
  ///    (a in S, b in T) of the policy's NFA pair match sets;
  ///  * Kleene+ chains repetitions through the element's self-pair set,
  ///    each repetition making strict temporal progress (ts grows);
  ///  * negation forbids a matching event strictly inside the open
  ///    interval between the neighbouring positive matches (unbounded at
  ///    the pattern ends);
  ///  * `within` / `gap <=` bounds are inclusive;
  ///  * the result is deduplicated and sorted by (trace, timestamps).
  ///
  /// Only SC and STNM are supported (Unsupported otherwise). `cache`
  /// optionally memoizes concrete pair sets across calls.
  Result<std::vector<SaseMatch>> DetectExtended(
      const query::ExtendedPattern& pattern, index::Policy policy,
      SasePairCache* cache = nullptr) const;

 private:
  void DetectInTrace(const eventlog::Trace& trace,
                     const std::vector<eventlog::ActivityId>& pattern,
                     index::Policy policy,
                     std::vector<SaseMatch>* out) const;

  const eventlog::EventLog* log_;
};

}  // namespace seqdet::baseline

#endif  // SEQDET_BASELINES_SASE_SASE_ENGINE_H_
