#ifndef SEQDET_BASELINES_SASE_SASE_ENGINE_H_
#define SEQDET_BASELINES_SASE_SASE_ENGINE_H_

#include <vector>

#include "index/pair.h"
#include "log/event_log.h"

namespace seqdet::baseline {

/// One whole-pattern match found by the NFA engine.
struct SaseMatch {
  eventlog::TraceId trace = 0;
  std::vector<eventlog::Timestamp> timestamps;

  friend bool operator==(const SaseMatch&, const SaseMatch&) = default;
};

/// Reproduction of the SASE baseline (§5.4.2): an NFA-based complex-event
/// engine that evaluates sequence queries by scanning the raw log at query
/// time — zero pre-processing, so query cost is linear in the log size (the
/// degradation Table 8 shows on bpi_2017 / max_10000).
///
/// The NFA for a sequence pattern <e_1, ..., e_p> is a chain of p states;
/// the event-selection strategy is configurable:
///  * strict contiguity — the next event must match the next state or the
///    run dies (all (possibly overlapping) contiguous occurrences are
///    reported, one run starting per e_1 instance);
///  * skip-till-next-match — irrelevant events are skipped; a single run
///    proceeds greedily and restarts after each complete match, yielding
///    the standard non-overlapping STNM match set.
class SaseEngine {
 public:
  /// The engine scans `log` on every query; the log must outlive it.
  explicit SaseEngine(const eventlog::EventLog* log) : log_(log) {}

  /// All matches of `pattern` under `policy` across the whole log.
  std::vector<SaseMatch> Detect(
      const std::vector<eventlog::ActivityId>& pattern,
      index::Policy policy) const;

  /// Match count only (still scans everything).
  size_t Count(const std::vector<eventlog::ActivityId>& pattern,
               index::Policy policy) const;

 private:
  void DetectInTrace(const eventlog::Trace& trace,
                     const std::vector<eventlog::ActivityId>& pattern,
                     index::Policy policy,
                     std::vector<SaseMatch>* out) const;

  const eventlog::EventLog* log_;
};

}  // namespace seqdet::baseline

#endif  // SEQDET_BASELINES_SASE_SASE_ENGINE_H_
