#include "baselines/sase/sase_engine.h"

#include <algorithm>
#include <limits>

namespace seqdet::baseline {

using eventlog::ActivityId;
using eventlog::Timestamp;
using eventlog::Trace;
using eventlog::TraceId;

void SaseEngine::DetectInTrace(const Trace& trace,
                               const std::vector<ActivityId>& pattern,
                               index::Policy policy,
                               std::vector<SaseMatch>* out) const {
  const auto& events = trace.events;
  const size_t n = events.size();
  const size_t p = pattern.size();
  if (p == 0 || n < p) return;

  if (policy == index::Policy::kStrictContiguity) {
    // One NFA run per e_1 instance; under strict contiguity a run either
    // advances on every event or dies, so runs are just window checks.
    for (size_t start = 0; start + p <= n; ++start) {
      bool ok = true;
      for (size_t i = 0; i < p; ++i) {
        if (events[start + i].activity != pattern[i]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      SaseMatch match;
      match.trace = trace.id;
      match.timestamps.reserve(p);
      for (size_t i = 0; i < p; ++i) {
        match.timestamps.push_back(events[start + i].ts);
      }
      out->push_back(std::move(match));
    }
    return;
  }

  // Skip-till-next-match: a single greedy run; after a complete match the
  // automaton resets and continues after the match's last event, so matches
  // never overlap.
  size_t state = 0;
  SaseMatch current;
  current.trace = trace.id;
  for (size_t i = 0; i < n; ++i) {
    if (events[i].activity != pattern[state]) continue;  // skip irrelevant
    current.timestamps.push_back(events[i].ts);
    if (++state == p) {
      out->push_back(current);
      current.timestamps.clear();
      state = 0;
    }
  }
}

std::vector<SaseMatch> SaseEngine::Detect(
    const std::vector<ActivityId>& pattern, index::Policy policy) const {
  std::vector<SaseMatch> out;
  for (const Trace& trace : log_->traces()) {
    DetectInTrace(trace, pattern, policy, &out);
  }
  return out;
}

size_t SaseEngine::Count(const std::vector<ActivityId>& pattern,
                         index::Policy policy) const {
  return Detect(pattern, policy).size();
}

// ---------------------------------------------------------------------------
// Extended operators (DESIGN.md §14) — the normative oracle implementation.
// Deliberately simple and log-only: per-trace scans, sorted vectors, and
// binary-searched nested-loop joins. The index-side compiler reaches the
// same match sets through postings, codecs, caches, and morsel-parallel
// joins; the differential harness compares the two byte-for-byte.
// ---------------------------------------------------------------------------

namespace {

using query::ExtendedPattern;
using query::PatternElement;

/// A partially built match: the timestamps assigned so far plus, per
/// completed positive element, the index of the LAST timestamp its (chain
/// of) events occupies. first-of follows as last_of[j-1] + 1.
struct Partial {
  TraceId trace = 0;
  std::vector<Timestamp> ts;
  std::vector<size_t> last_of;
};

bool PairLess(const SaseMatch& a, const SaseMatch& b) {
  if (a.trace != b.trace) return a.trace < b.trace;
  if (a.timestamps[0] != b.timestamps[0]) {
    return a.timestamps[0] < b.timestamps[0];
  }
  return a.timestamps[1] < b.timestamps[1];
}

/// Sorted-by-(trace, ts[1], ts[0]) order for the leading-Kleene left join.
bool PairLessBySecond(const SaseMatch& a, const SaseMatch& b) {
  if (a.trace != b.trace) return a.trace < b.trace;
  if (a.timestamps[1] != b.timestamps[1]) {
    return a.timestamps[1] < b.timestamps[1];
  }
  return a.timestamps[0] < b.timestamps[0];
}

/// Inclusive time bounds: a gap or span EQUAL to the bound passes.
bool GapOk(const ExtendedPattern& pattern, Timestamp prev, Timestamp next) {
  return !pattern.max_gap || next - prev <= *pattern.max_gap;
}
bool SpanOk(const ExtendedPattern& pattern, Timestamp first, Timestamp last) {
  return !pattern.max_span || last - first <= *pattern.max_span;
}

/// Extends every partial to the right with pairs whose first timestamp
/// equals the partial's last. `repeat` distinguishes a Kleene repetition
/// (the current element's chain grows) from a transition to a new element.
/// Monotone time bounds are applied eagerly — a violated gap or span can
/// never heal, and eager dropping is what keeps Kleene closures small.
std::vector<Partial> JoinRight(const ExtendedPattern& pattern,
                               const std::vector<Partial>& in,
                               const std::vector<SaseMatch>& pairs,
                               bool repeat) {
  std::vector<Partial> out;
  for (const Partial& m : in) {
    SaseMatch probe;
    probe.trace = m.trace;
    probe.timestamps = {m.ts.back(), std::numeric_limits<Timestamp>::min()};
    for (auto it = std::lower_bound(pairs.begin(), pairs.end(), probe,
                                    PairLess);
         it != pairs.end() && it->trace == m.trace &&
         it->timestamps[0] == m.ts.back();
         ++it) {
      const Timestamp next = it->timestamps[1];
      if (!GapOk(pattern, m.ts.back(), next) ||
          !SpanOk(pattern, m.ts.front(), next)) {
        continue;
      }
      Partial np = m;
      np.ts.push_back(next);
      if (repeat) {
        np.last_of.back() = np.ts.size() - 1;
      } else {
        np.last_of.push_back(np.ts.size() - 1);
      }
      out.push_back(std::move(np));
    }
  }
  return out;
}

/// Leading-Kleene left extension: prepends pairs whose SECOND timestamp
/// equals the partial's first. `pairs_by_second` must be sorted with
/// PairLessBySecond. All last-of indices shift by one.
std::vector<Partial> JoinLeft(const ExtendedPattern& pattern,
                              const std::vector<Partial>& in,
                              const std::vector<SaseMatch>& pairs_by_second) {
  std::vector<Partial> out;
  for (const Partial& m : in) {
    SaseMatch probe;
    probe.trace = m.trace;
    probe.timestamps = {std::numeric_limits<Timestamp>::min(), m.ts.front()};
    for (auto it = std::lower_bound(pairs_by_second.begin(),
                                    pairs_by_second.end(), probe,
                                    PairLessBySecond);
         it != pairs_by_second.end() && it->trace == m.trace &&
         it->timestamps[1] == m.ts.front();
         ++it) {
      const Timestamp prev = it->timestamps[0];
      if (!GapOk(pattern, prev, m.ts.front()) ||
          !SpanOk(pattern, prev, m.ts.back())) {
        continue;
      }
      Partial np;
      np.trace = m.trace;
      np.ts.reserve(m.ts.size() + 1);
      np.ts.push_back(prev);
      np.ts.insert(np.ts.end(), m.ts.begin(), m.ts.end());
      np.last_of.reserve(m.last_of.size());
      for (size_t idx : m.last_of) np.last_of.push_back(idx + 1);
      out.push_back(std::move(np));
    }
  }
  return out;
}

}  // namespace

Result<std::vector<SaseMatch>> SaseEngine::DetectExtended(
    const ExtendedPattern& pattern, index::Policy policy,
    SasePairCache* cache) const {
  SEQDET_RETURN_IF_ERROR(pattern.Validate());
  if (policy != index::Policy::kStrictContiguity &&
      policy != index::Policy::kSkipTillNextMatch) {
    return Status::Unsupported(
        "extended oracle supports SC and STNM policies only");
  }
  SasePairCache local;
  if (cache == nullptr) cache = &local;
  if (!cache->initialized) {
    cache->initialized = true;
    cache->policy = policy;
  } else if (cache->policy != policy) {
    return Status::InvalidArgument("SasePairCache policy mismatch");
  }

  // Union of NFA pair sets over the concrete cross product of two
  // alternative sets, canonically sorted and deduplicated (two concrete
  // pairs can emit the same (trace, ts, ts') when events share timestamps).
  auto pair_set = [&](const std::vector<ActivityId>& from,
                      const std::vector<ActivityId>& to) {
    std::vector<SaseMatch> out;
    for (ActivityId a : from) {
      for (ActivityId b : to) {
        auto key = std::make_pair(a, b);
        auto it = cache->pairs.find(key);
        if (it == cache->pairs.end()) {
          it = cache->pairs.emplace(key, Detect({a, b}, cache->policy)).first;
        }
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(out.begin(), out.end(), PairLess);
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  // Kleene repetitions chain through the element's self pairs under the
  // strict-progress rule: only pairs whose timestamp actually advances may
  // extend a chain, which is what bounds the closure.
  auto strict_self_set = [&](const std::vector<ActivityId>& alts) {
    std::vector<SaseMatch> pairs = pair_set(alts, alts);
    std::erase_if(pairs, [](const SaseMatch& p) {
      return p.timestamps[1] <= p.timestamps[0];
    });
    return pairs;
  };

  // Positive skeleton: element indices of the non-negated elements.
  std::vector<size_t> positives;
  for (size_t i = 0; i < pattern.elements.size(); ++i) {
    if (!pattern.elements[i].negated) positives.push_back(i);
  }
  auto elem = [&](size_t j) -> const PatternElement& {
    return pattern.elements[positives[j]];
  };

  std::vector<Partial> partials;
  if (positives.size() == 1) {
    // Single positive element: every matching event seeds a width-1 match.
    for (const Trace& trace : log_->traces()) {
      for (const eventlog::Event& ev : trace.events) {
        if (!elem(0).Matches(ev.activity)) continue;
        partials.push_back(Partial{trace.id, {ev.ts}, {0}});
      }
    }
  } else {
    // Seed with the first pair, then left-close a leading Kleene.
    for (const SaseMatch& p : pair_set(elem(0).alternatives,
                                       elem(1).alternatives)) {
      if (!GapOk(pattern, p.timestamps[0], p.timestamps[1]) ||
          !SpanOk(pattern, p.timestamps[0], p.timestamps[1])) {
        continue;
      }
      partials.push_back(
          Partial{p.trace, {p.timestamps[0], p.timestamps[1]}, {0, 1}});
    }
    if (elem(0).kleene) {
      std::vector<SaseMatch> self = strict_self_set(elem(0).alternatives);
      std::sort(self.begin(), self.end(), PairLessBySecond);
      std::vector<Partial> frontier = partials;
      while (!frontier.empty()) {
        frontier = JoinLeft(pattern, frontier, self);
        partials.insert(partials.end(), frontier.begin(), frontier.end());
      }
    }
  }

  // Close the remaining positives left to right; each Kleene element gets a
  // right closure before the next transition.
  for (size_t j = (positives.size() == 1 ? 0 : 1); j < positives.size();
       ++j) {
    // j == 1 was the seed pair; transitions start at j == 2. A leading
    // Kleene (j == 0 with >= 2 positives) was left-closed above.
    if (j >= 2) {
      partials = JoinRight(pattern, partials,
                           pair_set(elem(j - 1).alternatives,
                                    elem(j).alternatives),
                           /*repeat=*/false);
    }
    if (elem(j).kleene && !(j == 0 && positives.size() > 1)) {
      std::vector<SaseMatch> self = strict_self_set(elem(j).alternatives);
      std::vector<Partial> frontier = partials;
      std::vector<Partial> closed = std::move(partials);
      while (!frontier.empty()) {
        frontier = JoinRight(pattern, frontier, self, /*repeat=*/true);
        closed.insert(closed.end(), frontier.begin(), frontier.end());
      }
      partials = std::move(closed);
    }
  }

  // Negation post-verification: no matching event strictly inside the open
  // interval between the neighbouring positive matches (unbounded at the
  // pattern ends).
  std::vector<size_t> negations;
  for (size_t i = 0; i < pattern.elements.size(); ++i) {
    if (pattern.elements[i].negated) negations.push_back(i);
  }
  if (!negations.empty() && !partials.empty()) {
    std::erase_if(partials, [&](const Partial& m) {
      const Trace* trace = log_->FindTrace(m.trace);
      if (trace == nullptr) return true;
      for (size_t e : negations) {
        // Positive neighbours of the negation in element order.
        size_t left = positives.size();  // sentinel: none
        size_t right = positives.size();
        for (size_t j = 0; j < positives.size(); ++j) {
          if (positives[j] < e) left = j;
          if (positives[j] > e) {
            right = j;
            break;
          }
        }
        const bool has_left = left != positives.size();
        const bool has_right = right != positives.size();
        const Timestamp left_ts = has_left ? m.ts[m.last_of[left]] : 0;
        const Timestamp right_ts =
            has_right ? m.ts[right == 0 ? 0 : m.last_of[right - 1] + 1] : 0;
        for (const eventlog::Event& ev : trace->events) {
          if (!pattern.elements[e].Matches(ev.activity)) continue;
          if (has_left && ev.ts <= left_ts) continue;
          if (has_right && ev.ts >= right_ts) continue;
          return true;  // violating event found — drop the match
        }
      }
      return false;
    });
  }

  // Final time-bound filter (the eager drops above are an optimization; the
  // seed and single-event paths still need the checks), then canonical
  // order + dedup: different Kleene depth splits can assemble the same
  // timestamp vector.
  std::vector<SaseMatch> out;
  out.reserve(partials.size());
  for (const Partial& m : partials) {
    bool ok = SpanOk(pattern, m.ts.front(), m.ts.back());
    for (size_t i = 1; ok && i < m.ts.size(); ++i) {
      ok = GapOk(pattern, m.ts[i - 1], m.ts[i]);
    }
    if (!ok) continue;
    out.push_back(SaseMatch{m.trace, m.ts});
  }
  std::sort(out.begin(), out.end(), [](const SaseMatch& a, const SaseMatch& b) {
    if (a.trace != b.trace) return a.trace < b.trace;
    return a.timestamps < b.timestamps;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace seqdet::baseline
