#include "baselines/sase/sase_engine.h"

namespace seqdet::baseline {

using eventlog::ActivityId;
using eventlog::Timestamp;
using eventlog::Trace;

void SaseEngine::DetectInTrace(const Trace& trace,
                               const std::vector<ActivityId>& pattern,
                               index::Policy policy,
                               std::vector<SaseMatch>* out) const {
  const auto& events = trace.events;
  const size_t n = events.size();
  const size_t p = pattern.size();
  if (p == 0 || n < p) return;

  if (policy == index::Policy::kStrictContiguity) {
    // One NFA run per e_1 instance; under strict contiguity a run either
    // advances on every event or dies, so runs are just window checks.
    for (size_t start = 0; start + p <= n; ++start) {
      bool ok = true;
      for (size_t i = 0; i < p; ++i) {
        if (events[start + i].activity != pattern[i]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      SaseMatch match;
      match.trace = trace.id;
      match.timestamps.reserve(p);
      for (size_t i = 0; i < p; ++i) {
        match.timestamps.push_back(events[start + i].ts);
      }
      out->push_back(std::move(match));
    }
    return;
  }

  // Skip-till-next-match: a single greedy run; after a complete match the
  // automaton resets and continues after the match's last event, so matches
  // never overlap.
  size_t state = 0;
  SaseMatch current;
  current.trace = trace.id;
  for (size_t i = 0; i < n; ++i) {
    if (events[i].activity != pattern[state]) continue;  // skip irrelevant
    current.timestamps.push_back(events[i].ts);
    if (++state == p) {
      out->push_back(current);
      current.timestamps.clear();
      state = 0;
    }
  }
}

std::vector<SaseMatch> SaseEngine::Detect(
    const std::vector<ActivityId>& pattern, index::Policy policy) const {
  std::vector<SaseMatch> out;
  for (const Trace& trace : log_->traces()) {
    DetectInTrace(trace, pattern, policy, &out);
  }
  return out;
}

size_t SaseEngine::Count(const std::vector<ActivityId>& pattern,
                         index::Policy policy) const {
  return Detect(pattern, policy).size();
}

}  // namespace seqdet::baseline
