#ifndef SEQDET_DATAGEN_PROCESS_TREE_H_
#define SEQDET_DATAGEN_PROCESS_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "log/event.h"

namespace seqdet::datagen {

/// A block-structured process model, the substitute for PLG2.
///
/// PLG2 generates random business-process models and plays them out into
/// logs; we reproduce that with random process trees over the standard
/// operators:
///  * Activity — a leaf, emits one event;
///  * Sequence — children in order;
///  * Exclusive — exactly one child (XOR split);
///  * Parallel  — all children, interleaved randomly (AND split);
///  * Loop      — first child once, then with probability `repeat_p` the
///                redo child and the first child again (structured loop).
///
/// Simulating the tree yields an activity sequence; traces generated from
/// the same tree share the activity-correlation structure that makes logs
/// "process-like" (the property §5.2 of the paper contrasts with its random
/// datasets).
class ProcessTree {
 public:
  enum class Operator { kActivity, kSequence, kExclusive, kParallel, kLoop };

  struct Node {
    Operator op = Operator::kActivity;
    eventlog::ActivityId activity = 0;       // for kActivity
    double repeat_p = 0.3;                   // for kLoop
    std::vector<std::unique_ptr<Node>> children;
  };

  /// Parameters of random tree construction.
  struct Config {
    size_t num_activities = 20;
    size_t max_depth = 5;
    /// Children per operator node, drawn uniformly in [2, max_fanout].
    size_t max_fanout = 4;
    double loop_repeat_p = 0.3;
  };

  /// Builds a random tree that uses each of the `config.num_activities`
  /// activities exactly once as a leaf (ids 0..num_activities-1), so the
  /// alphabet size of generated logs is exact.
  static ProcessTree Random(const Config& config, Rng* rng);

  /// Plays out one case: returns the activity sequence of a fresh trace.
  std::vector<eventlog::ActivityId> Simulate(Rng* rng) const;

  /// Number of leaves (== configured activity count for Random()).
  size_t NumActivities() const { return num_activities_; }

  /// Depth of the tree (single activity == 1).
  size_t Depth() const;

 private:
  ProcessTree() = default;

  static std::unique_ptr<Node> BuildSubtree(
      std::vector<eventlog::ActivityId>* leaves, size_t depth,
      const Config& config, Rng* rng);
  static void SimulateNode(const Node& node,
                           std::vector<eventlog::ActivityId>* out, Rng* rng);
  static size_t NodeDepth(const Node& node);

  std::unique_ptr<Node> root_;
  size_t num_activities_ = 0;
};

}  // namespace seqdet::datagen

#endif  // SEQDET_DATAGEN_PROCESS_TREE_H_
