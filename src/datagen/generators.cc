#include "datagen/generators.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace seqdet::datagen {

using eventlog::ActivityId;
using eventlog::Event;
using eventlog::EventLog;
using eventlog::Timestamp;
using eventlog::Trace;
using eventlog::TraceId;

namespace {

/// Interns ids "act_0".."act_{n-1}" so generated ids match dictionary ids.
void InternActivityNames(EventLog* log, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    log->dictionary().Intern(StringPrintf("act_%zu", i));
  }
}

void AppendTrace(EventLog* log, TraceId id,
                 const std::vector<ActivityId>& sequence, int64_t mean_gap,
                 Rng* rng) {
  Trace trace;
  trace.id = id;
  trace.events.reserve(sequence.size());
  // Spread trace start times out so different traces overlap in time, like
  // a real log.
  Timestamp ts = static_cast<Timestamp>(rng->NextBounded(1u << 20));
  for (ActivityId a : sequence) {
    ts += rng->NextInRange(1, std::max<int64_t>(1, 2 * mean_gap - 1));
    trace.events.push_back(Event{a, ts});
  }
  log->AddTrace(std::move(trace));
}

}  // namespace

size_t ScaledTraces(size_t traces, double scale) {
  if (scale >= 1.0) return traces;
  double scaled = static_cast<double>(traces) * scale;
  return std::max<size_t>(1, static_cast<size_t>(scaled));
}

EventLog GenerateProcessLog(const ProcessLogConfig& config) {
  Rng rng(config.seed);
  EventLog log;
  InternActivityNames(&log, config.num_activities);
  ProcessTree::Config tree_config = config.tree;
  tree_config.num_activities = config.num_activities;
  ProcessTree tree = ProcessTree::Random(tree_config, &rng);
  for (size_t t = 0; t < config.num_traces; ++t) {
    std::vector<ActivityId> sequence = tree.Simulate(&rng);
    AppendTrace(&log, static_cast<TraceId>(t), sequence, config.mean_gap,
                &rng);
  }
  log.SortAllTraces();
  return log;
}

EventLog GenerateRandomLog(const RandomLogConfig& config) {
  Rng rng(config.seed);
  EventLog log;
  InternActivityNames(&log, config.num_activities);
  ZipfSampler zipf(config.num_activities,
                   config.activity_skew > 0 ? config.activity_skew : 1.0,
                   config.seed ^ 0x5eedULL);
  for (size_t t = 0; t < config.num_traces; ++t) {
    size_t len = 1 + rng.NextBounded(config.max_events_per_trace);
    std::vector<ActivityId> sequence;
    sequence.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      size_t a = config.activity_skew > 0
                     ? zipf.Next()
                     : rng.NextBounded(config.num_activities);
      sequence.push_back(static_cast<ActivityId>(a));
    }
    AppendTrace(&log, static_cast<TraceId>(t), sequence, config.mean_gap,
                &rng);
  }
  log.SortAllTraces();
  return log;
}

BpiProfile Bpi2013Profile() {
  return BpiProfile{"bpi_2013", 7554, 4, 8.6, 1, 123, 2013};
}

BpiProfile Bpi2017Profile() {
  return BpiProfile{"bpi_2017", 31509, 26, 38.15, 10, 180, 2017};
}

BpiProfile Bpi2020Profile() {
  return BpiProfile{"bpi_2020", 6886, 19, 5.3, 1, 20, 2020};
}

EventLog GenerateBpiLikeLog(const BpiProfile& profile) {
  Rng rng(profile.seed);
  EventLog log;
  InternActivityNames(&log, profile.num_activities);
  const size_t l = std::max<size_t>(1, profile.num_activities);

  // First-order Markov chain over activities: every activity gets 2..4
  // preferred successors carrying most of the probability mass, plus a
  // small uniform tail. Start states are skewed toward activity 0 (real
  // logs open with a registration/submission step).
  const size_t kSuccessors = std::min<size_t>(4, l);
  std::vector<std::vector<ActivityId>> preferred(l);
  for (size_t a = 0; a < l; ++a) {
    for (size_t s = 0; s < kSuccessors; ++s) {
      preferred[a].push_back(
          static_cast<ActivityId>(rng.NextBounded(l)));
    }
  }

  // Trace lengths: log-normal calibrated so exp(mu) ~ mean, clamped to
  // [min, max]. sigma grows with the max/mean spread so heavy tails
  // (bpi_2013: mean 8.6, max 123) are reproduced.
  const double mean = std::max(1.0, profile.mean_events_per_trace);
  const double spread =
      std::log(std::max(2.0, static_cast<double>(profile.max_events_per_trace) /
                                 mean));
  const double sigma = std::max(0.25, spread / 3.0);
  const double mu = std::log(mean) - sigma * sigma / 2.0;

  for (size_t t = 0; t < profile.num_traces; ++t) {
    double draw = std::exp(rng.NextGaussian(mu, sigma));
    size_t len = static_cast<size_t>(std::llround(draw));
    len = std::clamp<size_t>(len, profile.min_events_per_trace,
                             profile.max_events_per_trace);

    std::vector<ActivityId> sequence;
    sequence.reserve(len);
    ActivityId current =
        rng.NextBool(0.8) ? 0 : static_cast<ActivityId>(rng.NextBounded(l));
    sequence.push_back(current);
    for (size_t i = 1; i < len; ++i) {
      if (rng.NextBool(0.85)) {
        const auto& succ = preferred[current];
        current = succ[rng.NextBounded(succ.size())];
      } else {
        current = static_cast<ActivityId>(rng.NextBounded(l));
      }
      sequence.push_back(current);
    }
    AppendTrace(&log, static_cast<TraceId>(t), sequence, /*mean_gap=*/3600,
                &rng);
  }
  log.SortAllTraces();
  return log;
}

}  // namespace seqdet::datagen
