#ifndef SEQDET_DATAGEN_PATTERN_SAMPLER_H_
#define SEQDET_DATAGEN_PATTERN_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "log/event_log.h"

namespace seqdet::datagen {

/// Samples query patterns for the benchmark workloads (§5.4 queries "100
/// random patterns" per experiment).
class PatternSampler {
 public:
  PatternSampler(const eventlog::EventLog* log, uint64_t seed);

  /// A pattern that certainly occurs under SC: a contiguous slice of a
  /// random trace with >= `length` events.
  std::vector<eventlog::ActivityId> SampleContiguous(size_t length);

  /// A pattern that certainly occurs under STNM: `length` events at random
  /// increasing positions of a random trace.
  std::vector<eventlog::ActivityId> SampleSubsequence(size_t length);

  /// A uniformly random activity sequence (may or may not occur).
  std::vector<eventlog::ActivityId> SampleRandom(size_t length);

  /// Batch helpers used by the bench harnesses.
  std::vector<std::vector<eventlog::ActivityId>> SampleManySubsequences(
      size_t count, size_t length);
  std::vector<std::vector<eventlog::ActivityId>> SampleManyContiguous(
      size_t count, size_t length);

 private:
  const eventlog::Trace* PickTraceWithAtLeast(size_t length);

  const eventlog::EventLog* log_;
  Rng rng_;
  std::vector<size_t> long_trace_index_;  // indices of traces, sorted by size
};

}  // namespace seqdet::datagen

#endif  // SEQDET_DATAGEN_PATTERN_SAMPLER_H_
