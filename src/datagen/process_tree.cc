#include "datagen/process_tree.h"

#include <algorithm>

namespace seqdet::datagen {

using eventlog::ActivityId;

ProcessTree ProcessTree::Random(const Config& config, Rng* rng) {
  ProcessTree tree;
  tree.num_activities_ = std::max<size_t>(1, config.num_activities);
  std::vector<ActivityId> leaves(tree.num_activities_);
  for (size_t i = 0; i < leaves.size(); ++i) {
    leaves[i] = static_cast<ActivityId>(i);
  }
  rng->Shuffle(&leaves);
  tree.root_ = BuildSubtree(&leaves, 1, config, rng);
  return tree;
}

std::unique_ptr<ProcessTree::Node> ProcessTree::BuildSubtree(
    std::vector<ActivityId>* leaves, size_t depth, const Config& config,
    Rng* rng) {
  auto node = std::make_unique<Node>();
  if (leaves->size() == 1 || depth >= config.max_depth) {
    if (leaves->size() == 1) {
      node->op = Operator::kActivity;
      node->activity = leaves->front();
      return node;
    }
    // Depth budget exhausted but several activities remain: flat sequence.
    node->op = Operator::kSequence;
    for (ActivityId a : *leaves) {
      auto leaf = std::make_unique<Node>();
      leaf->op = Operator::kActivity;
      leaf->activity = a;
      node->children.push_back(std::move(leaf));
    }
    return node;
  }

  // Pick an operator; sequences dominate real process models, so weight
  // them higher; loops are rarest.
  double roll = rng->NextDouble();
  if (roll < 0.45) {
    node->op = Operator::kSequence;
  } else if (roll < 0.70) {
    node->op = Operator::kExclusive;
  } else if (roll < 0.90) {
    node->op = Operator::kParallel;
  } else {
    node->op = Operator::kLoop;
    node->repeat_p = config.loop_repeat_p;
  }

  size_t max_fanout = std::max<size_t>(2, config.max_fanout);
  size_t fanout = 2 + rng->NextBounded(max_fanout - 1);
  fanout = std::min(fanout, leaves->size());
  if (node->op == Operator::kLoop) fanout = 2;  // body + redo part

  // Partition the remaining activities across children (each child gets at
  // least one so every activity stays reachable... except under kExclusive,
  // where only one branch executes per case; that is faithful to XOR
  // splits, some activities are simply rarer).
  std::vector<size_t> sizes(fanout, 1);
  size_t remaining = leaves->size() - fanout;
  for (size_t i = 0; i < remaining; ++i) {
    sizes[rng->NextBounded(fanout)]++;
  }
  size_t offset = 0;
  for (size_t c = 0; c < fanout; ++c) {
    std::vector<ActivityId> part(leaves->begin() + offset,
                                 leaves->begin() + offset + sizes[c]);
    offset += sizes[c];
    node->children.push_back(BuildSubtree(&part, depth + 1, config, rng));
  }
  return node;
}

std::vector<ActivityId> ProcessTree::Simulate(Rng* rng) const {
  std::vector<ActivityId> out;
  SimulateNode(*root_, &out, rng);
  return out;
}

void ProcessTree::SimulateNode(const Node& node, std::vector<ActivityId>* out,
                               Rng* rng) {
  switch (node.op) {
    case Operator::kActivity:
      out->push_back(node.activity);
      return;
    case Operator::kSequence:
      for (const auto& child : node.children) {
        SimulateNode(*child, out, rng);
      }
      return;
    case Operator::kExclusive: {
      size_t pick = rng->NextBounded(node.children.size());
      SimulateNode(*node.children[pick], out, rng);
      return;
    }
    case Operator::kParallel: {
      // Simulate each child into its own buffer, then interleave by random
      // merge, preserving per-child order (true AND-split semantics).
      std::vector<std::vector<ActivityId>> buffers;
      buffers.reserve(node.children.size());
      for (const auto& child : node.children) {
        std::vector<ActivityId> buf;
        SimulateNode(*child, &buf, rng);
        buffers.push_back(std::move(buf));
      }
      std::vector<size_t> pos(buffers.size(), 0);
      size_t total = 0;
      for (const auto& b : buffers) total += b.size();
      for (size_t emitted = 0; emitted < total; ++emitted) {
        // Choose among children with remaining events, weighted by how many
        // they still have (keeps interleaving fair).
        size_t remaining_total = 0;
        for (size_t i = 0; i < buffers.size(); ++i) {
          remaining_total += buffers[i].size() - pos[i];
        }
        size_t ticket = rng->NextBounded(remaining_total);
        for (size_t i = 0; i < buffers.size(); ++i) {
          size_t rem = buffers[i].size() - pos[i];
          if (ticket < rem) {
            out->push_back(buffers[i][pos[i]++]);
            break;
          }
          ticket -= rem;
        }
      }
      return;
    }
    case Operator::kLoop: {
      SimulateNode(*node.children[0], out, rng);
      // Cap iterations so pathological repeat_p cannot run away.
      for (int iter = 0; iter < 50 && rng->NextBool(node.repeat_p); ++iter) {
        if (node.children.size() > 1) {
          SimulateNode(*node.children[1], out, rng);
        }
        SimulateNode(*node.children[0], out, rng);
      }
      return;
    }
  }
}

size_t ProcessTree::NodeDepth(const Node& node) {
  size_t best = 0;
  for (const auto& child : node.children) {
    best = std::max(best, NodeDepth(*child));
  }
  return best + 1;
}

size_t ProcessTree::Depth() const { return root_ ? NodeDepth(*root_) : 0; }

}  // namespace seqdet::datagen
