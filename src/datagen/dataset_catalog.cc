#include "datagen/dataset_catalog.h"

#include "datagen/generators.h"

namespace seqdet::datagen {

namespace {

struct ProcessSpec {
  const char* name;
  size_t traces;
  size_t activities;
  uint64_t seed;
  size_t tree_depth;  // deeper trees -> longer traces ("max" vs "min")
};

// Trace/activity counts from Table 4 of the paper. The med/max logs have
// many events and unique activities per trace (deep trees, many parallel
// blocks); min_10000 is shallow with a 15-activity alphabet.
constexpr ProcessSpec kProcessSpecs[] = {
    {"max_100", 100, 150, 101, 7},
    {"max_500", 500, 159, 102, 7},
    {"max_1000", 1000, 160, 103, 7},
    {"med_5000", 5000, 95, 104, 6},
    {"max_5000", 5000, 160, 105, 7},
    {"max_10000", 10000, 160, 106, 7},
    {"min_10000", 10000, 15, 107, 4},
};

}  // namespace

Result<eventlog::EventLog> LoadDataset(const std::string& name, double scale) {
  if (scale <= 0 || scale > 1) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  for (const ProcessSpec& spec : kProcessSpecs) {
    if (name == spec.name) {
      ProcessLogConfig config;
      config.num_traces = ScaledTraces(spec.traces, scale);
      config.num_activities = spec.activities;
      config.seed = spec.seed;
      config.tree.max_depth = spec.tree_depth;
      return GenerateProcessLog(config);
    }
  }
  BpiProfile profile;
  if (name == "bpi_2013") {
    profile = Bpi2013Profile();
  } else if (name == "bpi_2017") {
    profile = Bpi2017Profile();
  } else if (name == "bpi_2020") {
    profile = Bpi2020Profile();
  } else {
    return Status::NotFound("unknown dataset: " + name);
  }
  profile.num_traces = ScaledTraces(profile.num_traces, scale);
  return GenerateBpiLikeLog(profile);
}

std::vector<std::string> SyntheticDatasetNames() {
  std::vector<std::string> names;
  for (const ProcessSpec& spec : kProcessSpecs) names.push_back(spec.name);
  return names;
}

std::vector<std::string> BpiDatasetNames() {
  return {"bpi_2013", "bpi_2020", "bpi_2017"};
}

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names = SyntheticDatasetNames();
  for (auto& n : BpiDatasetNames()) names.push_back(n);
  return names;
}

}  // namespace seqdet::datagen
