#ifndef SEQDET_DATAGEN_DATASET_CATALOG_H_
#define SEQDET_DATAGEN_DATASET_CATALOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "log/event_log.h"

namespace seqdet::datagen {

/// The evaluation datasets of the paper's Table 4, by name:
/// `max_100, max_500, max_1000, med_5000, max_5000, max_10000, min_10000`
/// (PLG2-like process logs with 150/159/160/95/160/160/15 activities) and
/// `bpi_2013, bpi_2020, bpi_2017` (profile-matched simulations of the BPI
/// Challenge logs).
///
/// Generation is deterministic per name. `scale` in (0, 1] shrinks the
/// trace count proportionally so benchmarks can smoke-test quickly;
/// scale=1 reproduces the paper's trace counts.
Result<eventlog::EventLog> LoadDataset(const std::string& name,
                                       double scale = 1.0);

/// All Table 4 dataset names, smallest-first as the paper lists them.
std::vector<std::string> DatasetNames();

/// The process-like (non-BPI) subset.
std::vector<std::string> SyntheticDatasetNames();

/// The BPI-like subset.
std::vector<std::string> BpiDatasetNames();

}  // namespace seqdet::datagen

#endif  // SEQDET_DATAGEN_DATASET_CATALOG_H_
