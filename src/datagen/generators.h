#ifndef SEQDET_DATAGEN_GENERATORS_H_
#define SEQDET_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/process_tree.h"
#include "log/event_log.h"

namespace seqdet::datagen {

/// Generates a process-like event log by playing out a random process tree
/// (the substitute for the paper's PLG2-generated logs of Table 4).
struct ProcessLogConfig {
  size_t num_traces = 1000;
  size_t num_activities = 20;
  uint64_t seed = 42;
  /// Mean gap between consecutive events, in timestamp units; gaps are
  /// drawn uniformly in [1, 2 * mean_gap - 1] so durations vary.
  int64_t mean_gap = 50;
  ProcessTree::Config tree;
};

eventlog::EventLog GenerateProcessLog(const ProcessLogConfig& config);

/// Generates a "random" log: activities drawn independently, no correlation
/// between events — the paper's random datasets of §5.2, which stress the
/// STNM pair extractors far harder than process-like logs.
struct RandomLogConfig {
  size_t num_traces = 1000;
  /// Trace lengths are uniform in [1, max_events_per_trace].
  size_t max_events_per_trace = 100;
  size_t num_activities = 50;
  uint64_t seed = 42;
  int64_t mean_gap = 50;
  /// Zipf exponent for activity frequencies; 0 = uniform.
  double activity_skew = 0.0;
};

eventlog::EventLog GenerateRandomLog(const RandomLogConfig& config);

/// Profile of a real BPI Challenge log: the summary statistics the paper
/// publishes (Table 4 / §5.1). The simulator produces a process-like log
/// matching these numbers, substituting for the non-redistributable
/// originals.
struct BpiProfile {
  std::string name;
  size_t num_traces;
  size_t num_activities;
  double mean_events_per_trace;
  size_t min_events_per_trace;
  size_t max_events_per_trace;
  uint64_t seed;
};

/// Profiles published in the paper.
BpiProfile Bpi2013Profile();  // 7,554 traces,  4 acts, mean 8.6,  1..123
BpiProfile Bpi2017Profile();  // 31,509 traces, 26 acts, mean 38.15, 10..180
BpiProfile Bpi2020Profile();  // 6,886 traces, 19 acts, mean 5.3,  1..20

/// Generates a log matching `profile`: trace lengths from a clamped
/// log-normal fitted to (mean, min, max), activities from a first-order
/// Markov chain with skewed transitions and dedicated start/end activities
/// (real incident/loan logs have strongly preferred activity successions).
eventlog::EventLog GenerateBpiLikeLog(const BpiProfile& profile);

/// Scales the trace count of any generator config by `scale` (benches use
/// 0 < scale <= 1 to shrink paper-sized datasets to smoke-test sizes).
size_t ScaledTraces(size_t traces, double scale);

}  // namespace seqdet::datagen

#endif  // SEQDET_DATAGEN_GENERATORS_H_
