#include "datagen/pattern_sampler.h"

#include <algorithm>

namespace seqdet::datagen {

using eventlog::ActivityId;
using eventlog::Trace;

PatternSampler::PatternSampler(const eventlog::EventLog* log, uint64_t seed)
    : log_(log), rng_(seed) {
  long_trace_index_.resize(log->num_traces());
  for (size_t i = 0; i < long_trace_index_.size(); ++i) {
    long_trace_index_[i] = i;
  }
  std::sort(long_trace_index_.begin(), long_trace_index_.end(),
            [log](size_t a, size_t b) {
              return log->traces()[a].size() < log->traces()[b].size();
            });
}

const Trace* PatternSampler::PickTraceWithAtLeast(size_t length) {
  // Binary search for the first trace with size >= length, then pick
  // uniformly among the suffix.
  auto it = std::lower_bound(
      long_trace_index_.begin(), long_trace_index_.end(), length,
      [this](size_t idx, size_t len) {
        return log_->traces()[idx].size() < len;
      });
  if (it == long_trace_index_.end()) return nullptr;
  size_t span = static_cast<size_t>(long_trace_index_.end() - it);
  size_t pick = static_cast<size_t>(rng_.NextBounded(span));
  return &log_->traces()[*(it + pick)];
}

std::vector<ActivityId> PatternSampler::SampleContiguous(size_t length) {
  const Trace* trace = PickTraceWithAtLeast(length);
  if (trace == nullptr) return SampleRandom(length);
  size_t start = rng_.NextBounded(trace->size() - length + 1);
  std::vector<ActivityId> pattern;
  pattern.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    pattern.push_back(trace->events[start + i].activity);
  }
  return pattern;
}

std::vector<ActivityId> PatternSampler::SampleSubsequence(size_t length) {
  const Trace* trace = PickTraceWithAtLeast(length);
  if (trace == nullptr) return SampleRandom(length);
  // Reservoir-free: draw `length` distinct positions, then sort.
  std::vector<size_t> positions;
  positions.reserve(length);
  size_t n = trace->size();
  // Floyd's algorithm for distinct samples.
  for (size_t j = n - length; j < n; ++j) {
    size_t t = rng_.NextBounded(j + 1);
    if (std::find(positions.begin(), positions.end(), t) == positions.end()) {
      positions.push_back(t);
    } else {
      positions.push_back(j);
    }
  }
  std::sort(positions.begin(), positions.end());
  std::vector<ActivityId> pattern;
  pattern.reserve(length);
  for (size_t p : positions) pattern.push_back(trace->events[p].activity);
  return pattern;
}

std::vector<ActivityId> PatternSampler::SampleRandom(size_t length) {
  std::vector<ActivityId> pattern;
  pattern.reserve(length);
  size_t l = std::max<size_t>(1, log_->num_activities());
  for (size_t i = 0; i < length; ++i) {
    pattern.push_back(static_cast<ActivityId>(rng_.NextBounded(l)));
  }
  return pattern;
}

std::vector<std::vector<ActivityId>> PatternSampler::SampleManySubsequences(
    size_t count, size_t length) {
  std::vector<std::vector<ActivityId>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(SampleSubsequence(length));
  return out;
}

std::vector<std::vector<ActivityId>> PatternSampler::SampleManyContiguous(
    size_t count, size_t length) {
  std::vector<std::vector<ActivityId>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(SampleContiguous(length));
  return out;
}

}  // namespace seqdet::datagen
