#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace seqdet {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
}

Status FailThrough() {
  SEQDET_RETURN_IF_ERROR(Status::IOError("disk gone"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailThrough().IsIOError());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoublePositive(int v) {
  SEQDET_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_EQ(r.value_or(-1), 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*DoublePositive(5), 10);
  EXPECT_TRUE(DoublePositive(0).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------------------
// Coding
// ---------------------------------------------------------------------------

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed32(&buf, 0xffffffffu);
  std::string_view cursor(buf);
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&cursor, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&cursor, &v));
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(GetFixed32(&cursor, &v));
  EXPECT_EQ(v, 0xffffffffu);
  EXPECT_TRUE(cursor.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefULL);
  std::string_view cursor(buf);
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&cursor, &v));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const std::vector<uint64_t> values = {
      0,      1,       127,        128,         16383,
      16384,  (1u << 21) - 1, 1u << 21, 0xffffffffULL,
      1ULL << 32, 1ULL << 63, ~0ULL};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  std::string_view cursor(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&cursor, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(cursor.empty());
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string buf;
  for (uint32_t v : {0u, 1u, 300u, 70000u, ~0u}) PutVarint32(&buf, v);
  std::string_view cursor(buf);
  for (uint32_t v : {0u, 1u, 300u, 70000u, ~0u}) {
    uint32_t got;
    ASSERT_TRUE(GetVarint32(&cursor, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, VarintTruncationDetected) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  std::string_view cursor(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&cursor, &v));
}

TEST(CodingTest, ZigZagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-123456},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    std::string buf;
    PutVarint64SignedZigZag(&buf, v);
    std::string_view cursor(buf);
    int64_t got;
    ASSERT_TRUE(GetVarint64SignedZigZag(&cursor, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view cursor(buf), out;
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &out));
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &out));
  EXPECT_EQ(out, "");
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &out));
  EXPECT_EQ(out.size(), 1000u);
}

TEST(CodingTest, KeyEncodingPreservesOrder) {
  // memcmp order of encoded keys must equal numeric order.
  std::vector<uint64_t> values = {0, 1, 255, 256, 65535, 1ULL << 32, ~0ULL};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    std::string a, b;
    PutKeyU64(&a, values[i]);
    PutKeyU64(&b, values[i + 1]);
    EXPECT_LT(a, b) << values[i] << " vs " << values[i + 1];
  }
  for (uint32_t i = 0; i < 1000; i += 7) {
    std::string a, b;
    PutKeyU32(&a, i);
    PutKeyU32(&b, i + 1);
    EXPECT_LT(a, b);
  }
}

TEST(CodingTest, KeyEncodingRoundTrip) {
  std::string buf;
  PutKeyU32(&buf, 0xcafebabeu);
  PutKeyU64(&buf, 0x0123456789abcdefULL);
  std::string_view cursor(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetKeyU32(&cursor, &v32));
  ASSERT_TRUE(GetKeyU64(&cursor, &v64));
  EXPECT_EQ(v32, 0xcafebabeu);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
}

TEST(CodingTest, DoubleRoundTrip) {
  for (double v : {0.0, -1.5, 3.14159, 1e300, -1e-300}) {
    std::string buf;
    PutDouble(&buf, v);
    std::string_view cursor(buf);
    double got;
    ASSERT_TRUE(GetDouble(&cursor, &got));
    EXPECT_EQ(got, v);
  }
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // The canonical IEEE CRC-32 of "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(""), 0u); }

TEST(Crc32Test, DetectsBitFlip) {
  std::string data = "the quick brown fox";
  uint32_t clean = Crc32(data);
  data[3] ^= 1;
  EXPECT_NE(Crc32(data), clean);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks) {
  ZipfSampler zipf(100, 1.0, 42);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Next()]++;
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(ZipfSamplerTest, CoversSupport) {
  ZipfSampler zipf(5, 0.5, 43);
  std::set<size_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(zipf.Next());
  EXPECT_EQ(seen.size(), 5u);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringsTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
}

TEST(StringsTest, ParseInt64) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64(" -42 ", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
}

TEST(StringsTest, ParseDouble) {
  double v;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_FALSE(ParseDouble("3.5q", &v));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_NEAR(h.stddev(), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 5.0);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_FALSE(h.ToAscii("empty").empty());
}

TEST(HistogramTest, BucketsSumToCount) {
  Histogram h;
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) h.Add(rng.NextDouble() * 100);
  auto buckets = h.Buckets(10);
  size_t total = 0;
  for (size_t b : buckets) total += b;
  EXPECT_EQ(total, 1000u);
}

TEST(HistogramTest, SingleValueBuckets) {
  Histogram h;
  h.Add(7);
  h.Add(7);
  auto buckets = h.Buckets(4);
  EXPECT_EQ(buckets[0], 2u);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, ManyTasksDrain) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&done] { done.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 500);
}

// Regression: a ParallelFor issued from one of the pool's own workers must
// run inline. On a 1-thread pool the old submit-and-wait behavior was a
// guaranteed deadlock — the sole worker blocked on futures only it could
// serve — so this test hanging (it runs under the suite timeout) is the
// failure mode.
TEST(ThreadPoolTest, NestedParallelForFromWorkerRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> inner_sum{0};
  auto outer = pool.Submit([&] {
    EXPECT_TRUE(pool.OnWorkerThread());
    pool.ParallelFor(64, [&](size_t i) {
      inner_sum.fetch_add(static_cast<int>(i));
    });
  });
  outer.get();
  EXPECT_EQ(inner_sum.load(), 2016);
  EXPECT_GE(pool.stats().inline_runs, 1u);
}

// Deeper nesting (a parallel batch whose queries fan out their own joins)
// must also complete, and every level of it inline past the first.
TEST(ThreadPoolTest, DoublyNestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      pool.ParallelFor(4, [&](size_t) { leaf.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaf.load(), 64);
}

TEST(ThreadPoolTest, OnWorkerThreadDistinguishesPools) {
  ThreadPool a(1);
  ThreadPool b(1);
  EXPECT_FALSE(a.OnWorkerThread());
  auto f = a.Submit([&] {
    EXPECT_TRUE(a.OnWorkerThread());
    EXPECT_FALSE(b.OnWorkerThread());
  });
  f.get();
}

TEST(ThreadPoolTest, StatsCountExecutedTasksAndPeakQueue) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([] {}));
  }
  for (auto& f : futures) f.get();
  ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_EQ(stats.tasks_executed, 100u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // 100 tasks against 2 workers must have queued at some point; the peak
  // gauge is monotone so any positive value proves it was maintained.
  EXPECT_GE(stats.peak_queue_depth, 1u);
}

}  // namespace
}  // namespace seqdet
