// Concurrency stress for the morsel-driven query engine: several threads
// drive *parallel* Detect / DetectBatch / ContinueHybrid through one shared
// intra-query pool while a writer appends trace batches and the background
// maintenance service folds aggressively — all against one in-memory
// index. Run it under TSan (tools/check_tsan.sh includes this binary) to
// certify that the parallel posting prefetch, the morselized joins, and
// the concurrent candidate verification stay race-free against folds and
// writes; the final assertions certify that after quiescing, the parallel
// engine is byte-identical to the serial one and the index is consistent.
//
// Duration scales with SEQDET_STRESS_SECONDS (default 2).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "index/maintenance.h"
#include "index/sequence_index.h"
#include "query/pattern.h"
#include "query/query_processor.h"
#include "storage/database.h"

namespace seqdet {
namespace {

using eventlog::ActivityId;
using eventlog::EventLog;
using eventlog::Timestamp;
using index::IndexOptions;
using index::Policy;
using index::SequenceIndex;
using query::Pattern;
using query::PatternMatch;
using query::QueryProcessor;

constexpr size_t kActivities = 8;

int StressSeconds() {
  if (const char* env = std::getenv("SEQDET_STRESS_SECONDS")) {
    return std::atoi(env);
  }
  return 2;
}

/// Morsel thresholds small enough that the stress log's posting lists
/// split into many morsels on every join.
query::ParallelExecutionOptions TinyMorsels() {
  query::ParallelExecutionOptions par;
  par.morsel_target_postings = 32;
  par.min_parallel_join_input = 1;
  par.min_parallel_candidates = 1;
  return par;
}

EventLog MakeBatch(Rng* rng, uint64_t first_trace, size_t traces) {
  EventLog batch;
  for (size_t t = 0; t < traces; ++t) {
    uint64_t trace = first_trace + t;
    size_t len = static_cast<size_t>(rng->NextInRange(5, 30));
    Timestamp ts = 0;
    for (size_t i = 0; i < len; ++i) {
      ts += rng->NextInRange(1, 9);
      batch.Append(trace, "a" + std::to_string(rng->NextBounded(kActivities)),
                   ts);
    }
  }
  batch.SortAllTraces();
  return batch;
}

Pattern RandomPattern(Rng* rng) {
  size_t len = static_cast<size_t>(rng->NextInRange(2, 4));
  std::vector<ActivityId> p(len);
  for (auto& a : p) a = static_cast<ActivityId>(rng->NextBounded(kActivities));
  return Pattern(p);
}

TEST(ParallelQueryStressTest, ParallelQueriesVsUpdatesAndFolds) {
  storage::DbOptions db_options;
  db_options.table.in_memory = true;
  db_options.table.use_wal = false;
  auto db = std::move(storage::Database::Open("", db_options)).value();

  IndexOptions options;
  options.policy = Policy::kSkipTillNextMatch;
  options.num_threads = 2;
  options.cache_bytes = 1u << 20;
  options.posting_block_bytes = 128;
  // Aggressive thresholds: fold nearly every append so folds overlap the
  // parallel joins and prefetches as much as possible.
  options.maintenance.auto_fold = true;
  options.maintenance.check_interval_ms = 5;
  options.maintenance.min_pending_bytes = 1;
  options.maintenance.min_pending_ops = 1;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  ASSERT_NE(index->maintenance(), nullptr);

  // Seed batch so every activity is interned before readers start.
  Rng writer_rng(7);
  uint64_t next_trace = 0;
  {
    EventLog batch = MakeBatch(&writer_rng, next_trace, 48);
    next_trace += 48;
    ASSERT_TRUE(index->Update(batch).ok());
  }
  ASSERT_EQ(index->dictionary().size(), kActivities);

  // One shared intra-query pool, as in serving: every reader's prefetch,
  // morsel, and verification tasks interleave on the same workers.
  ThreadPool query_pool(4);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches_written{0};
  std::atomic<uint64_t> detects_done{0};
  std::atomic<uint64_t> continues_done{0};

  // Single writer: Update() has single-writer semantics; concurrency with
  // folds and parallel reads is what this test certifies.
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EventLog batch = MakeBatch(&writer_rng, next_trace, 8);
      next_trace += 8;
      auto stats = index->Update(batch);
      ASSERT_TRUE(stats.ok()) << stats.status();
      batches_written.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Detect readers: single parallel queries and member-pool batches (the
  // nested fan-out runs inline on the pool's own workers). Results cannot
  // be compared to an oracle mid-run (the log grows concurrently) —
  // correctness here is "no crash, no error, no torn reads", with TSan
  // watching.
  auto detect_reader = [&](uint64_t seed) {
    Rng rng(seed);
    QueryProcessor qp(index.get(), &query_pool, TinyMorsels());
    while (!stop.load(std::memory_order_relaxed)) {
      if (rng.NextBool()) {
        auto matches = qp.Detect(RandomPattern(&rng));
        ASSERT_TRUE(matches.ok()) << matches.status();
      } else {
        std::vector<Pattern> patterns;
        for (int i = 0; i < 4; ++i) patterns.push_back(RandomPattern(&rng));
        auto results = qp.DetectBatch(patterns);
        ASSERT_TRUE(results.ok()) << results.status();
      }
      detects_done.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread detect1(detect_reader, 11), detect2(detect_reader, 13);

  // Continuation reader: ContinueHybrid fans its topK verification out on
  // the same shared pool the detect readers use.
  std::thread continuer([&] {
    Rng rng(17);
    QueryProcessor qp(index.get(), &query_pool, TinyMorsels());
    while (!stop.load(std::memory_order_relaxed)) {
      auto proposals = qp.ContinueHybrid(RandomPattern(&rng), 4);
      ASSERT_TRUE(proposals.ok()) << proposals.status();
      continues_done.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(StressSeconds()));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  detect1.join();
  detect2.join();
  continuer.join();

  EXPECT_GT(batches_written.load(), 0u);
  EXPECT_GT(detects_done.load(), 0u);
  EXPECT_GT(continues_done.load(), 0u);
  EXPECT_GT(query_pool.stats().tasks_executed, 0u)
      << "queries never actually fanned out on the shared pool";

  // Quiesce: every pending append folded, no cycle in flight.
  EXPECT_TRUE(index->maintenance()->WaitIdle(/*timeout_ms=*/30000));
  index::MaintenanceStats m = index->maintenance_stats();
  EXPECT_EQ(m.errors, 0u) << m.last_error;

  // End-state correctness: internal invariants hold...
  auto report = index->CheckConsistency();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << (report->violations.empty()
                                    ? ""
                                    : report->violations.front());

  // ...and the parallel engine is byte-identical to the serial one on the
  // quiesced index, across every pair pattern.
  QueryProcessor serial(index.get());
  QueryProcessor parallel(index.get(), &query_pool, TinyMorsels());
  for (size_t a = 0; a < kActivities; ++a) {
    for (size_t b = 0; b < kActivities; ++b) {
      Pattern pattern(std::vector<ActivityId>{static_cast<ActivityId>(a),
                                              static_cast<ActivityId>(b)});
      auto expected = serial.Detect(pattern);
      auto actual = parallel.Detect(pattern);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(actual.ok()) << actual.status();
      ASSERT_EQ(*actual, *expected) << "pair <" << a << "," << b << ">";
    }
  }
}

}  // namespace
}  // namespace seqdet
