// End-to-end tests: dataset generation -> index build -> queries, with
// cross-system agreement checks between the pair index, SASE, the
// ES-like engine and the subtree baseline.

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>

#include "log/xes_io.h"

#include "baselines/esearch/es_engine.h"
#include "baselines/sase/sase_engine.h"
#include "baselines/subtree/subtree_index.h"
#include "common/rng.h"
#include "datagen/dataset_catalog.h"
#include "datagen/pattern_sampler.h"
#include "gtest/gtest.h"
#include "index/sequence_index.h"
#include "query/query_processor.h"
#include "storage/database.h"

namespace seqdet {
namespace {

using eventlog::ActivityId;
using eventlog::EventLog;
using eventlog::Timestamp;
using eventlog::Trace;
using index::EventTypePair;
using index::IndexOptions;
using index::Policy;
using index::SequenceIndex;
using query::Pattern;
using query::PatternMatch;
using query::QueryProcessor;

std::unique_ptr<storage::Database> InMemoryDb() {
  storage::DbOptions options;
  options.table.in_memory = true;
  options.table.use_wal = false;
  return std::move(storage::Database::Open("", options)).value();
}

std::unique_ptr<SequenceIndex> BuildIndex(storage::Database* db,
                                          const EventLog& log,
                                          Policy policy) {
  IndexOptions options;
  options.policy = policy;
  options.num_threads = 2;
  auto index = SequenceIndex::Open(db, options);
  EXPECT_TRUE(index.ok());
  auto stats = (*index)->Update(log);
  EXPECT_TRUE(stats.ok()) << stats.status();
  return std::move(index).value();
}

std::vector<std::string> TermsOf(const EventLog& log,
                                 const std::vector<ActivityId>& pattern) {
  std::vector<std::string> terms;
  for (ActivityId a : pattern) terms.push_back(log.dictionary().Name(a));
  return terms;
}

// Every match must reference real events of its trace, in order.
void ValidateMatches(const EventLog& log,
                     const std::vector<ActivityId>& pattern,
                     const std::vector<PatternMatch>& matches) {
  for (const PatternMatch& match : matches) {
    const Trace* trace = log.FindTrace(match.trace);
    ASSERT_NE(trace, nullptr);
    ASSERT_EQ(match.timestamps.size(), pattern.size());
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(match.timestamps[i - 1], match.timestamps[i]);
      }
      bool exists = false;
      for (const auto& e : trace->events) {
        if (e.ts == match.timestamps[i] && e.activity == pattern[i]) {
          exists = true;
          break;
        }
      }
      EXPECT_TRUE(exists) << "phantom event in match";
    }
  }
}

TEST(IntegrationTest, ScAgreesAcrossAllFourSystems) {
  auto log_result = datagen::LoadDataset("med_5000", 0.01);
  ASSERT_TRUE(log_result.ok());
  const EventLog& log = *log_result;

  auto db = InMemoryDb();
  auto index = BuildIndex(db.get(), log, Policy::kStrictContiguity);
  QueryProcessor qp(index.get());
  baseline::SaseEngine sase(&log);
  auto es = baseline::EsLikeEngine::Build(log);
  ASSERT_TRUE(es.ok());
  auto subtree = baseline::SubtreeIndex::Build(log);
  ASSERT_TRUE(subtree.ok()) << subtree.status();

  datagen::PatternSampler sampler(&log, 7);
  for (size_t len : {2, 3, 5}) {
    for (int round = 0; round < 15; ++round) {
      auto pattern = sampler.SampleContiguous(len);
      auto ours = qp.Detect(Pattern(pattern));
      ASSERT_TRUE(ours.ok());
      size_t sase_count =
          sase.Count(pattern, Policy::kStrictContiguity);
      size_t subtree_count = (*subtree)->Count(pattern);
      size_t es_count = (*es)->DetectSc(TermsOf(log, pattern)).size();
      EXPECT_EQ(ours->size(), sase_count) << "len " << len;
      EXPECT_EQ(ours->size(), subtree_count) << "len " << len;
      EXPECT_EQ(ours->size(), es_count) << "len " << len;
      EXPECT_GT(ours->size(), 0u) << "sampled pattern must occur";
      ValidateMatches(log, pattern, *ours);
    }
  }
}

TEST(IntegrationTest, StnmLengthTwoAgreesWithSaseAndEs) {
  auto log_result = datagen::LoadDataset("bpi_2013", 0.02);
  ASSERT_TRUE(log_result.ok());
  const EventLog& log = *log_result;

  auto db = InMemoryDb();
  auto index = BuildIndex(db.get(), log, Policy::kSkipTillNextMatch);
  QueryProcessor qp(index.get());
  baseline::SaseEngine sase(&log);
  auto es = baseline::EsLikeEngine::Build(log);
  ASSERT_TRUE(es.ok());

  datagen::PatternSampler sampler(&log, 13);
  for (int round = 0; round < 25; ++round) {
    auto pattern = sampler.SampleSubsequence(2);
    auto ours = qp.Detect(Pattern(pattern));
    ASSERT_TRUE(ours.ok());
    // For length-2 patterns the pair index IS the greedy match set, so all
    // three systems agree exactly.
    auto reference = sase.Detect(pattern, Policy::kSkipTillNextMatch);
    auto es_matches = (*es)->DetectStnm(TermsOf(log, pattern));
    EXPECT_EQ(ours->size(), reference.size()) << "round " << round;
    EXPECT_EQ(ours->size(), es_matches.size()) << "round " << round;
    ValidateMatches(log, pattern, *ours);
  }
}

TEST(IntegrationTest, StnmLongPatternsAreValidAndDetected) {
  auto log_result = datagen::LoadDataset("min_10000", 0.005);
  ASSERT_TRUE(log_result.ok());
  const EventLog& log = *log_result;

  auto db = InMemoryDb();
  auto index = BuildIndex(db.get(), log, Policy::kSkipTillNextMatch);
  QueryProcessor qp(index.get());

  datagen::PatternSampler sampler(&log, 29);
  size_t non_empty = 0;
  for (int round = 0; round < 20; ++round) {
    auto pattern = sampler.SampleSubsequence(4);
    auto ours = qp.Detect(Pattern(pattern));
    ASSERT_TRUE(ours.ok());
    ValidateMatches(log, pattern, *ours);
    if (!ours->empty()) ++non_empty;
  }
  // Algorithm 2 joins greedy pairs, which can miss some occurrences of
  // longer patterns (see DESIGN.md); but on real-ish logs the vast
  // majority of sampled existing patterns must still be found.
  EXPECT_GE(non_empty, 15u);
}

TEST(IntegrationTest, StatisticsBoundsHoldOnRealDataset) {
  auto log_result = datagen::LoadDataset("bpi_2020", 0.02);
  ASSERT_TRUE(log_result.ok());
  const EventLog& log = *log_result;
  auto db = InMemoryDb();
  auto index = BuildIndex(db.get(), log, Policy::kSkipTillNextMatch);
  QueryProcessor qp(index.get());
  datagen::PatternSampler sampler(&log, 31);
  for (int round = 0; round < 20; ++round) {
    auto pattern = sampler.SampleSubsequence(3);
    auto stats = qp.Statistics(Pattern(pattern));
    auto matches = qp.Detect(Pattern(pattern));
    ASSERT_TRUE(stats.ok());
    ASSERT_TRUE(matches.ok());
    EXPECT_LE(matches->size(), stats->completions_upper_bound);
  }
}

TEST(IntegrationTest, ContinuationPipelineOnDataset) {
  auto log_result = datagen::LoadDataset("max_100", 0.5);
  ASSERT_TRUE(log_result.ok());
  const EventLog& log = *log_result;
  auto db = InMemoryDb();
  auto index = BuildIndex(db.get(), log, Policy::kSkipTillNextMatch);
  QueryProcessor qp(index.get());
  datagen::PatternSampler sampler(&log, 37);

  auto pattern = Pattern(sampler.SampleSubsequence(3));
  auto accurate = qp.ContinueAccurate(pattern);
  auto fast = qp.ContinueFast(pattern);
  ASSERT_TRUE(accurate.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(accurate->size(), fast->size());  // same candidate set

  // Hybrid accuracy increases with k (Figure 7's property): compute the
  // fraction of accurate's top-|accurate| activities present in hybrid's
  // top-k proposals.
  auto accuracy_at = [&](size_t k) {
    auto hybrid = qp.ContinueHybrid(pattern, k);
    EXPECT_TRUE(hybrid.ok());
    size_t take = std::min(accurate->size(), hybrid->size());
    std::set<ActivityId> accurate_top, hybrid_top;
    for (size_t i = 0; i < take; ++i) {
      accurate_top.insert((*accurate)[i].activity);
      hybrid_top.insert((*hybrid)[i].activity);
    }
    size_t inter = 0;
    for (ActivityId a : accurate_top) inter += hybrid_top.count(a);
    return take == 0 ? 1.0 : static_cast<double>(inter) / take;
  };
  double full = accuracy_at(accurate->size());
  EXPECT_DOUBLE_EQ(full, 1.0);  // k = all candidates degenerates to Accurate
}

TEST(IntegrationTest, IndexSurvivesReopenWithQueries) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() /
             ("seqdet_integration_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  auto log_result = datagen::LoadDataset("bpi_2013", 0.01);
  ASSERT_TRUE(log_result.ok());
  const EventLog& log = *log_result;
  datagen::PatternSampler sampler(&log, 41);
  auto pattern = Pattern(sampler.SampleSubsequence(3));

  size_t expected_matches = 0;
  {
    auto db = storage::Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    IndexOptions options;
    options.num_threads = 2;
    auto index = SequenceIndex::Open(db->get(), options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->Update(log).ok());
    auto matches = QueryProcessor(index->get()).Detect(pattern);
    ASSERT_TRUE(matches.ok());
    expected_matches = matches->size();
    ASSERT_TRUE((*index)->Flush().ok());
  }
  {
    auto db = storage::Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    auto index = SequenceIndex::Open(db->get(), IndexOptions{});
    ASSERT_TRUE(index.ok());
    auto matches = QueryProcessor(index->get()).Detect(pattern);
    ASSERT_TRUE(matches.ok());
    EXPECT_EQ(matches->size(), expected_matches);
  }
  fs::remove_all(dir);
}

TEST(IntegrationTest, XesRoundTripPreservesQueryResults) {
  auto log_result = datagen::LoadDataset("max_100", 0.2);
  ASSERT_TRUE(log_result.ok());
  EventLog& log = *log_result;

  std::ostringstream buffer;
  ASSERT_TRUE(eventlog::WriteXesLog(log, buffer).ok());
  std::istringstream in(buffer.str());
  auto reread = eventlog::ReadXesLog(in);
  ASSERT_TRUE(reread.ok()) << reread.status();
  ASSERT_EQ(reread->num_events(), log.num_events());

  auto db1 = InMemoryDb(), db2 = InMemoryDb();
  auto index1 = BuildIndex(db1.get(), log, Policy::kSkipTillNextMatch);
  auto index2 = BuildIndex(db2.get(), *reread, Policy::kSkipTillNextMatch);
  QueryProcessor qp1(index1.get()), qp2(index2.get());
  datagen::PatternSampler sampler(&log, 43);
  for (int round = 0; round < 10; ++round) {
    auto ids = sampler.SampleSubsequence(3);
    // Map through names for the second index (intern order may differ).
    std::vector<std::string> names = TermsOf(log, ids);
    auto p1 = Pattern(ids);
    auto p2 = Pattern::FromNames(index2->dictionary(), names);
    ASSERT_TRUE(p2.ok());
    auto m1 = qp1.Detect(p1);
    auto m2 = qp2.Detect(*p2);
    ASSERT_TRUE(m1.ok());
    ASSERT_TRUE(m2.ok());
    EXPECT_EQ(m1->size(), m2->size()) << "round " << round;
  }
}

}  // namespace
}  // namespace seqdet
