#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>
#include <thread>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/index_tables.h"
#include "index/sequence_index.h"
#include "storage/database.h"

namespace seqdet::index {
namespace {

using eventlog::Event;
using eventlog::EventLog;
using eventlog::Timestamp;
using eventlog::Trace;

namespace fs = std::filesystem;

std::unique_ptr<storage::Database> InMemoryDb() {
  storage::DbOptions options;
  options.table.in_memory = true;
  options.table.use_wal = false;
  auto db = storage::Database::Open("", options);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

// ---------------------------------------------------------------------------
// Table wrappers
// ---------------------------------------------------------------------------

TEST(SeqTableTest, AppendAndGet) {
  auto db = InMemoryDb();
  SeqTable seq(*db->GetOrCreateTable("seq"));
  storage::WriteBatch batch;
  seq.StageAppend(7, {{0, 1}, {1, 2}}, &batch);
  ASSERT_TRUE(seq.table()->Apply(batch).ok());
  batch.Clear();
  seq.StageAppend(7, {{2, 3}}, &batch);
  ASSERT_TRUE(seq.table()->Apply(batch).ok());

  auto events = seq.Get(7);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ((*events)[2].activity, 2u);
  EXPECT_EQ((*events)[2].ts, 3);

  auto missing = seq.Get(99);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
}

TEST(SeqTableTest, DeleteRemovesTrace) {
  auto db = InMemoryDb();
  SeqTable seq(*db->GetOrCreateTable("seq"));
  storage::WriteBatch batch;
  seq.StageAppend(7, {{0, 1}}, &batch);
  seq.StageDelete(7, &batch);
  ASSERT_TRUE(seq.table()->Apply(batch).ok());
  auto events = seq.Get(7);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

TEST(SeqTableTest, NegativeTimestampsSurvive) {
  auto db = InMemoryDb();
  SeqTable seq(*db->GetOrCreateTable("seq"));
  storage::WriteBatch batch;
  seq.StageAppend(1, {{0, -5000}}, &batch);
  ASSERT_TRUE(seq.table()->Apply(batch).ok());
  auto events = seq.Get(1);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ((*events)[0].ts, -5000);
}

TEST(PairIndexTableTest, PostingsSortedAcrossAppends) {
  auto db = InMemoryDb();
  PairIndexTable index(*db->GetOrCreateTable("index"));
  EventTypePair pair{3, 4};
  storage::WriteBatch batch;
  index.StageAppend(pair, {{9, 10, 20}, {9, 30, 40}}, &batch);
  index.StageAppend(pair, {{2, 5, 6}}, &batch);
  ASSERT_TRUE(index.table()->Apply(batch).ok());
  auto postings = index.Get(pair);
  ASSERT_TRUE(postings.ok());
  ASSERT_EQ(postings->size(), 3u);
  EXPECT_EQ((*postings)[0].trace, 2u);  // sorted by (trace, ts_first)
  EXPECT_EQ((*postings)[1].trace, 9u);
  EXPECT_EQ((*postings)[1].ts_first, 10);
}

TEST(PairIndexTableTest, MissingPairIsEmpty) {
  auto db = InMemoryDb();
  PairIndexTable index(*db->GetOrCreateTable("index"));
  auto postings = index.Get(EventTypePair{1, 2});
  ASSERT_TRUE(postings.ok());
  EXPECT_TRUE(postings->empty());
}

TEST(CountTableTest, DeltasAggregate) {
  auto db = InMemoryDb();
  CountTable count(*db->GetOrCreateTable("count"));
  storage::WriteBatch batch;
  count.StageDelta(1, PairCountStats{2, 100, 4}, &batch);
  count.StageDelta(1, PairCountStats{2, 60, 2}, &batch);
  count.StageDelta(1, PairCountStats{3, 10, 1}, &batch);
  ASSERT_TRUE(count.table()->Apply(batch).ok());

  auto stats = count.Get(1);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 2u);
  // Sorted by completions desc: (1,2) has 6 completions.
  EXPECT_EQ((*stats)[0].other, 2u);
  EXPECT_EQ((*stats)[0].total_completions, 6u);
  EXPECT_EQ((*stats)[0].sum_duration, 160);
  EXPECT_NEAR((*stats)[0].AverageDuration(), 160.0 / 6, 1e-9);

  auto pair = count.GetPair(1, 3);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->total_completions, 1u);

  auto absent = count.GetPair(1, 99);
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(absent->total_completions, 0u);
}

TEST(LastCheckedTableTest, PutOverwritesAndGet) {
  auto db = InMemoryDb();
  LastCheckedTable lc(*db->GetOrCreateTable("lastchecked"));
  EventTypePair pair{1, 2};
  storage::WriteBatch batch;
  lc.StagePut(pair, 5, 100, &batch);
  ASSERT_TRUE(lc.table()->Apply(batch).ok());
  batch.Clear();
  lc.StagePut(pair, 5, 200, &batch);
  ASSERT_TRUE(lc.table()->Apply(batch).ok());

  auto ts = lc.Get(pair, 5);
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(ts->has_value());
  EXPECT_EQ(**ts, 200);

  auto missing = lc.Get(pair, 6);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
}

// ---------------------------------------------------------------------------
// SequenceIndex
// ---------------------------------------------------------------------------

EventLog SmallLog() {
  // Two traces using the paper's example plus a second trace.
  EventLog log;
  log.Append(7, "A", 1);
  log.Append(7, "A", 2);
  log.Append(7, "B", 3);
  log.Append(7, "A", 4);
  log.Append(7, "B", 5);
  log.Append(7, "A", 6);
  log.Append(8, "A", 10);
  log.Append(8, "B", 20);
  log.SortAllTraces();
  return log;
}

IndexOptions SingleThreaded() {
  IndexOptions options;
  options.num_threads = 1;
  return options;
}

TEST(SequenceIndexTest, BuildsStnmIndex) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok()) << index.status();
  EventLog log = SmallLog();
  auto stats = (*index)->Update(log);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->traces_processed, 2u);
  EXPECT_EQ(stats->events_appended, 8u);
  EXPECT_EQ(stats->pairs_extracted, stats->pairs_indexed);  // fresh build

  auto ab = (*index)->GetPairPostings(EventTypePair{0, 1});  // (A,B)
  ASSERT_TRUE(ab.ok());
  ASSERT_EQ(ab->size(), 3u);  // trace7: (1,3),(4,5); trace8: (10,20)
  EXPECT_EQ((*ab)[0].trace, 7u);
  EXPECT_EQ((*ab)[0].ts_first, 1);
  EXPECT_EQ((*ab)[2].trace, 8u);

  auto followers = (*index)->GetFollowerStats(0);
  ASSERT_TRUE(followers.ok());
  ASSERT_EQ(followers->size(), 2u);  // A->A and A->B

  auto predecessors = (*index)->GetPredecessorStats(1);  // *->B
  ASSERT_TRUE(predecessors.ok());
  ASSERT_EQ(predecessors->size(), 2u);  // A->B and B->B
}

TEST(SequenceIndexTest, ScPolicy) {
  auto db = InMemoryDb();
  IndexOptions options = SingleThreaded();
  options.policy = Policy::kStrictContiguity;
  auto index = SequenceIndex::Open(db.get(), options);
  ASSERT_TRUE(index.ok());
  EventLog log = SmallLog();
  ASSERT_TRUE((*index)->Update(log).ok());
  auto bb = (*index)->GetPairPostings(EventTypePair{1, 1});  // (B,B)
  ASSERT_TRUE(bb.ok());
  EXPECT_TRUE(bb->empty());  // no consecutive B,B anywhere
  auto aa = (*index)->GetPairPostings(EventTypePair{0, 0});
  ASSERT_TRUE(aa.ok());
  EXPECT_EQ(aa->size(), 1u);  // only (1,2) in trace 7
}

TEST(SequenceIndexTest, DuplicateBatchAddsNothing) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EventLog log = SmallLog();
  ASSERT_TRUE((*index)->Update(log).ok());
  auto before = (*index)->GetPairPostings(EventTypePair{0, 1});
  ASSERT_TRUE(before.ok());

  // Re-sending the same events must not duplicate postings: the trace is
  // re-extracted but every completion is at or below LastChecked.
  auto stats = (*index)->Update(log);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pairs_indexed, 0u);
  EXPECT_EQ(stats->events_appended, 0u);
  auto after = (*index)->GetPairPostings(EventTypePair{0, 1});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size());
  // The Seq table must not grow either (replays are fully idempotent).
  auto seq = (*index)->GetTraceSequence(7);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->size(), 6u);
}

TEST(SequenceIndexTest, OverlappingBatchesStayIdempotent) {
  // Batches that overlap (events 1-4, then 3-8) must index each event and
  // pair exactly once.
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EventLog full = SmallLog();
  const Trace& trace = *full.FindTrace(7);
  EventLog batch1, batch2;
  for (size_t i = 0; i < trace.size(); ++i) {
    const std::string& name = full.dictionary().Name(trace.events[i].activity);
    if (i < 4) batch1.Append(7, name, trace.events[i].ts);
    if (i >= 2) batch2.Append(7, name, trace.events[i].ts);
  }
  batch1.SortAllTraces();
  batch2.SortAllTraces();
  ASSERT_TRUE((*index)->Update(batch1).ok());
  auto stats2 = (*index)->Update(batch2);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->events_appended, 2u);  // only events 5 and 6 are new

  auto seq = (*index)->GetTraceSequence(7);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->size(), 6u);

  // Postings equal a one-shot build.
  auto db2 = InMemoryDb();
  auto oneshot = SequenceIndex::Open(db2.get(), SingleThreaded());
  EventLog log7;
  for (const auto& e : trace.events) {
    log7.Append(7, full.dictionary().Name(e.activity), e.ts);
  }
  log7.SortAllTraces();
  ASSERT_TRUE((*oneshot)->Update(log7).ok());
  for (uint32_t a = 0; a < 2; ++a) {
    for (uint32_t b = 0; b < 2; ++b) {
      auto p1 = (*index)->GetPairPostings(EventTypePair{a, b});
      auto p2 = (*oneshot)->GetPairPostings(EventTypePair{a, b});
      ASSERT_TRUE(p1.ok());
      ASSERT_TRUE(p2.ok());
      EXPECT_EQ(*p1, *p2) << a << "," << b;
    }
  }
}

TEST(SequenceIndexTest, IncrementalBatchesMatchOneShot) {
  // Property: splitting a log into arbitrary timestamp-ordered batches
  // yields exactly the index a single batch build yields.
  Rng rng(2024);
  for (int round = 0; round < 8; ++round) {
    EventLog full;
    const size_t traces = 5, events_per = 30;
    for (size_t t = 0; t < traces; ++t) {
      for (size_t i = 0; i < events_per; ++i) {
        full.Append(t, std::string(1, static_cast<char>('A' + rng.NextBounded(4))),
                    static_cast<Timestamp>(i + 1));
      }
    }
    full.SortAllTraces();

    auto db_one = InMemoryDb();
    auto one = SequenceIndex::Open(db_one.get(), SingleThreaded());
    ASSERT_TRUE(one.ok());
    ASSERT_TRUE((*one)->Update(full).ok());

    auto db_inc = InMemoryDb();
    auto inc = SequenceIndex::Open(db_inc.get(), SingleThreaded());
    ASSERT_TRUE(inc.ok());
    // Split each trace at a random cut into two batches (prefix by time,
    // as periodic log arrival would).
    EventLog batch1, batch2;
    for (const Trace& trace : full.traces()) {
      size_t cut = rng.NextBounded(trace.size() + 1);
      for (size_t i = 0; i < trace.size(); ++i) {
        const std::string& name =
            full.dictionary().Name(trace.events[i].activity);
        (i < cut ? batch1 : batch2)
            .Append(trace.id, name, trace.events[i].ts);
      }
    }
    batch1.SortAllTraces();
    batch2.SortAllTraces();
    ASSERT_TRUE((*inc)->Update(batch1).ok());
    ASSERT_TRUE((*inc)->Update(batch2).ok());

    // Compare postings of every pair. Each index remaps activities into
    // its own dictionary, so resolve ids by name per index.
    for (char a = 'A'; a < 'E'; ++a) {
      for (char b = 'A'; b < 'E'; ++b) {
        EventTypePair p_one{
            (*one)->dictionary().Lookup(std::string(1, a)),
            (*one)->dictionary().Lookup(std::string(1, b))};
        EventTypePair p_inc{
            (*inc)->dictionary().Lookup(std::string(1, a)),
            (*inc)->dictionary().Lookup(std::string(1, b))};
        auto postings_one = (*one)->GetPairPostings(p_one);
        auto postings_inc = (*inc)->GetPairPostings(p_inc);
        ASSERT_TRUE(postings_one.ok());
        ASSERT_TRUE(postings_inc.ok());
        EXPECT_EQ(*postings_one, *postings_inc)
            << "round " << round << " pair " << a << "," << b;
      }
    }
  }
}

TEST(SequenceIndexTest, ParallelMatchesSingleThreaded) {
  EventLog log;
  Rng rng(5);
  for (size_t t = 0; t < 50; ++t) {
    for (size_t i = 0; i < 40; ++i) {
      log.Append(t, std::string(1, static_cast<char>('A' + rng.NextBounded(6))),
                 static_cast<Timestamp>(i + 1));
    }
  }
  log.SortAllTraces();

  auto db1 = InMemoryDb();
  auto single = SequenceIndex::Open(db1.get(), SingleThreaded());
  ASSERT_TRUE((*single)->Update(log).ok());

  auto db2 = InMemoryDb();
  IndexOptions parallel_options;
  parallel_options.num_threads = 4;
  auto parallel = SequenceIndex::Open(db2.get(), parallel_options);
  ASSERT_TRUE((*parallel)->Update(log).ok());

  for (uint32_t a = 0; a < 6; ++a) {
    for (uint32_t b = 0; b < 6; ++b) {
      auto p1 = (*single)->GetPairPostings(EventTypePair{a, b});
      auto p2 = (*parallel)->GetPairPostings(EventTypePair{a, b});
      ASSERT_TRUE(p1.ok());
      ASSERT_TRUE(p2.ok());
      EXPECT_EQ(*p1, *p2);
    }
  }
}

TEST(SequenceIndexTest, PeriodsMergeOnRead) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EventLog batch1;
  batch1.Append(1, "A", 1);
  batch1.Append(1, "B", 2);
  batch1.SortAllTraces();
  ASSERT_TRUE((*index)->Update(batch1).ok());
  ASSERT_TRUE((*index)->StartNewPeriod().ok());
  EXPECT_EQ((*index)->num_periods(), 2u);

  EventLog batch2;
  batch2.Append(1, "A", 3);
  batch2.Append(1, "B", 4);
  batch2.SortAllTraces();
  ASSERT_TRUE((*index)->Update(batch2).ok());

  auto ab = (*index)->GetPairPostings(EventTypePair{0, 1});
  ASSERT_TRUE(ab.ok());
  EXPECT_EQ(ab->size(), 2u);  // one posting per period, merged and sorted
  EXPECT_EQ((*ab)[0].ts_first, 1);
  EXPECT_EQ((*ab)[1].ts_first, 3);
}

TEST(ConsistencyCheckTest, CleanIndexPasses) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EventLog log = SmallLog();
  ASSERT_TRUE((*index)->Update(log).ok());
  auto report = (*index)->CheckConsistency();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->violations.front();
  EXPECT_GT(report->pairs_checked, 0u);
  EXPECT_GT(report->postings_checked, 0u);
  EXPECT_EQ(report->traces_checked, 2u);
}

TEST(ConsistencyCheckTest, PrunedTraceStillPasses) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EventLog log = SmallLog();
  ASSERT_TRUE((*index)->Update(log).ok());
  ASSERT_TRUE((*index)->PruneTrace(7).ok());
  auto report = (*index)->CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->violations.front();
}

TEST(ConsistencyCheckTest, CorruptedPostingDetected) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EventLog log = SmallLog();
  ASSERT_TRUE((*index)->Update(log).ok());
  // Forge an overlapping posting for pair (A,B) in trace 7 directly in
  // the storage layer, bypassing the builder's invariants.
  PairIndexTable forged(db->GetShardedTable("index_p0"));
  storage::WriteBatch batch;
  forged.StageAppend(EventTypePair{0, 1}, {{7, 2, 4}}, &batch);
  ASSERT_TRUE(forged.table()->Apply(batch).ok());

  auto report = (*index)->CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());  // overlap + Count mismatch + LastChecked
  EXPECT_GE(report->violations.size(), 2u);
}

TEST(ConsistencyCheckTest, SurvivesMultiplePeriods) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EventLog batch1;
  batch1.Append(1, "A", 1);
  batch1.Append(1, "B", 2);
  batch1.SortAllTraces();
  ASSERT_TRUE((*index)->Update(batch1).ok());
  ASSERT_TRUE((*index)->StartNewPeriod().ok());
  EventLog batch2;
  batch2.Append(1, "A", 3);
  batch2.Append(1, "B", 4);
  batch2.SortAllTraces();
  ASSERT_TRUE((*index)->Update(batch2).ok());
  auto report = (*index)->CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->violations.front();
}

TEST(SequenceIndexTest, CompactStatisticsPreservesCounts) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  // Several batches -> several deltas per pair.
  for (int batch = 0; batch < 4; ++batch) {
    EventLog log;
    log.Append(100 + batch, "A", 1);
    log.Append(100 + batch, "B", 3);
    log.Append(100 + batch, "A", 7);
    log.SortAllTraces();
    ASSERT_TRUE((*index)->Update(log).ok());
  }
  auto before = (*index)->GetFollowerStats(0);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*index)->CompactStatistics().ok());
  auto after = (*index)->GetFollowerStats(0);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].other, (*after)[i].other);
    EXPECT_EQ((*before)[i].total_completions, (*after)[i].total_completions);
    EXPECT_EQ((*before)[i].sum_duration, (*after)[i].sum_duration);
  }
  auto reverse = (*index)->GetPredecessorStats(1);
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(reverse->empty());
}

TEST(SequenceIndexTest, PairLastCompletionSpansTraces) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EventLog log = SmallLog();  // (A,B) completes at 3, 5 (trace 7), 20 (8)
  ASSERT_TRUE((*index)->Update(log).ok());
  auto last = (*index)->GetPairLastCompletion(EventTypePair{0, 1});
  ASSERT_TRUE(last.ok());
  ASSERT_TRUE(last->has_value());
  EXPECT_EQ(**last, 20);
  auto absent = (*index)->GetPairLastCompletion(EventTypePair{5, 9});
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(absent->has_value());
}

TEST(SequenceIndexTest, PruneTraceRemovesSeqAndLastChecked) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EventLog log = SmallLog();
  ASSERT_TRUE((*index)->Update(log).ok());

  ASSERT_TRUE((*index)->PruneTrace(7).ok());
  auto seq = (*index)->GetTraceSequence(7);
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(seq->empty());
  auto lc = (*index)->GetLastCompletion(EventTypePair{0, 1}, 7);
  ASSERT_TRUE(lc.ok());
  EXPECT_FALSE(lc->has_value());

  // Index postings survive pruning (queries still work, §3.1.3).
  auto ab = (*index)->GetPairPostings(EventTypePair{0, 1});
  ASSERT_TRUE(ab.ok());
  EXPECT_EQ(ab->size(), 3u);
}

TEST(SequenceIndexTest, PersistsAcrossReopen) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() /
             ("seqdet_index_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    auto db = storage::Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    auto index = SequenceIndex::Open(db->get(), SingleThreaded());
    ASSERT_TRUE(index.ok()) << index.status();
    EventLog log = SmallLog();
    ASSERT_TRUE((*index)->Update(log).ok());
    ASSERT_TRUE((*index)->StartNewPeriod().ok());
    ASSERT_TRUE((*index)->Flush().ok());
  }
  {
    auto db = storage::Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    auto index = SequenceIndex::Open(db->get(), SingleThreaded());
    ASSERT_TRUE(index.ok()) << index.status();
    EXPECT_EQ((*index)->num_periods(), 2u);
    auto ab = (*index)->GetPairPostings(EventTypePair{0, 1});
    ASSERT_TRUE(ab.ok());
    EXPECT_EQ(ab->size(), 3u);
    auto seq = (*index)->GetTraceSequence(7);
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(seq->size(), 6u);
  }
  fs::remove_all(dir);
}

TEST(SequenceIndexTest, DisabledTablesReportUnsupported) {
  auto db = InMemoryDb();
  IndexOptions options = SingleThreaded();
  options.maintain_counts = false;
  options.maintain_seq = false;
  options.maintain_last_checked = false;
  auto index = SequenceIndex::Open(db.get(), options);
  ASSERT_TRUE(index.ok());
  EventLog log = SmallLog();
  ASSERT_TRUE((*index)->Update(log).ok());
  EXPECT_TRUE((*index)->GetFollowerStats(0).status().IsUnsupported());
  EXPECT_TRUE((*index)->GetTraceSequence(7).status().IsUnsupported());
  EXPECT_TRUE((*index)
                  ->GetLastCompletion(EventTypePair{0, 1}, 7)
                  .status()
                  .IsUnsupported());
  EXPECT_TRUE((*index)->PruneTrace(7).IsUnsupported());
  // The inverted index itself still works.
  auto ab = (*index)->GetPairPostings(EventTypePair{0, 1});
  ASSERT_TRUE(ab.ok());
  EXPECT_FALSE(ab->empty());
}

TEST(SequenceIndexTest, CountsMatchPostings) {
  // Property: Count-table totals equal the posting-list lengths.
  Rng rng(12);
  EventLog log;
  for (size_t t = 0; t < 20; ++t) {
    for (size_t i = 0; i < 25; ++i) {
      log.Append(t, std::string(1, static_cast<char>('A' + rng.NextBounded(5))),
                 static_cast<Timestamp>(i + 1));
    }
  }
  log.SortAllTraces();
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE((*index)->Update(log).ok());
  for (uint32_t a = 0; a < 5; ++a) {
    auto followers = (*index)->GetFollowerStats(a);
    ASSERT_TRUE(followers.ok());
    uint64_t total_from_counts = 0;
    for (const auto& f : *followers) {
      auto postings = (*index)->GetPairPostings(EventTypePair{a, f.other});
      ASSERT_TRUE(postings.ok());
      EXPECT_EQ(postings->size(), f.total_completions);
      total_from_counts += f.total_completions;
      // Durations must also agree.
      int64_t sum = 0;
      for (const auto& p : *postings) sum += p.ts_second - p.ts_first;
      EXPECT_EQ(sum, f.sum_duration);
    }
    EXPECT_GT(total_from_counts, 0u);
  }
}

// ---------------------------------------------------------------------------
// Maintenance service (auto-fold + compaction scheduler)
// ---------------------------------------------------------------------------

EventLog SmallRandomLog(uint64_t seed, size_t traces = 30) {
  EventLog log;
  Rng rng(seed);
  for (size_t t = 0; t < traces; ++t) {
    Timestamp ts = 0;
    size_t len = static_cast<size_t>(rng.NextInRange(5, 25));
    for (size_t i = 0; i < len; ++i) {
      ts += rng.NextInRange(1, 5);
      log.Append(t, "m" + std::to_string(rng.NextBounded(5)), ts);
    }
  }
  log.SortAllTraces();
  return log;
}

TEST(MaintenanceServiceTest, AutoFoldTriggersAndQuiesces) {
  auto db = InMemoryDb();
  IndexOptions options;
  options.num_threads = 1;
  options.maintenance.auto_fold = true;
  options.maintenance.check_interval_ms = 5;
  options.maintenance.min_pending_bytes = 1;
  options.maintenance.min_pending_ops = 1;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  ASSERT_NE(index->maintenance(), nullptr);
  EXPECT_TRUE(index->maintenance_stats().enabled);
  EXPECT_TRUE(index->maintenance_stats().running);

  ASSERT_TRUE(index->Update(SmallRandomLog(1)).ok());
  ASSERT_TRUE(index->maintenance()->WaitIdle(/*timeout_ms=*/10000));

  MaintenanceStats stats = index->maintenance_stats();
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.folds_run, 0u);
  EXPECT_EQ(stats.errors, 0u) << stats.last_error;
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.pending_bytes, 0u);
  // Everything the service folded is really folded on disk.
  auto frag = index->PostingFragmentationStats();
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(frag->fragmented_keys, 0u);

  index->maintenance()->Stop();
  EXPECT_FALSE(index->maintenance_stats().running);
  index->maintenance()->Stop();  // idempotent
}

TEST(MaintenanceServiceTest, ConcurrentStopJoinsExactlyOnce) {
  // Regression test for a latent defect surfaced by the static-discipline
  // audit: Stop() used to let every concurrent caller reach loop_.get() —
  // running_ only went false after the join, so a second Stop() racing
  // the first (e.g. the dtor racing an explicit Stop()) passed the
  // running_ check and called get() on an already-consumed future,
  // throwing std::future_error. The fixed Stop() claims the future under
  // mu_, so exactly one caller joins and the rest wait for it.
  auto db = InMemoryDb();
  IndexOptions options;
  options.num_threads = 1;
  options.maintenance.auto_fold = true;
  options.maintenance.check_interval_ms = 1;
  options.maintenance.min_pending_bytes = 1;
  options.maintenance.min_pending_ops = 1;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  auto* service = index->maintenance();
  ASSERT_NE(service, nullptr);

  constexpr int kRounds = 8;
  constexpr int kStoppers = 8;
  for (int round = 0; round < kRounds; ++round) {
    service->Start();
    service->Kick();
    std::atomic<bool> go{false};
    std::vector<std::thread> stoppers;
    stoppers.reserve(kStoppers);
    for (int i = 0; i < kStoppers; ++i) {
      stoppers.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        service->Stop();  // the old version could throw std::future_error
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : stoppers) t.join();
    // Every Stop() returned only after the loop really exited.
    EXPECT_FALSE(index->maintenance_stats().running);
  }
}

TEST(MaintenanceServiceTest, BelowThresholdsServiceStaysIdle) {
  auto db = InMemoryDb();
  IndexOptions options;
  options.num_threads = 1;
  options.maintenance.auto_fold = true;
  options.maintenance.check_interval_ms = 5;
  // Thresholds far above what the tiny log stages.
  options.maintenance.min_pending_bytes = 1u << 30;
  options.maintenance.min_pending_ops = 1u << 30;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  ASSERT_TRUE(index->Update(SmallRandomLog(2)).ok());
  index->maintenance()->Kick();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  MaintenanceStats stats = index->maintenance_stats();
  EXPECT_EQ(stats.folds_run, 0u);
  EXPECT_GT(stats.pending_bytes, 0u);  // load is tracked, just under limit
}

TEST(MaintenanceServiceTest, SeedsPendingLoadFromDiskFragmentation) {
  // An index built *without* the service, then reopened with auto_fold,
  // must fold its pre-existing fragments (the pending counters are
  // process-local, so Open seeds them from the header scan).
  fs::path dir = fs::temp_directory_path() /
                 ("seqdet_maint_seed_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    auto db = std::move(storage::Database::Open(dir.string())).value();
    IndexOptions options;
    options.num_threads = 1;
    auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
    ASSERT_TRUE(index->Update(SmallRandomLog(3)).ok());
    ASSERT_TRUE(index->Flush().ok());
    auto frag = index->PostingFragmentationStats();
    ASSERT_TRUE(frag.ok());
    ASSERT_GT(frag->fragmented_keys, 0u);
  }
  {
    auto db = std::move(storage::Database::Open(dir.string())).value();
    IndexOptions options;
    options.num_threads = 1;
    options.maintenance.auto_fold = true;
    options.maintenance.check_interval_ms = 5;
    options.maintenance.min_pending_bytes = 1;
    options.maintenance.min_pending_ops = 1;
    auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
    ASSERT_TRUE(index->maintenance()->WaitIdle(/*timeout_ms=*/10000));
    auto frag = index->PostingFragmentationStats();
    ASSERT_TRUE(frag.ok());
    EXPECT_EQ(frag->fragmented_keys, 0u);
  }
  fs::remove_all(dir);
}

TEST(MaintenanceServiceTest, RateLimitedFoldStillCompletes) {
  auto db = InMemoryDb();
  IndexOptions options;
  options.num_threads = 1;
  options.maintenance.auto_fold = true;
  options.maintenance.check_interval_ms = 5;
  options.maintenance.min_pending_bytes = 1;
  options.maintenance.min_pending_ops = 1;
  // Generous enough to finish fast, small enough that the pace path runs.
  options.maintenance.rate_limit_bytes_per_sec = 4u << 20;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  ASSERT_TRUE(index->Update(SmallRandomLog(4)).ok());
  ASSERT_TRUE(index->maintenance()->WaitIdle(/*timeout_ms=*/30000));
  MaintenanceStats stats = index->maintenance_stats();
  EXPECT_GT(stats.folds_run, 0u);
  EXPECT_EQ(stats.errors, 0u) << stats.last_error;
}

TEST(MaintenanceServiceTest, StopMidFoldAbortsCleanly) {
  auto db = InMemoryDb();
  IndexOptions options;
  options.num_threads = 1;
  options.maintenance.auto_fold = true;
  options.maintenance.check_interval_ms = 1;
  options.maintenance.min_pending_bytes = 1;
  options.maintenance.min_pending_ops = 1;
  // Throttle hard so Stop() lands while a fold pass is still pacing.
  options.maintenance.rate_limit_bytes_per_sec = 1024;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  ASSERT_TRUE(index->Update(SmallRandomLog(5)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  index->maintenance()->Stop();  // must not hang on the rate limiter
  MaintenanceStats stats = index->maintenance_stats();
  EXPECT_FALSE(stats.running);
  EXPECT_EQ(stats.errors, 0u) << stats.last_error;  // Aborted != error
  // The index remains consistent whatever the service got through.
  auto report = index->CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
}

TEST(MaintenanceServiceTest, NoServiceStatsAreZeroButPendingTracked) {
  auto db = InMemoryDb();
  IndexOptions options;
  options.num_threads = 1;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  EXPECT_EQ(index->maintenance(), nullptr);
  ASSERT_TRUE(index->Update(SmallRandomLog(6)).ok());
  MaintenanceStats stats = index->maintenance_stats();
  EXPECT_FALSE(stats.enabled);
  EXPECT_FALSE(stats.running);
  EXPECT_EQ(stats.folds_run, 0u);
  EXPECT_GT(stats.pending_bytes, 0u);
  EXPECT_GT(stats.queue_depth, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent observability: every stats surface must be safely readable
// while queries decode postings on other threads (the counters are
// atomics; this test is the TSan witness).
// ---------------------------------------------------------------------------

TEST(ReadStatsConcurrencyTest, StatsReadableWhileQueriesRun) {
  auto db = InMemoryDb();
  IndexOptions options;
  options.num_threads = 1;
  options.cache_bytes = 0;  // every read decodes, maximizing counter traffic
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  ASSERT_TRUE(index->Update(SmallRandomLog(7, /*traces=*/50)).ok());

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (eventlog::ActivityId a = 0; a < 5; ++a) {
        for (eventlog::ActivityId b = 0; b < 5; ++b) {
          auto postings = index->GetPairPostings({a, b});
          ASSERT_TRUE(postings.ok());
        }
      }
    }
  });
  std::thread poller([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      IndexReadStats stats = index->read_stats();
      EXPECT_GE(stats.postings_decoded, last);  // monotone
      last = stats.postings_decoded;
      (void)index->cache_stats();
      (void)index->maintenance_stats();
      (void)index->pending_fold_load();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  poller.join();
  EXPECT_GT(index->read_stats().postings_decoded, 0u);
}

}  // namespace
}  // namespace seqdet::index
