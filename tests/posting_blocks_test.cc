// Tests of the v2 block-structured posting-list format: encode/decode
// round trips, header parsing, trace-interval pruning machinery,
// corruption behavior of every value decoder, the v1 -> v2 fold/upgrade
// path, and the selectivity-filtered read path.

#include <algorithm>
#include <filesystem>
#include <limits>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/index_tables.h"
#include "index/posting_blocks.h"
#include "index/sequence_index.h"
#include "query/query_processor.h"
#include "storage/database.h"

namespace seqdet::index {
namespace {

using eventlog::EventLog;

std::unique_ptr<storage::Database> InMemoryDb() {
  storage::DbOptions options;
  options.table.in_memory = true;
  options.table.use_wal = false;
  auto db = storage::Database::Open("", options);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

IndexOptions SingleThreaded() {
  IndexOptions options;
  options.num_threads = 1;
  return options;
}

std::vector<PairOccurrence> RoundTrip(
    const std::vector<PairOccurrence>& postings, size_t target_bytes) {
  std::string encoded;
  EncodePostingBlocks(postings, target_bytes, &encoded);
  std::vector<PairOccurrence> decoded;
  EXPECT_TRUE(DecodeBlockedPostings(encoded, &decoded));
  return decoded;
}

// ---------------------------------------------------------------------------
// Block encode/decode round trips
// ---------------------------------------------------------------------------

TEST(PostingBlocksTest, EmptyListEncodesToNothing) {
  std::string encoded;
  EncodePostingBlocks({}, kDefaultPostingBlockBytes, &encoded);
  EXPECT_TRUE(encoded.empty());
  std::vector<PairOccurrence> decoded;
  EXPECT_TRUE(DecodeBlockedPostings(encoded, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(PostingBlocksTest, SinglePostingRoundTrip) {
  std::vector<PairOccurrence> postings{{42, -100, 250}};
  EXPECT_EQ(RoundTrip(postings, kDefaultPostingBlockBytes), postings);
}

TEST(PostingBlocksTest, MultiBlockRoundTrip) {
  // A tiny target forces many blocks; the round trip must be exact and
  // block-order-preserving.
  std::vector<PairOccurrence> postings;
  Rng rng(7);
  int64_t ts = -5000;
  for (uint64_t trace = 0; trace < 100; ++trace) {
    for (int k = 0; k < 5; ++k) {
      ts += static_cast<int64_t>(rng.NextBounded(50));
      postings.push_back(
          PairOccurrence{trace, ts, ts + 1 + static_cast<int64_t>(
                                             rng.NextBounded(100))});
    }
  }
  std::string encoded;
  EncodePostingBlocks(postings, 64, &encoded);
  std::vector<PostingBlockRef> refs;
  ASSERT_TRUE(ParsePostingBlockRefs(encoded, &refs));
  EXPECT_GT(refs.size(), 10u);
  std::vector<PairOccurrence> decoded;
  ASSERT_TRUE(DecodeBlockedPostings(encoded, &decoded));
  EXPECT_EQ(decoded, postings);
}

TEST(PostingBlocksTest, MaxDeltaTracesRoundTrip) {
  // Extreme trace-id spread within one block: deltas up to 2^64 - 1.
  std::vector<PairOccurrence> postings{
      {0, 1, 2},
      {1, 5, 9},
      {std::numeric_limits<uint64_t>::max() - 1, -10, 10},
      {std::numeric_limits<uint64_t>::max(), 100, 200},
  };
  EXPECT_EQ(RoundTrip(postings, kDefaultPostingBlockBytes), postings);
}

TEST(PostingBlocksTest, HeadersDescribeBlocks) {
  std::vector<PairOccurrence> postings{
      {10, -7, 3}, {10, 5, 8}, {20, 1, 90}, {30, 2, 4}};
  std::string encoded;
  EncodePostingBlocks(postings, kDefaultPostingBlockBytes, &encoded);
  std::vector<PostingBlockRef> refs;
  ASSERT_TRUE(ParsePostingBlockRefs(encoded, &refs));
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].header.min_trace, 10u);
  EXPECT_EQ(refs[0].header.max_trace, 30u);
  EXPECT_EQ(refs[0].header.min_ts, -7);
  EXPECT_EQ(refs[0].header.max_ts, 90);
  EXPECT_EQ(refs[0].header.count, 4u);
}

// ---------------------------------------------------------------------------
// Corruption: every decoder must leave its output empty on failure
// ---------------------------------------------------------------------------

TEST(PostingBlocksTest, CorruptedBlockedValueClearsOutput) {
  std::vector<PairOccurrence> postings{{1, 2, 3}, {4, 5, 6}};
  std::string encoded;
  EncodePostingBlocks(postings, kDefaultPostingBlockBytes, &encoded);
  encoded.resize(encoded.size() - 1);  // truncate inside the payload
  std::vector<PairOccurrence> decoded;
  EXPECT_FALSE(DecodeBlockedPostings(encoded, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(PairIndexTableTest, CorruptedFlatValueClearsOutput) {
  // A valid posting followed by a truncated one: the decoder used to leave
  // the first posting in *out on failure; callers must never observe a
  // partially decoded list.
  std::string value;
  PairIndexTable::EncodePosting(PairOccurrence{1, 2, 3}, &value);
  std::string second;
  PairIndexTable::EncodePosting(PairOccurrence{4, 5, 6}, &second);
  value.append(second.substr(0, second.size() - 1));
  std::vector<PairOccurrence> decoded;
  EXPECT_FALSE(PairIndexTable::DecodePostings(value, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(SeqTableTest, CorruptedEventsClearOutput) {
  std::string value;
  SeqTable::EncodeEvents({{1, 10}, {2, 20}}, &value);
  value.resize(value.size() - 1);
  std::vector<eventlog::Event> decoded;
  EXPECT_FALSE(SeqTable::DecodeEvents(value, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(PairIndexTableTest, CorruptedStoredValueSurfacesAsCorruption) {
  auto db = InMemoryDb();
  PairIndexTable index(*db->GetOrCreateTable("index"),
                       kPostingFormatBlocked);
  EventTypePair pair{1, 2};
  ASSERT_TRUE(index.table()
                  ->Put(PairIndexTable::EncodeKey(pair), "\x07garbage")
                  .ok());
  auto postings = index.Get(pair);
  EXPECT_FALSE(postings.ok());
}

// ---------------------------------------------------------------------------
// TraceIntervalSet
// ---------------------------------------------------------------------------

TEST(TraceIntervalSetTest, MergesOverlappingAndAdjacent) {
  auto set = TraceIntervalSet::FromIntervals(
      {{5, 9}, {1, 3}, {4, 6}, {20, 30}, {31, 35}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], (TraceInterval{1, 9}));
  EXPECT_EQ(set.intervals()[1], (TraceInterval{20, 35}));
  EXPECT_TRUE(set.Contains(1));
  EXPECT_TRUE(set.Contains(9));
  EXPECT_FALSE(set.Contains(10));
  EXPECT_TRUE(set.Overlaps(10, 25));
  EXPECT_FALSE(set.Overlaps(10, 19));
}

TEST(TraceIntervalSetTest, IntersectIsSetIntersection) {
  auto a = TraceIntervalSet::FromIntervals({{0, 10}, {20, 30}});
  auto b = TraceIntervalSet::FromIntervals({{5, 25}});
  auto both = TraceIntervalSet::Intersect(a, b);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both.intervals()[0], (TraceInterval{5, 10}));
  EXPECT_EQ(both.intervals()[1], (TraceInterval{20, 25}));

  auto empty = TraceIntervalSet::Intersect(
      TraceIntervalSet::FromIntervals({{0, 4}}),
      TraceIntervalSet::FromIntervals({{5, 9}}));
  EXPECT_TRUE(empty.empty());
}

TEST(TraceIntervalSetTest, AllIsUnbounded) {
  auto all = TraceIntervalSet::All();
  EXPECT_TRUE(all.IsAll());
  EXPECT_TRUE(all.Contains(std::numeric_limits<uint64_t>::max()));
  auto narrowed = TraceIntervalSet::Intersect(
      all, TraceIntervalSet::FromIntervals({{3, 7}}));
  EXPECT_FALSE(narrowed.IsAll());
  EXPECT_TRUE(narrowed.Contains(5));
}

// ---------------------------------------------------------------------------
// Index-level: fold, upgrade, filtered reads
// ---------------------------------------------------------------------------

EventLog SkewedLog(size_t traces) {
  // Every trace completes (A, B); only every 16th trace contains the rare
  // R before them — the trace-selective shape the block skip serves.
  EventLog log;
  for (size_t t = 0; t < traces; ++t) {
    int64_t ts = static_cast<int64_t>(t) * 100;
    if (t % 16 == 0) log.Append(t, "R", ts);
    log.Append(t, "A", ts + 1);
    log.Append(t, "B", ts + 2);
    log.Append(t, "A", ts + 3);
    log.Append(t, "B", ts + 4);
  }
  log.SortAllTraces();
  return log;
}

TEST(PostingFormatTest, FreshIndexDefaultsToBlocked) {
  auto db = InMemoryDb();
  auto index = SequenceIndex::Open(db.get(), SingleThreaded());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->posting_format(), kPostingFormatBlocked);
}

TEST(PostingFormatTest, FoldedIndexStaysConsistent) {
  auto db = InMemoryDb();
  IndexOptions options = SingleThreaded();
  options.posting_block_bytes = 128;  // force multi-block values
  auto index = SequenceIndex::Open(db.get(), options);
  ASSERT_TRUE(index.ok());
  EventLog log = SkewedLog(200);
  ASSERT_TRUE((*index)->Update(log).ok());

  query::QueryProcessor qp(index->get());
  query::Pattern ab({(*index)->dictionary().Lookup("A"),
                     (*index)->dictionary().Lookup("B")});
  auto before = qp.Detect(ab);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE((*index)->FoldPostings().ok());
  auto report = (*index)->CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->violations.front();

  auto after = qp.Detect(ab);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
}

TEST(PostingFormatTest, FilteredReadEquivalence) {
  auto db = InMemoryDb();
  IndexOptions options = SingleThreaded();
  options.posting_block_bytes = 64;
  // No read cache: a cached whole list is served as a (valid) superset,
  // which would hide the block-skip path this test is about.
  options.cache_bytes = 0;
  auto index = SequenceIndex::Open(db.get(), options);
  ASSERT_TRUE(index.ok());
  EventLog log = SkewedLog(300);
  ASSERT_TRUE((*index)->Update(log).ok());
  ASSERT_TRUE((*index)->FoldPostings().ok());

  eventlog::ActivityId a = (*index)->dictionary().Lookup("A");
  eventlog::ActivityId b = (*index)->dictionary().Lookup("B");
  EventTypePair pair{a, b};
  auto full = (*index)->GetPairPostings(pair);
  ASSERT_TRUE(full.ok());

  // Unbounded candidates reproduce the full list.
  auto all = (*index)->GetPairPostingsFiltered(pair, TraceIntervalSet::All());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(**all, *full);

  // A narrow candidate set returns a sorted superset of its traces'
  // postings and skips blocks.
  auto candidates = TraceIntervalSet::FromIntervals({{32, 32}, {160, 160}});
  auto filtered = (*index)->GetPairPostingsFiltered(pair, candidates);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT((*filtered)->size(), full->size());
  EXPECT_TRUE(std::is_sorted((*filtered)->begin(), (*filtered)->end()));
  std::vector<PairOccurrence> expected, got;
  for (const PairOccurrence& p : *full) {
    if (candidates.Contains(p.trace)) expected.push_back(p);
  }
  for (const PairOccurrence& p : **filtered) {
    if (candidates.Contains(p.trace)) got.push_back(p);
  }
  EXPECT_EQ(got, expected);
  EXPECT_GT((*index)->read_stats().blocks_skipped, 0u);
}

TEST(PostingFormatTest, SelectiveDetectMatchesUnprunedResults) {
  // The same skewed log under both formats: the pruned v2 join must return
  // exactly what the v1 full-scan join returns.
  EventLog log = SkewedLog(256);
  auto build = [&log](uint32_t format, std::unique_ptr<storage::Database>* db)
      -> std::unique_ptr<SequenceIndex> {
    *db = InMemoryDb();
    IndexOptions options;
    options.num_threads = 1;
    options.posting_format = format;
    options.posting_block_bytes = 64;
    auto index = SequenceIndex::Open(db->get(), options);
    EXPECT_TRUE(index.ok());
    EXPECT_TRUE((*index)->Update(log).ok());
    return std::move(index).value();
  };
  std::unique_ptr<storage::Database> db1, db2;
  auto v1 = build(kPostingFormatFlat, &db1);
  auto v2 = build(kPostingFormatBlocked, &db2);
  ASSERT_TRUE(v2->FoldPostings().ok());

  query::QueryProcessor qp1(v1.get());
  query::QueryProcessor qp2(v2.get());
  eventlog::ActivityId r = v1->dictionary().Lookup("R");
  eventlog::ActivityId a = v1->dictionary().Lookup("A");
  eventlog::ActivityId b = v1->dictionary().Lookup("B");
  for (const query::Pattern& pattern :
       {query::Pattern({r, a, b}), query::Pattern({a, b, a}),
        query::Pattern({a, b, a, b})}) {
    auto lhs = qp1.Detect(pattern);
    auto rhs = qp2.Detect(pattern);
    ASSERT_TRUE(lhs.ok());
    ASSERT_TRUE(rhs.ok());
    auto sort_matches = [](std::vector<query::PatternMatch>* m) {
      std::sort(m->begin(), m->end(),
                [](const query::PatternMatch& x,
                   const query::PatternMatch& y) {
                  return std::tie(x.trace, x.timestamps) <
                         std::tie(y.trace, y.timestamps);
                });
    };
    sort_matches(&*lhs);
    sort_matches(&*rhs);
    EXPECT_EQ(*lhs, *rhs);
  }
  // The rare-anchored pattern must actually have skipped blocks of the
  // hot (A,B) list.
  EXPECT_GT(v2->read_stats().blocks_skipped, 0u);
}

TEST(PostingFormatTest, V1IndexUpgradesAcrossReopen) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() /
             ("seqdet_posting_fmt_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  EventLog log = SkewedLog(64);
  std::vector<PairOccurrence> before;
  EventTypePair pair;

  {
    // Write with the legacy flat format.
    auto db = storage::Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    IndexOptions options = SingleThreaded();
    options.posting_format = kPostingFormatFlat;
    auto index = SequenceIndex::Open(db->get(), options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->Update(log).ok());
    EXPECT_EQ((*index)->posting_format(), kPostingFormatFlat);
    pair = EventTypePair{(*index)->dictionary().Lookup("A"),
                         (*index)->dictionary().Lookup("B")};
    auto postings = (*index)->GetPairPostings(pair);
    ASSERT_TRUE(postings.ok());
    before = *postings;
    ASSERT_FALSE(before.empty());
    ASSERT_TRUE((*index)->Flush().ok());
  }
  {
    // Reopen with default options: persisted format wins, reads stay v1.
    auto db = storage::Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    auto index = SequenceIndex::Open(db->get(), SingleThreaded());
    ASSERT_TRUE(index.ok());
    EXPECT_EQ((*index)->posting_format(), kPostingFormatFlat);
    auto postings = (*index)->GetPairPostings(pair);
    ASSERT_TRUE(postings.ok());
    EXPECT_EQ(*postings, before);

    // Upgrade in place.
    ASSERT_TRUE((*index)->FoldPostings().ok());
    EXPECT_EQ((*index)->posting_format(), kPostingFormatBlocked);
    postings = (*index)->GetPairPostings(pair);
    ASSERT_TRUE(postings.ok());
    EXPECT_EQ(*postings, before);
    auto report = (*index)->CheckConsistency();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok()) << report->violations.front();
    ASSERT_TRUE((*index)->Flush().ok());
  }
  {
    // Post-upgrade reopen reads blocked values and appends mini-blocks.
    auto db = storage::Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    auto index = SequenceIndex::Open(db->get(), SingleThreaded());
    ASSERT_TRUE(index.ok());
    EXPECT_EQ((*index)->posting_format(), kPostingFormatBlocked);
    auto postings = (*index)->GetPairPostings(pair);
    ASSERT_TRUE(postings.ok());
    EXPECT_EQ(*postings, before);

    EventLog more;
    more.Append(9001, "A", 1);
    more.Append(9001, "B", 2);
    ASSERT_TRUE((*index)->Update(more).ok());
    postings = (*index)->GetPairPostings(pair);
    ASSERT_TRUE(postings.ok());
    EXPECT_EQ(postings->size(), before.size() + 1);
    auto report = (*index)->CheckConsistency();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok()) << report->violations.front();
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Randomized codec properties (satellite of the differential-test PR):
// encode -> append fragments -> fold -> decode round trips, and clean
// failure on truncated / corrupted values. Seeds are fixed so failures
// reproduce; bump kRounds locally for a longer fuzz session.
// ---------------------------------------------------------------------------

namespace {

std::vector<PairOccurrence> RandomPostings(Rng* rng, size_t count) {
  std::vector<PairOccurrence> postings(count);
  for (auto& p : postings) {
    p.trace = rng->NextBounded(200);
    p.ts_first = rng->NextInRange(0, 100000);
    p.ts_second = p.ts_first + rng->NextInRange(0, 5000);
  }
  std::sort(postings.begin(), postings.end());
  return postings;
}

}  // namespace

TEST(PostingBlocksPropertyTest, RandomRoundTripAnyBlockSize) {
  constexpr int kRounds = 200;
  Rng rng(20210323);
  for (int round = 0; round < kRounds; ++round) {
    size_t count = static_cast<size_t>(rng.NextInRange(0, 400));
    auto postings = RandomPostings(&rng, count);
    // Target sizes below one posting exercise the clamp to 1/block.
    size_t target = static_cast<size_t>(rng.NextInRange(1, 512));
    std::string encoded;
    EncodePostingBlocks(postings, target, &encoded);
    std::vector<PairOccurrence> decoded;
    ASSERT_TRUE(DecodeBlockedPostings(encoded, &decoded)) << "round " << round;
    ASSERT_EQ(decoded, postings) << "round " << round << " target " << target;
  }
}

TEST(PostingBlocksPropertyTest, FragmentPileThenFoldRoundTrip) {
  constexpr int kRounds = 100;
  Rng rng(987654321);
  for (int round = 0; round < kRounds; ++round) {
    // Simulate the write path: several independently sorted fragments
    // appended to one value (what Update() produces across batches)...
    std::string value;
    std::vector<PairOccurrence> all;
    size_t fragments = static_cast<size_t>(rng.NextInRange(1, 8));
    for (size_t f = 0; f < fragments; ++f) {
      auto fragment =
          RandomPostings(&rng, static_cast<size_t>(rng.NextInRange(1, 60)));
      EncodePostingBlocks(fragment, 64, &value);
      all.insert(all.end(), fragment.begin(), fragment.end());
    }
    // ...the pile must decode to the concatenation (per-fragment order)...
    std::vector<PairOccurrence> decoded;
    ASSERT_TRUE(DecodeBlockedPostings(value, &decoded));
    ASSERT_EQ(decoded.size(), all.size());
    // ...and folding (sort + re-encode, what FoldAll commits) must round
    // trip to the globally sorted multiset.
    std::sort(all.begin(), all.end());
    std::string folded;
    EncodePostingBlocks(all, 128, &folded);
    decoded.clear();
    ASSERT_TRUE(DecodeBlockedPostings(folded, &decoded));
    ASSERT_EQ(decoded, all) << "round " << round;
  }
}

TEST(PostingBlocksPropertyTest, TruncationFailsCleanlyOrYieldsPrefix) {
  Rng rng(5551212);
  auto postings = RandomPostings(&rng, 120);
  std::string encoded;
  EncodePostingBlocks(postings, 96, &encoded);
  std::vector<PostingBlockRef> refs;
  ASSERT_TRUE(ParsePostingBlockRefs(encoded, &refs));
  ASSERT_GT(refs.size(), 1u);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    std::string_view prefix(encoded.data(), cut);
    // Pre-filled with a sentinel: a failed decode must clear it; a
    // successful decode appends after it (the decoder's append contract).
    std::vector<PairOccurrence> decoded{{1, 2, 3}};
    bool ok = DecodeBlockedPostings(prefix, &decoded);
    bool at_block_boundary = cut == 0;
    for (const PostingBlockRef& ref : refs) {
      if (cut == ref.payload_offset + ref.header.byte_len) {
        at_block_boundary = true;
      }
    }
    if (at_block_boundary) {
      // A prefix ending exactly between blocks is itself a valid value (a
      // shorter fragment pile) and decodes to a posting prefix.
      EXPECT_TRUE(ok) << "cut " << cut;
      ASSERT_GE(decoded.size(), 1u);
      EXPECT_EQ(decoded.front(), (PairOccurrence{1, 2, 3}));
      EXPECT_TRUE(std::equal(decoded.begin() + 1, decoded.end(),
                             postings.begin()))
          << "cut " << cut;
    } else {
      EXPECT_FALSE(ok) << "cut " << cut;
      EXPECT_TRUE(decoded.empty()) << "failed decode must clear output";
      std::vector<PostingBlockRef> truncated_refs{{}};
      EXPECT_FALSE(ParsePostingBlockRefs(prefix, &truncated_refs));
      EXPECT_TRUE(truncated_refs.empty());
    }
  }
}

TEST(PostingBlocksPropertyTest, RandomCorruptionNeverCrashes) {
  constexpr int kRounds = 300;
  Rng rng(424242);
  auto postings = RandomPostings(&rng, 150);
  std::string pristine;
  EncodePostingBlocks(postings, 128, &pristine);
  for (int round = 0; round < kRounds; ++round) {
    std::string mutated = pristine;
    size_t flips = static_cast<size_t>(rng.NextInRange(1, 8));
    for (size_t i = 0; i < flips; ++i) {
      size_t pos = static_cast<size_t>(rng.NextBounded(mutated.size()));
      mutated[pos] = static_cast<char>(mutated[pos] ^
                                       (1u << rng.NextBounded(8)));
    }
    // Decoding must either reject (clearing the output) or produce a
    // structurally valid result; it must never crash or read out of
    // bounds (ASan/UBSan cover the latter in check_all.sh).
    std::vector<PairOccurrence> decoded{{7, 8, 9}};
    if (!DecodeBlockedPostings(mutated, &decoded)) {
      EXPECT_TRUE(decoded.empty()) << "round " << round;
    }
    std::vector<PostingBlockRef> refs{{}};
    if (!ParsePostingBlockRefs(mutated, &refs)) {
      EXPECT_TRUE(refs.empty()) << "round " << round;
    }
  }
}

TEST(PostingBlocksPropertyTest, RandomGarbageNeverCrashes) {
  constexpr int kRounds = 500;
  Rng rng(31337);
  for (int round = 0; round < kRounds; ++round) {
    std::string garbage(static_cast<size_t>(rng.NextInRange(1, 300)), 0);
    for (auto& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    std::vector<PairOccurrence> decoded{{1, 1, 1}};
    if (!DecodeBlockedPostings(garbage, &decoded)) {
      EXPECT_TRUE(decoded.empty());
    }
  }
}

}  // namespace
}  // namespace seqdet::index
