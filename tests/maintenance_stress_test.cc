// Concurrency stress: one writer appending trace batches, reader threads
// running DetectBatch, a stats poller, and the background maintenance
// service folding aggressively — all against one in-memory index. Run it
// under TSan (tools/check_tsan.sh includes this binary) to certify the
// fold-vs-read/write protocol; the final assertions certify end-state
// correctness against CheckConsistency() and the SASE oracle.
//
// Duration scales with SEQDET_STRESS_SECONDS (default 2).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "baselines/sase/sase_engine.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "index/maintenance.h"
#include "index/sequence_index.h"
#include "query/pattern.h"
#include "query/query_processor.h"
#include "storage/database.h"

namespace seqdet {
namespace {

using eventlog::ActivityId;
using eventlog::EventLog;
using eventlog::Timestamp;
using index::IndexOptions;
using index::Policy;
using index::SequenceIndex;
using query::Pattern;
using query::PatternMatch;
using query::QueryProcessor;

constexpr size_t kActivities = 8;

int StressSeconds() {
  if (const char* env = std::getenv("SEQDET_STRESS_SECONDS")) {
    return std::atoi(env);
  }
  return 2;
}

/// Appends `traces` fresh traces (ids starting at `first_trace`) to both
/// the batch and the accumulated oracle log.
EventLog MakeBatch(Rng* rng, uint64_t first_trace, size_t traces,
                   EventLog* accumulated) {
  EventLog batch;
  for (size_t t = 0; t < traces; ++t) {
    uint64_t trace = first_trace + t;
    size_t len = static_cast<size_t>(rng->NextInRange(5, 30));
    Timestamp ts = 0;
    for (size_t i = 0; i < len; ++i) {
      ts += rng->NextInRange(1, 9);
      std::string name = "a" + std::to_string(rng->NextBounded(kActivities));
      batch.Append(trace, name, ts);
      accumulated->Append(trace, name, ts);
    }
  }
  batch.SortAllTraces();
  return batch;
}

TEST(MaintenanceStressTest, WritersReadersAndFoldingAgree) {
  storage::DbOptions db_options;
  db_options.table.in_memory = true;
  db_options.table.use_wal = false;
  auto db = std::move(storage::Database::Open("", db_options)).value();

  IndexOptions options;
  options.policy = Policy::kSkipTillNextMatch;
  options.num_threads = 2;
  options.cache_bytes = 1u << 20;
  options.posting_block_bytes = 128;
  // Aggressive thresholds: fold nearly every append so folds overlap the
  // reader and writer activity as much as possible.
  options.maintenance.auto_fold = true;
  options.maintenance.check_interval_ms = 5;
  options.maintenance.min_pending_bytes = 1;
  options.maintenance.min_pending_ops = 1;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  ASSERT_NE(index->maintenance(), nullptr);

  // Seed batch so every activity is interned before readers start.
  EventLog accumulated;
  Rng writer_rng(7);
  uint64_t next_trace = 0;
  {
    EventLog batch = MakeBatch(&writer_rng, next_trace, 32, &accumulated);
    next_trace += 32;
    ASSERT_TRUE(index->Update(batch).ok());
  }
  ASSERT_EQ(index->dictionary().size(), kActivities);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches_written{0};
  std::atomic<uint64_t> reads_done{0};
  std::atomic<uint64_t> stats_polls{0};

  // Single writer: Update() has single-writer semantics; concurrency with
  // folds and reads is what this test certifies.
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EventLog batch = MakeBatch(&writer_rng, next_trace, 8, &accumulated);
      next_trace += 8;
      auto stats = index->Update(batch);
      ASSERT_TRUE(stats.ok()) << stats.status();
      batches_written.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Readers: batches of random patterns. Results cannot be compared to a
  // fixed oracle mid-run (the log grows concurrently) — correctness here is
  // "no crash, no error, no torn reads", with TSan watching.
  auto reader = [&](uint64_t seed) {
    Rng rng(seed);
    QueryProcessor qp(index.get());
    ThreadPool pool(2);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<Pattern> patterns;
      for (int i = 0; i < 8; ++i) {
        size_t len = static_cast<size_t>(rng.NextInRange(2, 4));
        std::vector<ActivityId> p(len);
        for (auto& a : p) {
          a = static_cast<ActivityId>(rng.NextBounded(kActivities));
        }
        patterns.emplace_back(std::move(p));
      }
      auto results = qp.DetectBatch(patterns, &pool);
      ASSERT_TRUE(results.ok()) << results.status();
      reads_done.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread reader1(reader, 11), reader2(reader, 13);

  // Poller: hammers every observability surface while queries run.
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      index::MaintenanceStats m = index->maintenance_stats();
      EXPECT_TRUE(m.enabled);
      (void)index->read_stats();
      (void)index->cache_stats();
      (void)index->pending_fold_load();
      stats_polls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(StressSeconds()));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  reader1.join();
  reader2.join();
  poller.join();

  // Quiesce: every pending append folded, no cycle in flight.
  EXPECT_TRUE(index->maintenance()->WaitIdle(/*timeout_ms=*/30000));
  index::MaintenanceStats m = index->maintenance_stats();
  EXPECT_GT(m.folds_run, 0u) << "service never folded — thresholds broken?";
  EXPECT_EQ(m.errors, 0u) << m.last_error;
  EXPECT_GT(batches_written.load(), 0u);
  EXPECT_GT(reads_done.load(), 0u);
  EXPECT_GT(stats_polls.load(), 0u);

  // End-state correctness: internal invariants...
  auto report = index->CheckConsistency();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << (report->violations.empty()
                                    ? ""
                                    : report->violations.front());

  // ...and full agreement with the raw-log oracle on every pair pattern.
  accumulated.SortAllTraces();
  baseline::SaseEngine sase(&accumulated);
  QueryProcessor qp(index.get());
  for (ActivityId a = 0; a < kActivities; ++a) {
    for (ActivityId b = 0; b < kActivities; ++b) {
      auto got = qp.Detect(Pattern({a, b}));
      ASSERT_TRUE(got.ok()) << got.status();
      auto want = sase.Detect({a, b}, Policy::kSkipTillNextMatch);
      ASSERT_EQ(got->size(), want.size()) << "pair <" << a << "," << b << ">";
      std::sort(got->begin(), got->end(),
                [](const PatternMatch& x, const PatternMatch& y) {
                  return std::tie(x.trace, x.timestamps) <
                         std::tie(y.trace, y.timestamps);
                });
      std::sort(want.begin(), want.end(),
                [](const auto& x, const auto& y) {
                  return std::tie(x.trace, x.timestamps) <
                         std::tie(y.trace, y.timestamps);
                });
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ((*got)[i].trace, want[i].trace);
        EXPECT_EQ((*got)[i].timestamps, want[i].timestamps);
      }
    }
  }

  // Stop before the accumulated log (which the service never touches, but
  // symmetry with production shutdown order) goes away.
  index->maintenance()->Stop();
  EXPECT_FALSE(index->maintenance_stats().running);
}

}  // namespace
}  // namespace seqdet
