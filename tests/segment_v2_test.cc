// SDSEG2 format tests: v1/v2 read compatibility, mmap vs buffered reader
// equivalence, the posting-FOR block codec (pinned against the index
// encoder that produces the values it transcodes), batch varint decode,
// bit packing, and corruption fuzzing (every damage must surface as
// Status::Corruption, never as a crash or wrong data).

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitpack.h"
#include "common/coding.h"
#include "common/strings.h"
#include "index/posting_blocks.h"
#include "storage/segment.h"
#include "storage/segment_codec.h"

namespace seqdet {
namespace {

namespace fs = std::filesystem;
using storage::BlockCodec;
using storage::RecordKind;
using storage::Segment;
using storage::SegmentBuilder;
using storage::SegmentWriteOptions;
using storage::WriteFileAtomic;

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("seqdet_segment_v2_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// Deterministic keys/values spanning several blocks. Values are plain
// strings here; posting-shaped values get their own tests below.
std::vector<std::pair<std::string, std::string>> MakeEntries(int n) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.emplace_back(StringPrintf("key%06d", i),
                     StringPrintf("value-%d-%s", i,
                                  std::string(i % 50, 'x').c_str()));
  }
  return out;
}

std::string BuildSegment(
    const std::vector<std::pair<std::string, std::string>>& entries,
    const SegmentWriteOptions& options) {
  SegmentBuilder builder(options);
  for (const auto& [k, v] : entries) {
    EXPECT_TRUE(builder.Add(k, RecordKind::kPut, v).ok());
  }
  return builder.Finish();
}

void ExpectReadsAllEntries(
    const Segment& segment,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  ASSERT_EQ(segment.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    auto e = segment.Entry(i);
    ASSERT_TRUE(e.ok()) << e.status();
    EXPECT_EQ(e->key, entries[i].first);
    EXPECT_EQ(e->value, entries[i].second);
    EXPECT_EQ(e->kind, RecordKind::kPut);
  }
  // Point lookups on a sample plus guaranteed misses.
  for (size_t i = 0; i < entries.size(); i += 37) {
    auto found = segment.Find(entries[i].first);
    ASSERT_TRUE(found.ok()) << found.status();
    ASSERT_NE(*found, nullptr) << entries[i].first;
    EXPECT_EQ((*found)->value, entries[i].second);
  }
  auto miss = segment.Find("zzz-not-there");
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(*miss, nullptr);
}

TEST(SegmentV2Test, RoundTripManyBlocks) {
  auto entries = MakeEntries(2000);
  auto segment = Segment::FromBuffer(BuildSegment(entries, {}));
  ASSERT_TRUE(segment.ok()) << segment.status();
  EXPECT_EQ((*segment)->format(), 2u);
  EXPECT_GT((*segment)->stats().num_blocks, 1u);
  ExpectReadsAllEntries(**segment, entries);
}

TEST(SegmentV2Test, V1AndV2ReadTheSameEntries) {
  auto entries = MakeEntries(500);
  SegmentWriteOptions v1;
  v1.format_version = 1;
  auto s1 = Segment::FromBuffer(BuildSegment(entries, v1));
  auto s2 = Segment::FromBuffer(BuildSegment(entries, {}));
  ASSERT_TRUE(s1.ok()) << s1.status();
  ASSERT_TRUE(s2.ok()) << s2.status();
  EXPECT_EQ((*s1)->format(), 1u);
  EXPECT_EQ((*s2)->format(), 2u);
  ExpectReadsAllEntries(**s1, entries);
  ExpectReadsAllEntries(**s2, entries);
  // The v2 LowerBound must agree with v1 for keys on, between and past
  // block fences.
  for (const std::string probe :
       {"key000000", "key000100x", "key001999", "zzz", "a"}) {
    auto l1 = (*s1)->LowerBound(probe);
    auto l2 = (*s2)->LowerBound(probe);
    ASSERT_TRUE(l1.ok() && l2.ok());
    EXPECT_EQ(*l1, *l2) << probe;
  }
}

TEST(SegmentV2Test, MmapLoadMatchesBufferedParse) {
  TempDir dir;
  auto entries = MakeEntries(800);
  std::string sealed = BuildSegment(entries, {});
  std::string path = dir.str() + "/t.000001.seg";
  ASSERT_TRUE(WriteFileAtomic(path, sealed).ok());

  auto mapped = Segment::Load(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  auto buffered = Segment::FromBuffer(sealed);
  ASSERT_TRUE(buffered.ok()) << buffered.status();

  ASSERT_EQ((*mapped)->size(), (*buffered)->size());
  EXPECT_EQ((*mapped)->stats().num_blocks, (*buffered)->stats().num_blocks);
  for (size_t i = 0; i < (*mapped)->size(); ++i) {
    auto a = (*mapped)->Entry(i);
    auto b = (*buffered)->Entry(i);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->key, b->key);
    EXPECT_EQ(a->value, b->value);
    EXPECT_EQ(a->kind, b->kind);
  }
}

TEST(SegmentV2Test, EmptySegmentIsValid) {
  SegmentBuilder builder;
  auto segment = Segment::FromBuffer(builder.Finish());
  ASSERT_TRUE(segment.ok()) << segment.status();
  EXPECT_EQ((*segment)->size(), 0u);
  EXPECT_EQ((*segment)->format(), 2u);
  auto miss = (*segment)->Find("anything");
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(*miss, nullptr);
}

TEST(SegmentV2Test, AppendAndDeleteKindsSurvive) {
  SegmentBuilder builder;
  ASSERT_TRUE(builder.Add("a", RecordKind::kPut, "base").ok());
  ASSERT_TRUE(builder.Add("b", RecordKind::kAppend, "frag").ok());
  ASSERT_TRUE(builder.Add("c", RecordKind::kDelete, "").ok());
  auto segment = Segment::FromBuffer(builder.Finish());
  ASSERT_TRUE(segment.ok()) << segment.status();
  auto b = (*segment)->Find("b");
  ASSERT_TRUE(b.ok());
  ASSERT_NE(*b, nullptr);
  EXPECT_EQ((*b)->kind, RecordKind::kAppend);
  auto c = (*segment)->Find("c");
  ASSERT_TRUE(c.ok());
  ASSERT_NE(*c, nullptr);
  EXPECT_EQ((*c)->kind, RecordKind::kDelete);
}

// ---------------------------------------------------------------------------
// Corruption fuzzing
// ---------------------------------------------------------------------------

// Reads every entry; true when some access reports corruption.
bool ScanCatchesCorruption(const Segment& segment) {
  for (size_t i = 0; i < segment.size(); ++i) {
    if (!segment.Entry(i).ok()) return true;
  }
  return false;
}

TEST(SegmentV2Test, EveryByteFlipIsDetected) {
  auto entries = MakeEntries(120);  // a few blocks, small enough to fuzz
  std::string sealed = BuildSegment(entries, {});
  for (size_t i = 0; i < sealed.size(); ++i) {
    std::string mutated = sealed;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    auto segment = Segment::FromBuffer(mutated);
    if (!segment.ok()) {
      EXPECT_TRUE(segment.status().IsCorruption()) << "byte " << i;
      continue;
    }
    EXPECT_TRUE(ScanCatchesCorruption(**segment)) << "byte " << i;
  }
}

TEST(SegmentV2Test, EveryTruncationIsDetected) {
  auto entries = MakeEntries(60);
  std::string sealed = BuildSegment(entries, {});
  for (size_t len = 0; len < sealed.size(); ++len) {
    auto segment = Segment::FromBuffer(sealed.substr(0, len));
    if (!segment.ok()) continue;
    EXPECT_TRUE((*segment)->size() == 0 || ScanCatchesCorruption(**segment))
        << "length " << len;
  }
}

TEST(SegmentV2Test, TruncatedFileOnDiskIsRejected) {
  TempDir dir;
  auto entries = MakeEntries(200);
  std::string sealed = BuildSegment(entries, {});
  std::string path = dir.str() + "/t.000001.seg";
  ASSERT_TRUE(WriteFileAtomic(path, sealed.substr(0, sealed.size() / 2)).ok());
  auto segment = Segment::Load(path);
  EXPECT_FALSE(segment.ok());
}

// ---------------------------------------------------------------------------
// Posting-FOR codec
// ---------------------------------------------------------------------------

// Builds a realistic blocked posting value through the *index* encoder —
// the storage transcoder parses exactly this wire format, and this test is
// what keeps the two sides pinned together.
std::string MakePostingValue(int n, int64_t base_ts) {
  std::vector<index::PairOccurrence> postings;
  postings.reserve(n);
  uint64_t trace = 7;
  int64_t ts = base_ts;
  for (int i = 0; i < n; ++i) {
    trace += (i % 5 == 0) ? 3 : 0;
    ts += 1000 + (i % 97);
    postings.push_back(index::PairOccurrence{trace, ts, ts + 40 + i % 13});
  }
  std::string value;
  index::EncodePostingBlocks(postings, index::kDefaultPostingBlockBytes,
                             &value);
  return value;
}

TEST(SegmentCodecTest, PostingTranscodeRoundTripsByteExact) {
  // Epoch-millisecond scale timestamps: the regime the FOR columns are
  // built for.
  std::string value = MakePostingValue(3000, 1700000000000);
  std::string encoded;
  storage::TranscodePostingValue(value, &encoded);
  std::string decoded;
  ASSERT_TRUE(storage::UntranscodePostingValue(encoded, &decoded));
  EXPECT_EQ(decoded, value);
  // The whole point: the FOR form must be materially smaller.
  EXPECT_LT(encoded.size(), value.size());
}

TEST(SegmentCodecTest, NonPostingValuesFallBackToRaw) {
  for (const std::string& value :
       {std::string(""), std::string("hello world"), std::string(300, '\xff'),
        std::string("\x01\x02\x03")}) {
    std::string encoded;
    storage::TranscodePostingValue(value, &encoded);
    std::string decoded;
    ASSERT_TRUE(storage::UntranscodePostingValue(encoded, &decoded));
    EXPECT_EQ(decoded, value);
  }
}

TEST(SegmentCodecTest, SegmentStoresPostingValuesSmallerThanV1) {
  // An apples-to-apples segment pair holding posting-list values: v2 with
  // the posting-FOR codec must be materially smaller than flat v1.
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 64; ++i) {
    entries.emplace_back(StringPrintf("p0|%04d|%04d", i, i + 1),
                         MakePostingValue(500, 1700000000000 + i));
  }
  SegmentWriteOptions v1;
  v1.format_version = 1;
  std::string sealed_v1 = BuildSegment(entries, v1);
  std::string sealed_v2 = BuildSegment(entries, {});
  EXPECT_LT(sealed_v2.size() * 2, sealed_v1.size())
      << "v2=" << sealed_v2.size() << " v1=" << sealed_v1.size();

  auto segment = Segment::FromBuffer(sealed_v2);
  ASSERT_TRUE(segment.ok()) << segment.status();
  ExpectReadsAllEntries(**segment, entries);
  // Decoded values must parse back through the index decoder.
  auto e = (*segment)->Find(entries[3].first);
  ASSERT_TRUE(e.ok());
  ASSERT_NE(*e, nullptr);
  std::vector<index::PairOccurrence> postings;
  EXPECT_TRUE(index::DecodeBlockedPostings((*e)->value, &postings));
  EXPECT_EQ(postings.size(), 500u);
}

// ---------------------------------------------------------------------------
// Batch varint decode
// ---------------------------------------------------------------------------

TEST(BatchVarintTest, MatchesScalarDecode) {
  std::vector<uint64_t> values;
  for (uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 20, 1ull << 35,
        (1ull << 63) + 5, ~0ull}) {
    values.push_back(v);
  }
  for (int i = 0; i < 100; ++i) values.push_back(i * 2654435761u);
  std::string encoded;
  for (uint64_t v : values) PutVarint64(&encoded, v);

  std::vector<uint64_t> batch(values.size());
  std::string_view cursor(encoded);
  ASSERT_TRUE(GetVarint64Batch(&cursor, values.size(), batch.data()));
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(batch, values);
}

TEST(BatchVarintTest, TruncatedInputFailsWithoutAdvancing) {
  std::string encoded;
  PutVarint64(&encoded, 1);
  PutVarint64(&encoded, 1ull << 40);
  std::string truncated = encoded.substr(0, encoded.size() - 1);
  uint64_t out[2];
  std::string_view cursor(truncated);
  EXPECT_FALSE(GetVarint64Batch(&cursor, 2, out));
  EXPECT_EQ(cursor.size(), truncated.size());  // cursor untouched on failure
}

TEST(BatchVarintTest, OverlongVarintRejected) {
  std::string encoded(10, '\x80');  // continuation forever
  encoded.push_back('\x02');
  uint64_t out[1];
  std::string_view cursor(encoded);
  EXPECT_FALSE(GetVarint64Batch(&cursor, 1, out));
}

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

TEST(BitpackTest, RoundTripAllWidths) {
  for (uint32_t bits = 0; bits <= 64; ++bits) {
    std::vector<uint64_t> values;
    uint64_t mask =
        bits >= 64 ? ~0ull : ((uint64_t{1} << bits) - 1);
    for (int i = 0; i < 40; ++i) {
      values.push_back((i * 0x9e3779b97f4a7c15ull) & mask);
    }
    std::string packed;
    BitPacker packer(&packed);
    for (uint64_t v : values) packer.Put(v, bits);
    packer.Finish();
    EXPECT_LE(packed.size(), (values.size() * bits + 7) / 8 + 1);

    BitUnpacker unpacker(packed);
    for (size_t i = 0; i < values.size(); ++i) {
      uint64_t v = 0;
      ASSERT_TRUE(unpacker.Get(bits, &v)) << "bits=" << bits << " i=" << i;
      EXPECT_EQ(v, values[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(BitpackTest, UnderrunFails) {
  std::string packed;
  BitPacker packer(&packed);
  packer.Put(0x3ff, 10);
  packer.Finish();
  BitUnpacker unpacker(packed);
  uint64_t v = 0;
  ASSERT_TRUE(unpacker.Get(10, &v));
  EXPECT_EQ(v, 0x3ffu);
  EXPECT_FALSE(unpacker.Get(10, &v));
}

}  // namespace
}  // namespace seqdet
