// Tests for the versioned posting-list read cache: the PostingCache data
// structure itself, the equivalence of cached and uncached query results,
// and the freshness guarantee under a concurrent Update.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/posting_cache.h"
#include "index/sequence_index.h"
#include "query/pattern.h"
#include "query/query_processor.h"
#include "storage/database.h"

namespace seqdet::index {
namespace {

using eventlog::EventLog;
using query::Pattern;
using query::QueryProcessor;

PostingCache::Snapshot MakeSnapshot(size_t n, eventlog::TraceId trace = 1) {
  std::vector<PairOccurrence> postings(n);
  for (size_t i = 0; i < n; ++i) {
    postings[i] = {trace, static_cast<eventlog::Timestamp>(2 * i),
                   static_cast<eventlog::Timestamp>(2 * i + 1)};
  }
  return std::make_shared<const std::vector<PairOccurrence>>(
      std::move(postings));
}

// ---------------------------------------------------------------------------
// PostingCache unit tests
// ---------------------------------------------------------------------------

TEST(PostingCacheTest, MissThenHit) {
  PostingCache cache(1 << 20, /*num_shards=*/1);
  EventTypePair pair{1, 2};
  EXPECT_EQ(cache.Get(0, pair, 7), nullptr);

  auto snapshot = MakeSnapshot(3);
  cache.Put(0, pair, 7, snapshot);
  auto hit = cache.Get(0, pair, 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), snapshot.get());  // shared, not copied

  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, PostingCache::ChargedBytes(snapshot));
}

TEST(PostingCacheTest, DistinctPeriodsAreDistinctKeys) {
  PostingCache cache(1 << 20, 1);
  EventTypePair pair{1, 2};
  cache.Put(0, pair, 1, MakeSnapshot(1));
  cache.Put(1, pair, 1, MakeSnapshot(2));
  cache.Put(PostingCache::kMergedPeriod, pair, 2, MakeSnapshot(3));
  EXPECT_EQ(cache.Get(0, pair, 1)->size(), 1u);
  EXPECT_EQ(cache.Get(1, pair, 1)->size(), 2u);
  EXPECT_EQ(cache.Get(PostingCache::kMergedPeriod, pair, 2)->size(), 3u);
}

TEST(PostingCacheTest, VersionMismatchInvalidates) {
  PostingCache cache(1 << 20, 1);
  EventTypePair pair{1, 2};
  cache.Put(0, pair, 1, MakeSnapshot(3));

  // A newer observed version means the entry may miss a write: it must be
  // dropped, not served.
  EXPECT_EQ(cache.Get(0, pair, 2), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);

  // The entry is gone for good — even re-presenting the old version misses.
  EXPECT_EQ(cache.Get(0, pair, 1), nullptr);
}

TEST(PostingCacheTest, PutReplacesExistingEntry) {
  PostingCache cache(1 << 20, 1);
  EventTypePair pair{1, 2};
  cache.Put(0, pair, 1, MakeSnapshot(3));
  cache.Put(0, pair, 2, MakeSnapshot(5));
  auto hit = cache.Get(0, pair, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 5u);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, PostingCache::ChargedBytes(hit));
}

TEST(PostingCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  auto one = MakeSnapshot(8);
  const size_t entry_bytes = PostingCache::ChargedBytes(one);
  // Room for exactly three entries in a single shard.
  PostingCache cache(3 * entry_bytes, 1);
  std::vector<EventTypePair> pairs = {{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  for (size_t i = 0; i < 3; ++i) cache.Put(0, pairs[i], 1, MakeSnapshot(8));

  // Touch {1,1} so {2,2} becomes the LRU victim.
  EXPECT_NE(cache.Get(0, pairs[0], 1), nullptr);
  cache.Put(0, pairs[3], 1, MakeSnapshot(8));

  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, cache.capacity_bytes());
  EXPECT_EQ(cache.Get(0, pairs[1], 1), nullptr);  // evicted
  EXPECT_NE(cache.Get(0, pairs[0], 1), nullptr);  // kept (recently used)
  EXPECT_NE(cache.Get(0, pairs[2], 1), nullptr);
  EXPECT_NE(cache.Get(0, pairs[3], 1), nullptr);
}

TEST(PostingCacheTest, OversizedSnapshotIsNotCached) {
  auto small = MakeSnapshot(1);
  PostingCache cache(PostingCache::ChargedBytes(small), 1);
  EventTypePair pair{1, 2};
  cache.Put(0, pair, 1, MakeSnapshot(100000));  // way over budget
  EXPECT_EQ(cache.Get(0, pair, 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PostingCacheTest, ZeroCapacityDisablesEverything) {
  PostingCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EventTypePair pair{1, 2};
  cache.Put(0, pair, 1, MakeSnapshot(3));
  EXPECT_EQ(cache.Get(0, pair, 1), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.capacity_bytes, 0u);
}

TEST(PostingCacheTest, ClearDropsEntriesKeepsCounters) {
  PostingCache cache(1 << 20, 4);
  for (uint32_t a = 0; a < 8; ++a) {
    cache.Put(0, EventTypePair{a, a + 1}, 1, MakeSnapshot(2));
  }
  EXPECT_EQ(cache.stats().entries, 8u);
  EXPECT_NE(cache.Get(0, EventTypePair{0, 1}, 1), nullptr);
  cache.Clear();
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);  // counters survive Clear
}

// ---------------------------------------------------------------------------
// End-to-end: cached results must be bit-identical to uncached ones
// ---------------------------------------------------------------------------

constexpr const char* kNames[] = {"a", "b", "c", "d", "e", "f"};
constexpr size_t kAlphabet = 6;

// A deterministic synthetic log with enough pair repetition that triples
// and continuations have non-trivial answers.
EventLog SyntheticLog(size_t traces, size_t events_per_trace, uint64_t seed) {
  Rng rng(seed);
  EventLog log;
  for (size_t t = 0; t < traces; ++t) {
    eventlog::Timestamp ts = 1;
    for (size_t i = 0; i < events_per_trace; ++i) {
      log.Append(static_cast<eventlog::TraceId>(t),
                 kNames[rng.NextBounded(kAlphabet)], ts);
      ts += 1 + static_cast<eventlog::Timestamp>(rng.NextBounded(5));
    }
  }
  log.SortAllTraces();
  return log;
}

struct Fixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<SequenceIndex> index;

  Fixture(const EventLog& log, size_t cache_bytes) {
    storage::DbOptions db_options;
    db_options.table.in_memory = true;
    db_options.table.use_wal = false;
    db = std::move(storage::Database::Open("", db_options)).value();
    IndexOptions options;
    options.num_threads = 1;
    options.cache_bytes = cache_bytes;
    index = std::move(SequenceIndex::Open(db.get(), options)).value();
    auto stats = index->Update(log);
    EXPECT_TRUE(stats.ok()) << stats.status();
  }
};

std::vector<Pattern> EquivalencePatterns(const SequenceIndex& index) {
  std::vector<Pattern> patterns;
  auto id = [&](const char* name) { return index.dictionary().Lookup(name); };
  for (size_t i = 0; i < kAlphabet; ++i) {
    for (size_t j = 0; j < kAlphabet; ++j) {
      patterns.push_back(Pattern({id(kNames[i]), id(kNames[j])}));
    }
  }
  patterns.push_back(Pattern({id("a"), id("b"), id("c")}));
  patterns.push_back(Pattern({id("b"), id("a"), id("b"), id("a")}));
  patterns.push_back(Pattern({id("c"), id("c"), id("d"), id("e"), id("f")}));
  return patterns;
}

void ExpectSameProposals(
    const std::vector<query::ContinuationProposal>& uncached,
    const std::vector<query::ContinuationProposal>& cached) {
  ASSERT_EQ(uncached.size(), cached.size());
  for (size_t i = 0; i < uncached.size(); ++i) {
    EXPECT_EQ(uncached[i].activity, cached[i].activity);
    EXPECT_EQ(uncached[i].total_completions, cached[i].total_completions);
    EXPECT_EQ(uncached[i].average_duration, cached[i].average_duration);
    EXPECT_EQ(uncached[i].score, cached[i].score);
  }
}

TEST(CacheEquivalenceTest, CachedResultsMatchUncached) {
  EventLog log = SyntheticLog(120, 24, /*seed=*/7);
  Fixture uncached(log, /*cache_bytes=*/0);
  Fixture cached(log, /*cache_bytes=*/16u << 20);
  QueryProcessor qp_uncached(uncached.index.get());
  QueryProcessor qp_cached(cached.index.get());

  std::vector<Pattern> patterns = EquivalencePatterns(*cached.index);
  // Two passes over the cached index: the first fills the cache, the second
  // is served from it. Both must equal the uncached answers bit for bit.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Pattern& p : patterns) {
      auto expect = qp_uncached.Detect(p);
      auto got = qp_cached.Detect(p);
      ASSERT_TRUE(expect.ok()) << expect.status();
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*expect, *got) << "pass " << pass;

      auto stats_expect = qp_uncached.Statistics(p);
      auto stats_got = qp_cached.Statistics(p);
      ASSERT_TRUE(stats_expect.ok() && stats_got.ok());
      EXPECT_EQ(stats_expect->completions_upper_bound,
                stats_got->completions_upper_bound);
      EXPECT_EQ(stats_expect->estimated_duration,
                stats_got->estimated_duration);
      ASSERT_EQ(stats_expect->pairs.size(), stats_got->pairs.size());
      for (size_t i = 0; i < stats_expect->pairs.size(); ++i) {
        EXPECT_EQ(stats_expect->pairs[i].pair, stats_got->pairs[i].pair);
        EXPECT_EQ(stats_expect->pairs[i].total_completions,
                  stats_got->pairs[i].total_completions);
        EXPECT_EQ(stats_expect->pairs[i].average_duration,
                  stats_got->pairs[i].average_duration);
      }

      auto cont_expect = qp_uncached.ContinueHybrid(p, 5);
      auto cont_got = qp_cached.ContinueHybrid(p, 5);
      ASSERT_TRUE(cont_expect.ok() && cont_got.ok());
      ExpectSameProposals(*cont_expect, *cont_got);
    }
  }
  // Sanity: the uncached index never cached, the cached one actually did.
  EXPECT_EQ(uncached.index->cache_stats().entries, 0u);
  auto stats = cached.index->cache_stats();
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(CacheEquivalenceTest, UpdateInvalidatesWarmEntries) {
  EventLog log = SyntheticLog(20, 10, /*seed=*/3);
  Fixture f(log, 16u << 20);
  QueryProcessor qp(f.index.get());
  auto id = [&](const char* name) { return f.index->dictionary().Lookup(name); };
  Pattern ab({id("a"), id("b")});

  auto before = qp.Detect(ab);  // fills the cache
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(qp.Detect(ab).ok());  // served warm

  // Append one fresh trace containing exactly one more (a, b) completion.
  EventLog more;
  more.Append(1000, "a", 1);
  more.Append(1000, "b", 2);
  more.SortAllTraces();
  ASSERT_TRUE(f.index->Update(more).ok());

  auto after = qp.Detect(ab);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size() + 1);
  EXPECT_GT(f.index->cache_stats().invalidations, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency: queries racing an Update must never see stale postings
// ---------------------------------------------------------------------------

TEST(CacheConcurrencyTest, UpdateVsDetectBatchServesFreshPostings) {
  EventLog log = SyntheticLog(30, 12, /*seed=*/11);
  Fixture f(log, 16u << 20);
  QueryProcessor qp(f.index.get());
  auto id = [&](const char* name) { return f.index->dictionary().Lookup(name); };
  const Pattern ab({id("a"), id("b")});
  const std::vector<Pattern> batch = {ab,
                                      Pattern({id("b"), id("c")}),
                                      Pattern({id("a"), id("b"), id("c")})};

  auto initial = qp.Detect(ab);
  ASSERT_TRUE(initial.ok());
  const size_t initial_ab = initial->size();

  constexpr size_t kRounds = 40;
  constexpr size_t kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};

  // Readers hammer the (cached) read path. The index only ever grows, so
  // per reader the match count of a->b must be monotonically non-decreasing
  // — a cache serving a stale snapshot after a fresher one was observed
  // would violate exactly this.
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      size_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto results = qp.DetectBatch(batch);
        if (!results.ok()) {
          failed.store(true);
          return;
        }
        size_t now = (*results)[0].size();
        if (now < last_seen || now < initial_ab ||
            now > initial_ab + kRounds) {
          failed.store(true);
          return;
        }
        last_seen = now;
      }
    });
  }

  // Writer: each round appends one new trace with one (a, b) completion,
  // then immediately queries. Update() happened-before the query, so the
  // new posting MUST be visible — served stale cache entries would fail
  // this equality.
  for (size_t round = 1; round <= kRounds; ++round) {
    EventLog more;
    auto trace = static_cast<eventlog::TraceId>(10000 + round);
    more.Append(trace, "a", 1);
    more.Append(trace, "b", 2);
    more.SortAllTraces();
    ASSERT_TRUE(f.index->Update(more).ok());
    auto after = qp.Detect(ab);
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(after->size(), initial_ab + round) << "stale read after Update";
  }

  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace seqdet::index
